"""Fig. 12(c)/(f) — Bloom filter size impact on a balanced workload.

Paper (uniform RWB, 10..200 bits/key): "the system performance does not
fluctuate much for both UDC and LDC" — i.e. 10 bits/key already gives
filters accurate enough that bigger ones buy nothing.

Shape to match: for each policy, throughput across the sweep stays within
a narrow band.
"""

from repro.harness.experiments import fig12cf_bloom_rwb
from repro.harness.report import format_table, paper_row

from conftest import run_once

BITS = (10, 50, 100, 200)


def test_fig12cf_bloom_rwb(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark,
        lambda: fig12cf_bloom_rwb(
            bits_per_key=BITS, ops=bench_ops, key_space=bench_keys
        ),
    )
    by_policy = {"UDC": {}, "LDC": {}}
    rows = []
    for bits in BITS:
        label = f"bits={bits}"
        udc = out.result_for(label, "UDC").throughput_ops_s
        ldc = out.result_for(label, "LDC").throughput_ops_s
        by_policy["UDC"][bits] = udc
        by_policy["LDC"][bits] = ldc
        rows.append((label, round(udc), round(ldc)))
    print()
    print(
        format_table(
            ["setting", "UDC ops/s", "LDC ops/s"],
            rows,
            title="Fig. 12(c)/(f) — Bloom bits/key sweep (uniform RWB):",
        )
    )
    for policy, series in by_policy.items():
        spread = max(series.values()) / min(series.values()) - 1
        print(paper_row(f"{policy} spread across sweep", "flat (<~10%)", f"{spread:.1%}"))
        # Shape assertion: the paper's flatness.
        assert spread < 0.15, f"{policy} should be flat beyond 10 bits/key"
