"""Shared helpers for the per-figure benchmarks.

Every benchmark regenerates one table or figure of the paper and prints
its rows next to the paper's reported values.  Benchmarks measure
*virtual* device time (the paper's quantity); pytest-benchmark's
wall-clock numbers only reflect how long the simulation took to run.

Scale knobs (environment variables):

* ``REPRO_BENCH_OPS``   — measured operations per run (default 60000)
* ``REPRO_BENCH_KEYS``  — key-space size (default 20000)

Larger values deepen the LSM-tree and sharpen the UDC/LDC contrast at the
cost of wall-clock time.
"""

from __future__ import annotations

import os

import pytest

DEFAULT_OPS = int(os.environ.get("REPRO_BENCH_OPS", "60000"))
DEFAULT_KEYS = int(os.environ.get("REPRO_BENCH_KEYS", "20000"))


@pytest.fixture(scope="session")
def bench_ops() -> int:
    return DEFAULT_OPS


@pytest.fixture(scope="session")
def bench_keys() -> int:
    return DEFAULT_KEYS


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
