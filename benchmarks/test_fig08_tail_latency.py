"""Fig. 8 — tail latency percentiles (P90..P99.99), UDC vs LDC.

Paper (10 M random writes + 10 M random reads):

    P99.9:  469.66 us (UDC) -> 179.53 us (LDC), a 2.62x reduction
    P99.99: 2688.23 us      -> 1305.96 us

Shape to match: LDC's high percentiles (P99.9, P99.99) are substantially
below UDC's, because lower-level driven merges are O(1)-file jobs instead
of O(fan_out)-file jobs (equation (3)).
"""

from repro.harness.experiments import fig08_tail_latency
from repro.harness.report import format_table, paper_row, ratio

from conftest import run_once

PAPER = {
    99.9: (469.66, 179.53),
    99.99: (2688.23, 1305.96),
}


def test_fig08_tail_latency(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark,
        lambda: fig08_tail_latency(ops=bench_ops, key_space=bench_keys),
    )
    udc, ldc = out["UDC"], out["LDC"]
    rows = [
        (
            f"P{pct:g}",
            round(udc[pct], 1),
            round(ldc[pct], 1),
            ratio(udc[pct], ldc[pct]),
        )
        for pct in sorted(udc)
    ]
    print()
    print(
        format_table(
            ["percentile", "UDC (us)", "LDC (us)", "UDC/LDC"],
            rows,
            title="Fig. 8 — tail latency, 50/50 random reads+writes:",
        )
    )
    print(paper_row("P99.9 ratio", "2.62x (469.66 -> 179.53 us)", ratio(udc[99.9], ldc[99.9])))
    print(paper_row("P99.99 ratio", "2.06x (2688 -> 1306 us)", ratio(udc[99.99], ldc[99.99])))

    # Shape assertions: LDC wins at the deep tail, decisively at P99.99.
    assert ldc[99.9] < udc[99.9]
    assert ldc[99.99] < udc[99.99] / 1.5
