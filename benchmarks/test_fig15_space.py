"""Fig. 15 — space efficiency: LDC's delayed garbage collection overhead.

Paper (RWB, 5..30 M requests): the final store is 3.37-10.0% larger under
LDC (average 6.78%) because frozen SSTables are recycled only when their
last slice merges.  The worst-case bound of §III-D is 25% of the store.

Our simulated trees are far shallower than the paper's 10 GB store (whose
bottom level holds ~90% of the data), so the frozen region is a larger
*fraction* here; the bench therefore reports the overhead alongside the
bottom-level share, and asserts the paper's qualitative claims: bounded
overhead, and every frozen byte eventually reclaimable.
"""

from repro.harness.experiments import fig15_space
from repro.harness.report import format_table, mib, paper_row

from conftest import run_once


def test_fig15_space(benchmark, bench_ops, bench_keys):
    counts = (bench_ops // 3, bench_ops * 2 // 3, bench_ops)
    out = run_once(benchmark, lambda: fig15_space(request_counts=counts))
    rows = []
    overheads = []
    for count in counts:
        label = f"N={count}"
        udc = out.result_for(label, "UDC")
        ldc = out.result_for(label, "LDC")
        overhead = ldc.space_bytes / max(1, udc.space_bytes) - 1
        overheads.append(overhead)
        rows.append(
            (
                label,
                round(mib(udc.space_bytes), 2),
                round(mib(ldc.space_bytes), 2),
                f"{overhead:+.1%}",
                round(mib(ldc.extra_space_bytes), 2),
            )
        )
    print()
    print(
        format_table(
            ["requests", "UDC space MiB", "LDC space MiB", "LDC overhead", "frozen MiB"],
            rows,
            title="Fig. 15 — final space consumption (uniform RWB):",
        )
    )
    print(paper_row("overhead", "+3.37% .. +10.0% (deep 10GB store)",
                    f"{min(overheads):+.1%} .. {max(overheads):+.1%}"))
    print(
        "  note: our simulated tree is shallow (bottom level ~50-70% of data"
        " vs ~90% in the paper), so the frozen-region *fraction* is larger;"
        " the §III-D bound still holds."
    )

    # Shape assertions: overhead is bounded (the §III-D worst case is
    # "frozen < 50% of the store", i.e. LDC total < 2x the live data),
    # never unbounded growth.
    for count, overhead in zip(counts, overheads):
        assert overhead < 1.0, f"space overhead blew past the bound at N={count}"
    # The configured safety valve really limits the frozen region.
    for count in counts:
        ldc = out.result_for(f"N={count}", "LDC")
        assert ldc.extra_space_bytes <= 0.60 * (
            ldc.live_bytes + ldc.extra_space_bytes
        ) + 8 * 64 * 1024, "frozen region escaped its cap"
    # And LDC never uses *less* total space than UDC (delayed GC).
    assert min(overheads) > -0.10
