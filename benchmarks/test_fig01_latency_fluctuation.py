"""Fig. 1 — latency fluctuation of the stock (UDC) LSM-tree store.

Paper: a YCSB mix of 10 M reads and 10 M writes on LevelDB shows per-second
average write latency fluctuating up to 49.13x above the smallest bucket,
because batched compaction periodically blocks requests.

We run the same mixed workload on the UDC engine and report the bucketed
average-latency series plus the fluctuation ratio.  The shape to match:
order-of-magnitude swings between quiet and compaction-heavy intervals.
"""

from repro.harness.experiments import fig01_latency_fluctuation
from repro.harness.report import format_table, paper_row

from conftest import run_once


def test_fig01_latency_fluctuation(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark,
        lambda: fig01_latency_fluctuation(ops=bench_ops, key_space=bench_keys),
    )
    points = out["points"]
    rows = [
        (
            f"{point.start_us / 1e3:.1f}ms",
            point.count,
            round(point.mean_latency_us, 1),
            round(point.max_latency_us, 1),
        )
        for point in points[:25]
    ]
    print()
    print(
        format_table(
            ["virtual time", "ops", "mean latency (us)", "max latency (us)"],
            rows,
            title="Fig. 1 — per-bucket average latency under a 50/50 mix (UDC):",
        )
    )
    print(paper_row("write-latency fluctuation", "up to 49.13x", f"{out['fluctuation_ratio']:.1f}x"))

    # Shape assertion: latency fluctuates by at least an order of magnitude.
    assert out["fluctuation_ratio"] > 5.0
    assert len(points) >= 3
