"""Ablation — frozen-region dynamics over virtual time.

Fig. 15 reports the *final* space consumption; this ablation watches the
frozen region breathe during the run.  The §III-D argument is that
delayed garbage collection is safe because the region is self-limiting:
links add frozen bytes, merges recycle them, and the safety valve forces
merges if accumulation outpaces recycling.  We sample engine state every
few hundred operations and check the claim over the whole trajectory, not
just at the end.
"""

import random

from repro import DB, LDCPolicy
from repro.harness.experiments import experiment_config
from repro.harness.report import format_table, paper_row
from repro.harness.timeseries import StateSampler

from conftest import run_once


def _trace(ops, keys):
    db = DB(config=experiment_config(), policy=LDCPolicy())
    sampler = StateSampler(db, every_ops=max(1, ops // 50))
    rng = random.Random(5)
    value = b"v" * 1024
    for _ in range(ops):
        db.put(str(rng.randrange(keys)).zfill(16).encode(), value)
        sampler.tick()
    return db, sampler


def test_ablation_frozen_dynamics(benchmark, bench_ops, bench_keys):
    db, sampler = run_once(benchmark, lambda: _trace(bench_ops, bench_keys))
    rows = []
    for sample in sampler.samples[:: max(1, len(sampler.samples) // 15)]:
        live = sum(sample.level_bytes)
        rows.append(
            (
                f"{sample.virtual_time_us / 1e6:.2f}s",
                round(live / 2**20, 2),
                round(sample.frozen_bytes / 2**20, 2),
                f"{sample.frozen_bytes / max(live, 1):.0%}",
                sample.frozen_files,
                sample.linked_tables,
            )
        )
    print()
    print(
        format_table(
            ["virtual time", "live MiB", "frozen MiB", "frozen/live", "frozen files", "linked tables"],
            rows,
            title="Ablation — frozen-region trajectory (write-only, LDC):",
        )
    )
    recycled = db.policy.frozen.total_recycled
    frozen_ever = db.policy.frozen.total_frozen_ever
    print(paper_row("delayed GC recycles", "every file, eventually",
                    f"{recycled}/{frozen_ever} frozen files recycled during run"))

    cap = db.config.frozen_space_limit_ratio
    slack = 8 * db.config.sstable_target_bytes
    # The valve holds at every sample, not just at the end.
    for sample in sampler.samples:
        live = sum(sample.level_bytes)
        assert sample.frozen_bytes <= cap * max(live, 1) + slack
    # Recycling keeps pace: most frozen files ever created were reclaimed.
    assert recycled > 0.5 * frozen_ever
    # The region is dynamic, not monotone growth.
    series = sampler.series("frozen_bytes")
    assert any(later < earlier for earlier, later in zip(series, series[1:]))