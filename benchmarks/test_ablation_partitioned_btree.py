"""Ablation — LDC transferred to a partitioned B-tree (§V).

The paper claims LDC generalises beyond LSM-trees: in a partitioned
B-tree, linking side-partition slices onto main-partition leaves "both
shrink[s] the granularity of data merging for smaller tail latency and
accumulate[s] more data in small partitions for less write amplification".

We run the same update stream through the classical eager absorption
(merge all side partitions into the whole main at once) and the LDC-style
linked absorption, and compare worst-case stalls, tail latency and write
amplification.
"""

import random

from repro.extras.partitioned_btree import EagerAbsorb, LinkedAbsorb, PartitionedBTree
from repro.harness.report import format_table, paper_row

from conftest import run_once


def _run_stream(policy, ops, key_space):
    tree = PartitionedBTree(
        policy=policy,
        buffer_bytes=8 * 1024,
        leaf_bytes=8 * 1024,
        max_side_partitions=4,
    )
    rng = random.Random(2019)
    latencies = []
    for index in range(ops):
        key = str(rng.randrange(key_space)).zfill(12).encode()
        begin = tree.clock.now()
        tree.put(key, b"v" * 64)
        latencies.append(tree.clock.now() - begin)
    latencies.sort()

    def pct(p):
        return latencies[min(len(latencies) - 1, int(len(latencies) * p / 100))]

    return {
        "p999_us": pct(99.9),
        "max_us": latencies[-1],
        "amp": tree.write_amplification(),
        "merges": tree.leaf_merge_count,
        "absorbs": tree.absorb_count,
    }


def _experiment(ops, key_space):
    return {
        "eager": _run_stream(EagerAbsorb(), ops, key_space),
        "linked": _run_stream(LinkedAbsorb(), ops, key_space),
    }


def test_ablation_partitioned_btree(benchmark, bench_ops, bench_keys):
    out = run_once(benchmark, lambda: _experiment(bench_ops // 2, bench_keys // 2))
    rows = [
        (
            name,
            round(data["p999_us"], 1),
            round(data["max_us"], 1),
            round(data["amp"], 2),
            data["absorbs"],
            data["merges"],
        )
        for name, data in out.items()
    ]
    print()
    print(
        format_table(
            ["absorption", "p99.9 (us)", "max (us)", "write amp", "absorbs", "leaf merges"],
            rows,
            title="Ablation — partitioned B-tree, eager vs LDC-linked absorption:",
        )
    )
    eager, linked = out["eager"], out["linked"]
    print(paper_row("granularity claim (§V)", "smaller tail with LDC",
                    f"max stall {eager['max_us']:.0f} -> {linked['max_us']:.0f} us"))

    # §V's claim, measured: linked absorption shrinks the worst-case stall...
    assert linked["max_us"] < eager["max_us"]
    # ...without inflating write amplification beyond the eager scheme's.
    assert linked["amp"] < eager["amp"] * 1.5
