"""Fig. 12(b)/(e) — fan-out sweep for UDC and LDC.

Paper (uniform RWB, fan-out 3..100): LDC achieves fewer compaction I/Os
and higher throughput at *every* fan-out, by +8.8% (small fan-outs) up to
+187.9%; the gap widens with fan-out because LDC's whole point is removing
the O(fan_out) per-round overlap.  UDC's best fan-out is ~3, LDC's ~25.

Shape to match: LDC >= UDC across the sweep, and LDC's relative advantage
at the largest fan-out exceeds its advantage at the smallest.
"""

from repro.harness.experiments import fig12be_fanout_sweep
from repro.harness.report import format_table, improvement, mib, paper_row

from conftest import run_once

FAN_OUTS = (3, 10, 25, 50)


def test_fig12be_fanout_sweep(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark,
        lambda: fig12be_fanout_sweep(
            fan_outs=FAN_OUTS, ops=bench_ops, key_space=bench_keys
        ),
    )
    rows = []
    gain = {}
    io_saving = {}
    for fan_out in FAN_OUTS:
        label = f"fanout={fan_out}"
        udc = out.result_for(label, "UDC")
        ldc = out.result_for(label, "LDC")
        gain[fan_out] = ldc.throughput_ops_s / udc.throughput_ops_s - 1
        io_saving[fan_out] = 1 - ldc.compaction_bytes_total / max(
            1, udc.compaction_bytes_total
        )
        rows.append(
            (
                label,
                round(udc.throughput_ops_s),
                round(ldc.throughput_ops_s),
                improvement(ldc.throughput_ops_s, udc.throughput_ops_s),
                round(mib(udc.compaction_bytes_total), 1),
                round(mib(ldc.compaction_bytes_total), 1),
            )
        )
    print()
    print(
        format_table(
            ["setting", "UDC ops/s", "LDC ops/s", "LDC gain", "UDC compMiB", "LDC compMiB"],
            rows,
            title="Fig. 12(b)/(e) — fan-out sweep (uniform RWB):",
        )
    )
    print(paper_row("gain range", "+8.8% .. +187.9%",
                    f"{min(gain.values()):+.1%} .. {max(gain.values()):+.1%}"))

    # Shape assertions.
    for fan_out in FAN_OUTS:
        assert gain[fan_out] > -0.10, f"LDC must not lose at fan-out {fan_out}"
    assert gain[max(FAN_OUTS)] > gain[min(FAN_OUTS)], (
        "LDC's advantage must grow with fan-out"
    )
    assert io_saving[max(FAN_OUTS)] > 0.2
