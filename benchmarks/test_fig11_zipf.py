"""Fig. 11 — throughput under uniform vs Zipf key distributions.

Paper (RWB, Zipf constant 1..5): both policies speed up as skew
concentrates accesses (better caching, more localised compaction), and
LDC's advantage *grows* with skew — +38.7% uniform rising to +67.3% at
Zipf-5 — because concentrated writes reach the SliceLink threshold faster.

Shape to match: monotone-ish throughput increase with skew for both
policies, and LDC >= UDC throughout with the gap not collapsing at high
skew.
"""

from repro.harness.experiments import fig11_zipf
from repro.harness.report import format_table, improvement, paper_row

from conftest import run_once

SERIES = ("RWB", "Zipf1", "Zipf2", "Zipf5")
PAPER_GAIN = {"RWB": "+38.7%", "Zipf5": "+67.3%"}


def test_fig11_zipf(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark, lambda: fig11_zipf(ops=bench_ops, key_space=bench_keys)
    )
    rows = []
    throughput = {}
    for series in SERIES:
        udc = out.result_for(series, "UDC").throughput_ops_s
        ldc = out.result_for(series, "LDC").throughput_ops_s
        throughput[series] = (udc, ldc)
        rows.append(
            (
                series,
                round(udc),
                round(ldc),
                improvement(ldc, udc),
                PAPER_GAIN.get(series, ""),
            )
        )
    print()
    print(
        format_table(
            ["distribution", "UDC ops/s", "LDC ops/s", "LDC gain", "paper gain"],
            rows,
            title="Fig. 11 — throughput, uniform vs Zipf (RWB):",
        )
    )
    print(paper_row("gain growth with skew", "38.7% -> 67.3%", "see table"))

    # Shape assertions: skew helps both policies; LDC keeps winning.
    assert throughput["Zipf5"][0] > throughput["RWB"][0], "skew must help UDC"
    assert throughput["Zipf5"][1] > throughput["RWB"][1], "skew must help LDC"
    for series in SERIES:
        udc, ldc = throughput[series]
        assert ldc > udc * 0.95, f"LDC must not lose under {series}"
