"""Fig. 9 — average latency by workload mix, UDC vs LDC.

Paper: LDC's average latency drops to 43.3% of UDC's on write-heavy (WH)
and 45.6% on balanced (RWB) workloads; on read-heavy (RH) the two are
comparable (LDC trades some read speed for its write gains).

Shape to match: a clear LDC win on WH and RWB; near-parity on RH.
"""

from repro.harness.experiments import fig09_avg_latency
from repro.harness.report import format_table, paper_row

from conftest import run_once

PAPER_RATIO = {"WH": 0.433, "RWB": 0.456, "RH": 1.0}


def test_fig09_avg_latency(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark, lambda: fig09_avg_latency(ops=bench_ops, key_space=bench_keys)
    )
    rows = []
    ratios = {}
    for mix in ("WH", "RWB", "RH"):
        udc = out.result_for(mix, "UDC").mean_latency_us
        ldc = out.result_for(mix, "LDC").mean_latency_us
        ratios[mix] = ldc / udc
        rows.append(
            (mix, round(udc, 1), round(ldc, 1), f"{ldc / udc:.2f}",
             f"{PAPER_RATIO[mix]:.2f}")
        )
    print()
    print(
        format_table(
            ["workload", "UDC avg (us)", "LDC avg (us)", "LDC/UDC", "paper LDC/UDC"],
            rows,
            title="Fig. 9 — average latency by workload:",
        )
    )
    print(paper_row("WH average-latency ratio", "0.43", f"{ratios['WH']:.2f}"))

    # Shape assertions: LDC at least matches UDC on the write-bearing
    # mixes and does not lose badly on read-heavy.
    assert ratios["WH"] < 1.0
    assert ratios["RWB"] < 1.0
    assert ratios["RH"] < 1.3
