"""Fig. 10(c) — total compaction I/O by workload, UDC vs LDC.

Paper: "the key-value store can save nearly half of the I/O requests
during the compaction procedure under all kinds of workloads"; e.g. under
WH, UDC reads/writes 98.78/107.1 GB against LDC's 50.38/58.78 GB.

Shape to match: LDC's compaction bytes (read and written) are a large
fraction below UDC's on every write-bearing mix.
"""

from repro.harness.experiments import fig10c_compaction_io
from repro.harness.report import format_table, mib, paper_row

from conftest import run_once

MIXES = ("WO", "WH", "RWB", "RH", "SCN-RWB")


def test_fig10c_compaction_io(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark, lambda: fig10c_compaction_io(ops=bench_ops, key_space=bench_keys)
    )
    rows = []
    savings = {}
    for mix in MIXES:
        udc = out.result_for(mix, "UDC")
        ldc = out.result_for(mix, "LDC")
        savings[mix] = 1 - ldc.compaction_bytes_total / max(
            1, udc.compaction_bytes_total
        )
        rows.append(
            (
                mix,
                round(mib(udc.compaction_read_bytes), 1),
                round(mib(udc.compaction_write_bytes), 1),
                round(mib(ldc.compaction_read_bytes), 1),
                round(mib(ldc.compaction_write_bytes), 1),
                f"{savings[mix]:.0%}",
            )
        )
    print()
    print(
        format_table(
            ["workload", "UDC read", "UDC write", "LDC read", "LDC write", "LDC saving"],
            rows,
            title="Fig. 10(c) — compaction I/O (MiB):",
        )
    )
    print(paper_row("saving under WH", "~49% (205.9 -> 109.2 GB)", f"{savings['WH']:.0%}"))

    # Shape assertions: substantial savings on every write-bearing mix.
    for mix in ("WO", "WH", "RWB"):
        assert savings[mix] > 0.15, f"LDC must cut compaction I/O on {mix}"
