"""Fig. 10(b) — throughput on the range-query (SCAN) mixes.

Paper: random insertions mixed with SCAN(100) queries; LDC beats UDC by
+86.2% (SCN-WH), +81.1% (SCN-RWB) and +49.1% (SCN-RH); average +72.3%.
Range queries are the workload hash-indexed stores cannot serve, which is
why LSM-trees carry them and why LDC must not break them.

Shape to match: LDC wins on the write-bearing scan mixes, with the gain
shrinking as scans take over.

Scaling note: the paper scans 100 records (~100 KB) against 2 MB SSTables
(5% of a file).  Our simulation-scale SSTables are 64 KB, so the
experiment uses a proportionally scaled scan of ~6 records; a literal
100-record scan would span several files per level — a geometry the
paper's testbed never exercises (see SCALED_SCAN_LENGTH).
"""

from repro.harness.experiments import fig10b_throughput_scan
from repro.harness.report import format_table, improvement, paper_row

from conftest import run_once

PAPER_GAIN = {"SCN-WH": "+86.2%", "SCN-RWB": "+81.1%", "SCN-RH": "+49.1%"}
MIXES = ("SCN-WH", "SCN-RWB", "SCN-RH")


def test_fig10b_throughput_scan(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark,
        lambda: fig10b_throughput_scan(ops=bench_ops // 3, key_space=bench_keys),
    )
    gains = {}
    rows = []
    for mix in MIXES:
        udc = out.result_for(mix, "UDC").throughput_ops_s
        ldc = out.result_for(mix, "LDC").throughput_ops_s
        gains[mix] = ldc / udc - 1.0
        rows.append(
            (mix, round(udc), round(ldc), improvement(ldc, udc), PAPER_GAIN[mix])
        )
    print()
    print(
        format_table(
            ["workload", "UDC ops/s", "LDC ops/s", "LDC gain", "paper gain"],
            rows,
            title="Fig. 10(b) — throughput, SCAN(100) mixes:",
        )
    )
    mean_gain = sum(gains.values()) / len(gains)
    print(paper_row("average gain", "+72.3%", f"{mean_gain:+.1%}"))

    # Shape assertions.
    assert gains["SCN-WH"] > 0.0
    assert gains["SCN-RWB"] > -0.05
    assert gains["SCN-WH"] >= gains["SCN-RH"] - 0.05
