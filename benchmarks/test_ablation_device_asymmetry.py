"""Ablation — LDC's edge as a function of device read/write asymmetry.

The paper's motivation (§I, §II-C point 3) is that SSDs read much faster
than they write, so trading read work for write savings pays.  We sweep
the simulated device's write bandwidth from very slow (highly asymmetric)
to equal to the read bandwidth (symmetric) and measure LDC's throughput
gain at each point.

Expectation: the gain is largest on the most write-starved device and
shrinks as the device becomes symmetric — quantifying "especially fitting
new hardware like SSDs" (contribution 3).
"""

from repro.harness.experiments import ablation_device_asymmetry
from repro.harness.report import format_table, paper_row

from conftest import run_once

WRITE_BANDWIDTHS = (100.0, 250.0, 1000.0, 2000.0)  # read side fixed at 2000


def test_ablation_device_asymmetry(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark,
        lambda: ablation_device_asymmetry(
            write_bandwidths=WRITE_BANDWIDTHS,
            ops=bench_ops,
            key_space=bench_keys,
        ),
    )
    rows = []
    gains = {}
    for bandwidth in WRITE_BANDWIDTHS:
        label = f"w_bw={bandwidth:g}MB/s"
        udc = out.result_for(label, "UDC").throughput_ops_s
        ldc = out.result_for(label, "LDC").throughput_ops_s
        gains[bandwidth] = ldc / udc - 1
        rows.append(
            (
                label,
                f"{2000.0 / bandwidth:.0f}:1",
                round(udc),
                round(ldc),
                f"{gains[bandwidth]:+.1%}",
            )
        )
    print()
    print(
        format_table(
            ["device", "read:write", "UDC ops/s", "LDC ops/s", "LDC gain"],
            rows,
            title="Ablation — LDC gain vs device asymmetry (uniform RWB):",
        )
    )
    print(paper_row("asymmetric device favours LDC", "motivation of §I",
                    f"{gains[min(WRITE_BANDWIDTHS)]:+.1%} at 20:1 vs "
                    f"{gains[max(WRITE_BANDWIDTHS)]:+.1%} at 1:1"))

    # Shape assertions: biggest win on the most asymmetric device; the
    # edge shrinks toward symmetry.
    assert gains[min(WRITE_BANDWIDTHS)] > 0.0
    assert gains[min(WRITE_BANDWIDTHS)] > gains[max(WRITE_BANDWIDTHS)]
