"""Ablation — measuring what the paper only asserts about lazy schemes.

The paper excludes lazy compaction (RocksDB universal / size-tiered /
dCompaction) from its latency comparison "because the lazy compaction
schemes introduce much larger tail latency, which does not suit online
applications" (§IV-A).  We implemented a size-tiered baseline, so we can
measure the claim instead of citing it.

Expectation: tiered buys low write amplification but pays with compaction
rounds far larger than either UDC's or LDC's — and a correspondingly
heavier deep tail than LDC.
"""

from repro.harness.experiments import ablation_tiered_tail
from repro.harness.report import format_table, mib, paper_row

from conftest import run_once

POLICIES = ("UDC", "LDC", "Tiered", "Delayed")


def test_ablation_tiered_tail(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark, lambda: ablation_tiered_tail(ops=bench_ops, key_space=bench_keys)
    )
    rows = []
    metrics = {}
    for policy in POLICIES:
        result = out.result_for("RWB", policy)
        per_round = result.compaction_bytes_total / max(1, result.compaction_count)
        metrics[policy] = {
            "p9999": result.latencies.percentile(99.99),
            "amp": result.write_amplification,
            "round_mib": per_round / 2**20,
            "max_us": result.latencies.maximum(),
        }
        rows.append(
            (
                policy,
                round(result.throughput_ops_s),
                round(result.latencies.percentile(99.9)),
                round(result.latencies.percentile(99.99)),
                round(result.latencies.maximum()),
                round(result.write_amplification, 2),
                round(per_round / 2**20, 2),
            )
        )
    print()
    print(
        format_table(
            ["policy", "ops/s", "p99.9us", "p99.99us", "max us", "write amp", "MiB/round"],
            rows,
            title="Ablation — lazy (tiered) compaction vs UDC vs LDC (RWB):",
        )
    )
    print(paper_row("lazy schemes' granularity", "much larger (asserted §IV-A)",
                    f"{metrics['Tiered']['round_mib']:.1f} vs {metrics['LDC']['round_mib']:.2f} MiB/round"))

    # The paper's claim, measured: tiered's compaction rounds dwarf LDC's...
    assert metrics["Tiered"]["round_mib"] > 3 * metrics["LDC"]["round_mib"]
    # ...its worst-case stall exceeds LDC's worst case...
    assert metrics["Tiered"]["max_us"] > metrics["LDC"]["max_us"]
    # ...even though its write amplification is competitive (the trade-off).
    assert metrics["Tiered"]["amp"] < metrics["UDC"]["amp"]
    # Same story for the dCompaction-style delayed batching: I/O saved
    # relative to UDC, paid for with bigger rounds than LDC's.
    assert metrics["Delayed"]["amp"] < metrics["UDC"]["amp"]
    assert metrics["Delayed"]["round_mib"] > metrics["LDC"]["round_mib"]
    assert metrics["Delayed"]["max_us"] > metrics["LDC"]["max_us"]
