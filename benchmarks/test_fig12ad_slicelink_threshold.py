"""Fig. 12(a)/(d) — impact of the SliceLink threshold T_s.

Paper (uniform RWB): the best threshold equals the fan-out (10) — small
thresholds merge too early (more rounds, more extra lower-level I/O per
byte moved), large thresholds shrink amplification further (Fig. 12d) but
fragment reads and lose overall performance (Fig. 12a).

Shape to match: compaction I/O falls as T_s grows; throughput peaks at a
moderate threshold rather than at either extreme.
"""

from repro.harness.experiments import fig12ad_slicelink_threshold
from repro.harness.report import format_table, mib, paper_row

from conftest import run_once

THRESHOLDS = (2, 5, 10, 20, 40)


def test_fig12ad_slicelink_threshold(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark,
        lambda: fig12ad_slicelink_threshold(
            thresholds=THRESHOLDS, ops=bench_ops, key_space=bench_keys
        ),
    )
    io_by_threshold = {}
    thpt_by_threshold = {}
    rows = []
    for row in out.rows:
        result = row.result
        label = row.workload
        if label.startswith("T_s="):
            threshold = int(label.split("=")[1])
            io_by_threshold[threshold] = result.compaction_bytes_total
            thpt_by_threshold[threshold] = result.throughput_ops_s
        rows.append(
            (
                f"{label} ({row.policy})",
                round(result.throughput_ops_s),
                round(mib(result.compaction_bytes_total), 1),
                round(result.write_amplification, 2),
            )
        )
    print()
    print(
        format_table(
            ["setting", "ops/s", "compaction MiB", "write amp"],
            rows,
            title="Fig. 12(a)/(d) — SliceLink threshold sweep (uniform RWB):",
        )
    )
    best = max(thpt_by_threshold, key=thpt_by_threshold.get)
    print(paper_row("best T_s", "fan-out (10)", str(best)))

    # Shape assertions: amplification falls with larger thresholds...
    assert io_by_threshold[max(THRESHOLDS)] < io_by_threshold[min(THRESHOLDS)]
    # ...and the throughput optimum is an interior moderate setting.
    assert best not in (min(THRESHOLDS),), "tiny thresholds should not win"
