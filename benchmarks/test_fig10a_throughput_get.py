"""Fig. 10(a) — total throughput on the point-lookup mixes.

Paper: LDC over UDC by +78.0% (WO), +73.7% (WH), +80.2% (RWB), +16% (RH),
and roughly parity on RO (the adaptive threshold plus Bloom filters hide
the slice-read cost).  Average improvement across WH/RWB/RH: 56.7%.

Shape to match: LDC's gain is largest on write-dominated mixes, shrinks
as reads take over, and RO shows no large regression.
"""

from repro.harness.experiments import fig10a_throughput_get
from repro.harness.report import format_table, improvement, paper_row

from conftest import run_once

PAPER_GAIN = {"WO": "+78.0%", "WH": "+73.7%", "RWB": "+80.2%", "RH": "+16%", "RO": "~0%"}
MIXES = ("WO", "WH", "RWB", "RH", "RO")


def test_fig10a_throughput_get(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark, lambda: fig10a_throughput_get(ops=bench_ops, key_space=bench_keys)
    )
    gains = {}
    rows = []
    for mix in MIXES:
        udc = out.result_for(mix, "UDC").throughput_ops_s
        ldc = out.result_for(mix, "LDC").throughput_ops_s
        gains[mix] = ldc / udc - 1.0
        rows.append(
            (mix, round(udc), round(ldc), improvement(ldc, udc), PAPER_GAIN[mix])
        )
    print()
    print(
        format_table(
            ["workload", "UDC ops/s", "LDC ops/s", "LDC gain", "paper gain"],
            rows,
            title="Fig. 10(a) — throughput, point-lookup mixes:",
        )
    )
    print(paper_row("avg gain over WH/RWB/RH", "+56.7%",
                    improvement(1 + (gains['WH'] + gains['RWB'] + gains['RH']) / 3, 1)))

    # Shape assertions.
    assert gains["WO"] > 0.05, "LDC must win clearly on write-only"
    assert gains["WH"] > 0.0
    assert gains["RWB"] > 0.0
    assert gains["WO"] > gains["RH"], "gain shrinks as reads take over"
    assert gains["RO"] > -0.25, "read-only must not regress badly"
