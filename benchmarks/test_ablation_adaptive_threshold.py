"""Ablation — the §III-B.4 self-adaptive SliceLink threshold.

The paper describes the controller but never plots it separately; this
ablation compares fixed T_s (= fan-out) against the adaptive controller on
three read/write mixes.  Expectation: adaptivity tracks the mix — it must
never lose badly to the fixed setting, and the converged threshold should
order with the write ratio (WH > RWB > RH).
"""

from repro.harness.experiments import ablation_adaptive_threshold
from repro.harness.report import format_table, paper_row

from conftest import run_once

MIXES = ("WH", "RWB", "RH")


def test_ablation_adaptive_threshold(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark,
        lambda: ablation_adaptive_threshold(ops=bench_ops, key_space=bench_keys),
    )
    rows = []
    thresholds = {}
    for mix in MIXES:
        fixed = out.result_for(mix, "LDC-fixed")
        adaptive = out.result_for(mix, "LDC-adaptive")
        thresholds[mix] = adaptive.final_threshold
        rows.append(
            (
                mix,
                round(fixed.throughput_ops_s),
                round(adaptive.throughput_ops_s),
                fixed.final_threshold,
                adaptive.final_threshold,
            )
        )
    print()
    print(
        format_table(
            ["workload", "fixed ops/s", "adaptive ops/s", "fixed T_s", "converged T_s"],
            rows,
            title="Ablation — fixed vs self-adaptive SliceLink threshold:",
        )
    )
    print(paper_row("threshold tracks write ratio", "WH > RWB > RH", str(thresholds)))

    # The converged thresholds must order with the write ratio.
    assert thresholds["WH"] >= thresholds["RWB"] >= thresholds["RH"]
    # Adaptivity never loses badly to the hand-tuned fixed setting.
    for mix in MIXES:
        fixed = out.result_for(mix, "LDC-fixed").throughput_ops_s
        adaptive = out.result_for(mix, "LDC-adaptive").throughput_ops_s
        assert adaptive > 0.8 * fixed, f"adaptive collapsed on {mix}"
