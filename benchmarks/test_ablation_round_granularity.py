"""Ablation — the compaction-round granularity distribution.

The mechanism behind both of the paper's headline results is the size of
one compaction round (equation (3)): UDC merges one upper file with
O(fan_out) lower files; LDC merges one lower file with ~one file's worth
of slices.  This ablation measures the per-round byte distribution
directly — median, P99 and maximum round size for each policy on the same
workload — making the granularity claim a number rather than an argument.
"""

from repro.harness.experiments import BOTH_POLICIES, experiment_config, tiered_factory
from repro.harness.report import format_table, paper_row
from repro.harness.runner import build_db
from repro.workload import WorkloadGenerator, rwb

from conftest import run_once


def _round_distribution(ops, keys):
    results = {}
    policies = list(BOTH_POLICIES) + [("Tiered", tiered_factory)]
    spec = rwb(num_operations=ops, key_space=keys)
    for name, factory in policies:
        db = build_db(factory, config=experiment_config())
        generator = WorkloadGenerator(spec)
        for operation in generator.preload_operations():
            db.put(operation.key, operation.value)
        for operation in generator.operations():
            if operation.kind == "put":
                db.put(operation.key, operation.value)
            else:
                db.get(operation.key)
        stats = db.engine_stats
        results[name] = {
            "rounds": len(stats.round_bytes),
            "p50": stats.round_bytes_percentile(50),
            "p99": stats.round_bytes_percentile(99),
            "max": stats.max_round_bytes,
        }
    return results


def test_ablation_round_granularity(benchmark, bench_ops, bench_keys):
    out = run_once(benchmark, lambda: _round_distribution(bench_ops, bench_keys))
    rows = [
        (
            name,
            data["rounds"],
            round(data["p50"] / 1024, 1),
            round(data["p99"] / 1024, 1),
            round(data["max"] / 1024, 1),
        )
        for name, data in out.items()
    ]
    print()
    print(
        format_table(
            ["policy", "rounds", "median KiB", "p99 KiB", "max KiB"],
            rows,
            title="Ablation — per-round compaction size distribution (RWB):",
        )
    )
    udc, ldc, tiered = out["UDC"], out["LDC"], out["Tiered"]
    print(paper_row("LDC round vs UDC round (eq. 3)", "O(1) vs O(fan_out) files",
                    f"p99 {ldc['p99'] / 1024:.0f} vs {udc['p99'] / 1024:.0f} KiB"))

    # The granularity ordering the paper's analysis predicts:
    # LDC rounds are the smallest, tiered's the largest.
    assert ldc["p99"] < udc["p99"]
    assert ldc["max"] <= udc["max"]
    assert tiered["max"] > udc["max"]
    # LDC compensates with more (small) rounds.
    assert ldc["rounds"] > udc["rounds"]
