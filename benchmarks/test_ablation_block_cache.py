"""Ablation — the block cache's interaction with LDC's read overhead.

LevelDB ships an LRU block cache; the paper's Fig. 11 discussion relies on
it ("Zipf distribution usually leads to higher hit ratios of in-memory
cache") and §III-C argues cached Bloom filters/indexes make LDC's
practical read amplification near UDC's.  This ablation measures the
cache's effect on a read-heavy Zipfian workload: hit ratio, block reads
and throughput, with and without a cache, for both policies.

Expected shape: the cache absorbs most hot-block reads (high hit ratio),
lifting both policies' read-heavy throughput, and narrowing whatever gap
LDC's slice checks open on reads.
"""

from repro import DB
from repro.harness.experiments import BOTH_POLICIES, experiment_config
from repro.harness.runner import run_workload
from repro.harness.report import format_table, paper_row
from repro.workload import rh

from conftest import run_once


def _measure(ops, keys):
    results = {}
    spec = rh(
        num_operations=ops,
        key_space=keys,
        distribution="zipf",
        zipf_constant=0.99,
    )
    for cache_kib in (0, 256):
        config = experiment_config(block_cache_bytes=cache_kib * 1024)
        for policy_name, factory in BOTH_POLICIES:
            result = run_workload(spec, factory, config=config)
            results[(cache_kib, policy_name)] = result
    return results


def test_ablation_block_cache(benchmark, bench_ops, bench_keys):
    out = run_once(benchmark, lambda: _measure(bench_ops, bench_keys))
    rows = []
    for (cache_kib, policy), result in out.items():
        rows.append(
            (
                f"{cache_kib}KiB" if cache_kib else "disabled",
                policy,
                round(result.throughput_ops_s),
                result.sstable_blocks_read,
                round(result.mean_latency_us, 1),
            )
        )
    print()
    print(
        format_table(
            ["cache", "policy", "ops/s", "device block reads", "avg latency us"],
            rows,
            title="Ablation — block cache on a Zipfian read-heavy mix:",
        )
    )

    udc_off = out[(0, "UDC")]
    udc_on = out[(256, "UDC")]
    ldc_off = out[(0, "LDC")]
    ldc_on = out[(256, "LDC")]
    print(paper_row("cache absorbs hot reads", "§IV-E mechanism",
                    f"block reads {udc_off.sstable_blocks_read} -> {udc_on.sstable_blocks_read} (UDC)"))

    # The cache removes device block reads and lifts throughput for both.
    assert udc_on.sstable_blocks_read < udc_off.sstable_blocks_read
    assert ldc_on.sstable_blocks_read < ldc_off.sstable_blocks_read
    assert udc_on.throughput_ops_s > udc_off.throughput_ops_s
    assert ldc_on.throughput_ops_s > ldc_off.throughput_ops_s
    # §III-C: with caching, LDC's read-side overhead must not leave it
    # behind UDC even on a read-heavy mix.
    assert ldc_on.throughput_ops_s > 0.9 * udc_on.throughput_ops_s