"""Fig. 7 — tuning the fan-out alone cannot fix UDC.

Paper (§III-D): small fan-outs reduce per-round amplification but deepen
the tree (more rounds); large fan-outs flatten the tree but each round
drags in more files.  Measured across fan-out 3..100, no setting removes
the amplification — which motivates changing the *mechanism* instead.

Shape to match: write amplification stays high across the whole sweep
(no fan-out makes UDC approach LDC's amplification), with large fan-outs
clearly worse than the small-fan-out optimum.
"""

from repro.harness.experiments import fig07_fanout_udc
from repro.harness.report import format_table

from conftest import run_once

FAN_OUTS = (3, 5, 10, 25, 50)


def test_fig07_fanout_udc(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark,
        lambda: fig07_fanout_udc(
            fan_outs=FAN_OUTS, ops=bench_ops, key_space=bench_keys
        ),
    )
    amps = {}
    rows = []
    for row in out.rows:
        result = row.result
        fan_out = int(row.workload.split("=")[1])
        amps[fan_out] = result.write_amplification
        rows.append(
            (
                row.workload,
                round(result.throughput_ops_s),
                round(result.write_amplification, 2),
                round(result.compaction_bytes_total / 2**20, 1),
            )
        )
    print()
    print(
        format_table(
            ["setting", "ops/s", "write amp", "compaction MiB"],
            rows,
            title="Fig. 7 — UDC across fan-outs (uniform RWB):",
        )
    )

    best = min(amps.values())
    worst = max(amps.values())
    # No fan-out setting gets close to eliminating amplification...
    assert best > 2.0
    # ...and the spread shows tuning matters but cannot win (paper: the
    # best fan-out is small; large fan-outs amplify more).
    assert worst > best
    assert min(amps, key=amps.get) <= 10
