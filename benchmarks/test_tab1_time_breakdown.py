"""Table I — where the engine's time goes under pure insertion.

Paper (perf on LevelDB, 10 M inserts on the PCIe SSD):

    DoCompactionWork   61.4%
    file system        20.9%
    DoWrite             8.04%
    Others              9.66%

The claim being reproduced: *compaction dominates everything else*, which
is why optimising the compaction procedure (LDC) moves the whole system.
"""

from repro.harness.experiments import tab1_time_breakdown
from repro.harness.report import format_table, paper_row

from conftest import run_once

PAPER_SHARES = {
    "DoCompactionWork": 0.614,
    "file system": 0.209,
    "DoWrite": 0.0804,
    "Others": 0.0966,
}


def test_tab1_time_breakdown(benchmark, bench_ops, bench_keys):
    shares = run_once(
        benchmark, lambda: tab1_time_breakdown(ops=bench_ops, key_space=bench_keys)
    )
    print()
    print(
        format_table(
            ["module", "paper share", "measured share"],
            [
                (name, f"{PAPER_SHARES[name]:.1%}", f"{shares.get(name, 0.0):.1%}")
                for name in PAPER_SHARES
            ],
            title="Table I — time share by module (write-only load, UDC):",
        )
    )
    print(paper_row("dominant module", "DoCompactionWork", max(shares, key=shares.get)))

    # Shape assertions: compaction is the single largest consumer and takes
    # the majority of accounted time together with the flush/log I/O.
    assert shares["DoCompactionWork"] == max(shares.values())
    assert shares["DoCompactionWork"] > 0.4
    assert shares["DoCompactionWork"] + shares["file system"] > 0.6
