"""Fig. 13 — Bloom filter sizing under a read-only workload (LDC store).

Paper: with 10 M point lookups, the count of data-block reads falls as
bits/key grows but stops improving past ~16 bits/key; meanwhile the
filter size per 2-MB SSTable grows linearly (11.3 KB at 8 bits/key to
67.3 KB at 128).  Conclusion: 8-16 bits/key is the right setting — filters
cost ~0.5% space and cut LDC's slice-read overhead to near-UDC levels.

Shape to match: block reads decrease then plateau around 16 bits/key;
filter size grows linearly.
"""

from repro.harness.experiments import fig13_bloom_ro
from repro.harness.report import format_table, paper_row

from conftest import run_once

BITS = (2, 4, 8, 16, 32, 64)


def test_fig13_bloom_ro(benchmark, bench_ops, bench_keys):
    out = run_once(
        benchmark,
        lambda: fig13_bloom_ro(
            bits_per_key=BITS, ops=bench_ops, key_space=bench_keys
        ),
    )
    rows = []
    for bits in BITS:
        data = out[bits]
        rows.append(
            (
                bits,
                int(data["block_reads"]),
                f"{data['block_reads'] / data['reads']:.3f}",
                int(data["bloom_skips"]),
                round(data["filter_bytes_per_table"] / 1024, 2),
            )
        )
    print()
    print(
        format_table(
            ["bits/key", "block reads", "reads/op", "bloom skips", "filter KiB/table"],
            rows,
            title="Fig. 13 — read-only workload on an LDC store:",
        )
    )
    reads = {bits: out[bits]["block_reads"] for bits in BITS}
    print(paper_row("plateau", ">=16 bits/key adds little", "see reads/op column"))

    # Shape assertions.
    assert reads[2] > reads[16], "few bits => extra false-positive block reads"
    plateau_change = abs(reads[16] - reads[64]) / max(reads[16], 1)
    assert plateau_change < 0.05, "past 16 bits/key the curve is flat"
    # Filter size linear in bits/key.
    assert out[64]["filter_bytes_per_table"] == (
        8 * out[8]["filter_bytes_per_table"]
    )
