"""Model validation — the §II/§III equations against the measured engine.

Not a paper figure, but the glue between them: Theorems 2.1/3.1 predict a
fan-out-sized gap in write amplification, equation (2) predicts total
throughput from the read/write split, and equation (3) bounds the tail.
This bench feeds *measured* quantities through the formulas and checks
the predictions point the right way.
"""

from repro.harness.experiments import (
    BOTH_POLICIES,
    experiment_config,
)
from repro.harness.report import format_table, paper_row
from repro.harness.runner import run_workload
from repro.model import (
    ldc_write_amplification,
    total_throughput,
    udc_write_amplification,
)
from repro.workload import rwb

from conftest import run_once


def _measure(ops, keys):
    config = experiment_config()
    spec = rwb(num_operations=ops, key_space=keys)
    results = {}
    for name, factory in BOTH_POLICIES:
        results[name] = run_workload(spec, factory, config=config)
    return results, config


def test_model_validation(benchmark, bench_ops, bench_keys):
    results, config = run_once(benchmark, lambda: _measure(bench_ops, bench_keys))
    udc, ldc = results["UDC"], results["LDC"]

    total_bytes = max(udc.live_bytes, config.sstable_target_bytes)
    predicted_udc = udc_write_amplification(
        config.fan_out, total_bytes, config.sstable_target_bytes
    )
    predicted_ldc = ldc_write_amplification(
        config.fan_out, total_bytes, config.sstable_target_bytes
    )

    rows = [
        ("UDC write amp", round(predicted_udc, 2), round(udc.write_amplification, 2)),
        ("LDC write amp", round(predicted_ldc, 2), round(ldc.write_amplification, 2)),
        (
            "UDC/LDC amp ratio",
            round(predicted_udc / predicted_ldc, 2),
            round(udc.write_amplification / ldc.write_amplification, 2),
        ),
    ]
    print()
    print(
        format_table(
            ["quantity", "model (Thm 2.1/3.1)", "measured"],
            rows,
            title="Model validation — amplification theorems vs engine:",
        )
    )

    # Equation (2): feeding each policy's measured per-class service rates
    # back through the harmonic combination must reproduce its measured
    # total throughput direction (LDC's balance beats UDC's).
    def effective_rates(result):
        writes = max(1, len(result.write_latencies))
        reads = max(1, len(result.read_latencies))
        write_rate = writes / max(1e-9, sum(result.write_latencies.values) / 1e6)
        read_rate = reads / max(1e-9, sum(result.read_latencies.values) / 1e6)
        return write_rate, read_rate

    udc_w, udc_r = effective_rates(udc)
    ldc_w, ldc_r = effective_rates(ldc)
    eq2_udc = total_throughput(0.5, udc_w, udc_r)
    eq2_ldc = total_throughput(0.5, ldc_w, ldc_r)
    print(paper_row("eq (2) predicts LDC > UDC", "yes", str(eq2_ldc > eq2_udc)))
    print(paper_row("measured LDC > UDC", "yes",
                    str(ldc.throughput_ops_s > udc.throughput_ops_s)))

    # Direction checks: the theorems' ordering shows up in measurements.
    assert udc.write_amplification > ldc.write_amplification
    # The model's k-fold gap is an upper bound for a shallow tree: the
    # measured ratio must lie between 1 and the predicted ratio.
    measured_ratio = udc.write_amplification / ldc.write_amplification
    assert 1.0 < measured_ratio <= predicted_udc / predicted_ldc + 1.0
    # Equation (2) agrees with the measured winner.
    assert (eq2_ldc > eq2_udc) == (
        ldc.throughput_ops_s > udc.throughput_ops_s
    )
