"""Fig. 14 — scalability with request count (RWB, uniform).

Paper (5..30 M requests): LDC maintains a 39-65% throughput advantage and
43.3-46.7% compaction-I/O saving across the whole sweep — the benefit is
not a small-store artefact.

Shape to match: LDC wins at every scale point, and the relative advantage
does not vanish as the store grows.
"""

from repro.harness.experiments import fig14_scalability
from repro.harness.report import format_table, improvement, mib, paper_row

from conftest import run_once


def test_fig14_scalability(benchmark, bench_ops, bench_keys):
    counts = (bench_ops // 3, bench_ops * 2 // 3, bench_ops, bench_ops * 2)
    out = run_once(benchmark, lambda: fig14_scalability(request_counts=counts))
    rows = []
    gains = []
    savings = []
    for count in counts:
        label = f"N={count}"
        udc = out.result_for(label, "UDC")
        ldc = out.result_for(label, "LDC")
        gains.append(ldc.throughput_ops_s / udc.throughput_ops_s - 1)
        savings.append(
            1 - ldc.compaction_bytes_total / max(1, udc.compaction_bytes_total)
        )
        rows.append(
            (
                label,
                round(udc.throughput_ops_s),
                round(ldc.throughput_ops_s),
                improvement(ldc.throughput_ops_s, udc.throughput_ops_s),
                round(mib(udc.compaction_bytes_total), 1),
                round(mib(ldc.compaction_bytes_total), 1),
                f"{savings[-1]:.0%}",
            )
        )
    print()
    print(
        format_table(
            ["requests", "UDC ops/s", "LDC ops/s", "gain", "UDC MiB", "LDC MiB", "IO saving"],
            rows,
            title="Fig. 14 — scalability sweep (uniform RWB):",
        )
    )
    print(paper_row("throughput gain range", "+39% .. +65%",
                    f"{min(gains):+.1%} .. {max(gains):+.1%}"))
    print(paper_row("compaction-I/O saving", "43.3% .. 46.7%",
                    f"{min(savings):.1%} .. {max(savings):.1%}"))

    # Shape assertions: LDC keeps its edge at every scale.
    assert all(gain > -0.05 for gain in gains)
    assert gains[-1] > 0.0, "the advantage must persist at the largest scale"
    assert savings[-1] > 0.15
