#!/usr/bin/env python3
"""Compare all three compaction policies across the paper's workload mixes.

Runs the Table III point-lookup mixes (WO / WH / RWB / RH / RO) against
UDC (LevelDB's leveled compaction), LDC (the paper), and the size-tiered
lazy baseline, printing throughput, tail latency and compaction I/O side
by side — a miniature of the paper's Figs. 8–10 in one table.

Run:  python examples/compare_policies.py            (a few minutes)
      python examples/compare_policies.py --quick    (smaller, ~30 s)
"""

import sys

from repro import LDCPolicy, LeveledCompaction, TieredCompaction
from repro.harness import format_table, run_workload
from repro.harness.experiments import experiment_config
from repro.workload import TABLE_III

MIXES = ("WO", "WH", "RWB", "RH", "RO")
POLICIES = (
    ("UDC", LeveledCompaction),
    ("LDC", LDCPolicy),
    ("Tiered", TieredCompaction),
)


def main() -> None:
    quick = "--quick" in sys.argv
    ops = 10_000 if quick else 40_000
    key_space = 5_000 if quick else 15_000

    rows = []
    for mix in MIXES:
        spec = TABLE_III[mix](num_operations=ops, key_space=key_space)
        for policy_name, factory in POLICIES:
            result = run_workload(spec, factory, config=experiment_config())
            rows.append(
                (
                    mix,
                    policy_name,
                    round(result.throughput_ops_s),
                    result.latencies.percentile(99.9),
                    result.compaction_bytes_total / 2**20,
                    result.write_amplification,
                )
            )
            print(f"  finished {mix}/{policy_name}", file=sys.stderr)

    print(
        format_table(
            ["workload", "policy", "ops/s", "p99.9 (us)", "compaction MiB", "write amp"],
            rows,
            title=f"\nTable III mixes, {ops:,} ops over {key_space:,} keys:",
        )
    )
    print(
        "\nExpected shape (paper Figs. 8-10): LDC beats UDC on write-bearing "
        "mixes in both\nthroughput and tail latency; Tiered wins some write "
        "amplification but pays with\nmuch larger tails; on RO all policies "
        "converge."
    )


if __name__ == "__main__":
    main()
