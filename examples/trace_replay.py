#!/usr/bin/env python3
"""Record a workload trace, persist it, and replay it across all policies.

A trace pins down the *exact* request sequence — useful for sharing a
benchmark between engines, regression-testing a compaction change against
a captured workload, or comparing policies on identical inputs.  This
example:

1. generates a mixed read/write/delete workload and records its trace;
2. writes it to disk in the portable text format and reads it back;
3. replays the identical stream through UDC, LDC, the size-tiered and the
   dCompaction-style delayed baselines;
4. verifies all four stores end bit-identical, then prints their cost
   profiles side by side.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import (
    DB,
    DelayedCompaction,
    LDCPolicy,
    LeveledCompaction,
    TieredCompaction,
)
from repro.workload import read_trace, record_trace, replay, write_trace, rwb

POLICIES = (
    ("UDC", LeveledCompaction),
    ("LDC", LDCPolicy),
    ("Tiered", TieredCompaction),
    ("Delayed", DelayedCompaction),
)


def main() -> None:
    spec = rwb(
        num_operations=20_000,
        key_space=6_000,
        value_bytes=256,
        preload_keys=6_000,
        delete_ratio=0.05,
        seed=1234,
    )
    operations = record_trace(spec, include_preload=True)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "rwb.trace"
        count = write_trace(operations, path, name=spec.name)
        size_kib = path.stat().st_size / 1024
        print(f"recorded {count:,} operations -> {path.name} ({size_kib:.0f} KiB)\n")

        contents = None
        print(f"{'policy':<9} {'ops/s':>8} {'p99.9 us':>9} {'write amp':>10} {'compact MiB':>12}")
        print("-" * 54)
        for name, factory in POLICIES:
            db = DB(policy=factory())
            latencies = []
            start_clock = db.clock.now()
            for op in read_trace(path):
                begin = db.clock.now()
                replay(db, [op])
                latencies.append(db.clock.now() - begin)
            latencies.sort()
            p999 = latencies[int(len(latencies) * 0.999)]
            elapsed_s = (db.clock.now() - start_clock) / 1e6
            final = dict(db.logical_items())
            if contents is None:
                contents = final
            else:
                assert final == contents, f"{name} diverged on the same trace!"
            print(
                f"{name:<9} {len(latencies) / elapsed_s:>8.0f} {p999:>9.0f} "
                f"{db.write_amplification():>10.2f} "
                f"{db.device.stats.compaction_bytes_total / 2**20:>12.1f}"
            )
        print(
            "\nAll four stores hold identical contents after the identical "
            "trace — the policies\ndiffer only in *when* they move data, "
            "which is exactly what the cost columns show."
        )


if __name__ == "__main__":
    main()
