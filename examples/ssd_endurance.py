#!/usr/bin/env python3
"""SSD endurance: how much flash lifetime does LDC buy?

The paper's third contribution claims LDC "lengthen[s] the lifetimes of
SSDs significantly by cutting down the compaction I/Os by about 50%".
Flash cells tolerate a bounded number of program/erase cycles (the paper
cites 5,000-10,000), so device lifetime is inversely proportional to the
bytes physically written — and since the FTL's own garbage collection
amplifies host writes again below the file system, what actually ages
the device is *total* write amplification: host WA x device WA.

This example mounts the real flash model (``repro.ssd.flash``: page
mapping, log-structured allocation, GC, per-block erase counts) under
both policies, ingests the same update-heavy stream, and reads the
measured erase counters instead of a host-side proxy:

* ``device WA``     — flash pages programmed / host bytes written,
* ``total WA``      — host WA x device WA (user byte -> flash program),
* ``blocks erased`` / ``max erase`` — the wear the projection rests on.

The device is sized from a flash-off probe of the UDC run so both
policies see identical slack (see docs/DEVICE.md on why capacity, not
policy, dominates device WA when the geometry is too tight).

Run:  python examples/ssd_endurance.py
"""

import numpy as np

from repro import DB, DeviceConfig, FlashSpec, LSMConfig

NUM_OPS = 60_000
KEY_SPACE = 25_000
VALUE_BYTES = 1024

#: Device capacity = probe footprint x this margin (same calibration as
#: repro.harness.experiments.fig_device_wa).
SIZE_MARGIN = 3.0
OVER_PROVISIONING = 0.07  # 7% hidden blocks, the enterprise default
PE_CYCLES = 5_000  # conservative end of the paper's 5k-10k range


def ingest(policy: str, profile=None, *, num_ops, key_space, value_bytes) -> DB:
    kwargs = {"profile": profile} if profile is not None else {}
    db = DB(config=LSMConfig(), policy=policy, **kwargs)
    rng = np.random.default_rng(7)
    value = b"x" * value_bytes
    for _ in range(num_ops):
        key = str(int(rng.integers(0, key_space))).zfill(16).encode()
        db.put(key, value)
    return db


def run(num_ops=NUM_OPS, key_space=KEY_SPACE, value_bytes=VALUE_BYTES):
    """Size the device, ingest under UDC and LDC, return measured rows."""
    probe = ingest(
        "udc", num_ops=num_ops, key_space=key_space, value_bytes=value_bytes
    )
    space = probe.version.total_file_bytes() + probe.policy.extra_space_bytes()
    flash = FlashSpec(
        logical_bytes=max(int(space * SIZE_MARGIN), 1 << 20),
        over_provisioning=OVER_PROVISIONING,
    )
    rows = []
    for name in ("udc", "ldc"):
        db = ingest(
            name,
            DeviceConfig(flash=flash),
            num_ops=num_ops,
            key_space=key_space,
            value_bytes=value_bytes,
        )
        snap = db.metrics()
        rows.append(
            {
                "policy": name.upper(),
                "user_bytes": db.engine_stats.user_bytes_written,
                "host_bytes": snap.host_bytes_written,
                "programmed_bytes": snap.flash_bytes_programmed,
                "host_wa": snap.write_amplification,
                "device_wa": snap.device_write_amplification,
                "total_wa": snap.total_write_amplification,
                "blocks_erased": snap.blocks_erased,
                "max_erase": snap.max_erase_count,
            }
        )
    return flash, rows


def main(num_ops=NUM_OPS, key_space=KEY_SPACE, value_bytes=VALUE_BYTES) -> None:
    print(
        f"ingesting {num_ops:,} updates of {value_bytes} B over "
        f"{key_space:,} keys\n"
    )
    flash, rows = run(num_ops, key_space, value_bytes)
    print(
        f"flash geometry: {flash.physical_bytes / 2**20:.1f} MiB physical "
        f"({flash.total_blocks} blocks x {flash.block_bytes // 1024} KiB), "
        f"OP {flash.over_provisioning:.0%}, GC {flash.gc_policy}\n"
    )
    print(
        f"{'policy':<8} {'user data':>11} {'flash writes':>13} "
        f"{'host WA':>8} {'device WA':>10} {'total WA':>9} "
        f"{'erases':>7} {'max P/E':>8} {'lifetime*':>10}"
    )
    print("-" * 92)
    for row in rows:
        # Wear-limited lifetime: the hottest block hits the P/E rating
        # after PE_CYCLES / max_erase repetitions of this ingest.
        lifetime = PE_CYCLES / max(row["max_erase"], 1)
        print(
            f"{row['policy']:<8} {row['user_bytes'] / 2**20:>9.1f}Mi "
            f"{row['programmed_bytes'] / 2**20:>11.1f}Mi "
            f"{row['host_wa']:>8.2f} {row['device_wa']:>10.2f} "
            f"{row['total_wa']:>9.2f} {row['blocks_erased']:>7} "
            f"{row['max_erase']:>8} {lifetime:>5.0f} runs"
        )
    udc, ldc = rows
    print(
        f"\n* repetitions of this ingest before the hottest block exhausts "
        f"{PE_CYCLES:,} P/E cycles."
    )
    print(
        f"LDC programs {100 * (1 - ldc['programmed_bytes'] / udc['programmed_bytes']):.0f}% "
        f"less flash than UDC (total WA {ldc['total_wa']:.2f} vs "
        f"{udc['total_wa']:.2f}), so the device lasts "
        f"{udc['programmed_bytes'] / ldc['programmed_bytes']:.2f}x longer "
        f"under this workload."
    )


if __name__ == "__main__":
    main()
