#!/usr/bin/env python3
"""SSD endurance: how much flash lifetime does LDC buy?

The paper's third contribution claims LDC "lengthen[s] the lifetimes of
SSDs significantly by cutting down the compaction I/Os by about 50%".
Flash cells tolerate a bounded number of program/erase cycles (the paper
cites 5,000–10,000), so device lifetime is inversely proportional to the
bytes physically written.

This example ingests the same update-heavy stream under UDC and LDC,
reads the device's wear counter, and projects the lifetime of a small
simulated SSD under a sustained version of the workload.

Run:  python examples/ssd_endurance.py
"""

import numpy as np

from repro import DB, LDCPolicy, LeveledCompaction, LSMConfig

NUM_OPS = 60_000
KEY_SPACE = 25_000
VALUE_BYTES = 1024

# Projection parameters for the lifetime estimate.
DEVICE_CAPACITY_GIB = 8.0
PE_CYCLES = 5_000  # conservative end of the paper's 5k-10k range


def ingest(policy: object) -> DB:
    db = DB(config=LSMConfig(), policy=policy)
    rng = np.random.default_rng(7)
    value = b"x" * VALUE_BYTES
    for _ in range(NUM_OPS):
        key = str(int(rng.integers(0, KEY_SPACE))).zfill(16).encode()
        db.put(key, value)
    return db


def main() -> None:
    print(f"ingesting {NUM_OPS:,} updates of {VALUE_BYTES} B over {KEY_SPACE:,} keys\n")
    rows = []
    for name, policy in (("UDC", LeveledCompaction()), ("LDC", LDCPolicy())):
        db = ingest(policy)
        user_bytes = db.engine_stats.user_bytes_written
        wear = db.device.wear_bytes
        rows.append((name, user_bytes, wear, db.write_amplification()))

    total_endurance_bytes = DEVICE_CAPACITY_GIB * 2**30 * PE_CYCLES
    print(
        f"{'policy':<8} {'user data':>12} {'flash writes':>13} "
        f"{'write amp':>10} {'projected lifetime*':>20}"
    )
    print("-" * 68)
    baseline_wear = rows[0][2]
    for name, user_bytes, wear, amp in rows:
        # Lifetime under sustained ingest at this amplification.
        lifetime_units = total_endurance_bytes / wear
        print(
            f"{name:<8} {user_bytes / 2**20:>10.1f}Mi {wear / 2**20:>11.1f}Mi "
            f"{amp:>10.2f} {lifetime_units:>14.0f} runs"
        )
    udc_wear, ldc_wear = rows[0][2], rows[1][2]
    print(
        f"\n* lifetime of a {DEVICE_CAPACITY_GIB:.0f} GiB device rated for "
        f"{PE_CYCLES:,} P/E cycles, in repetitions of this ingest."
    )
    print(
        f"LDC writes {100 * (1 - ldc_wear / udc_wear):.0f}% less to flash, i.e. the "
        f"device lasts {udc_wear / ldc_wear:.2f}x longer under this workload."
    )


if __name__ == "__main__":
    main()
