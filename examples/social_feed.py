#!/usr/bin/env python3
"""Social-feed scenario: the paper's motivating online workload.

The paper's introduction motivates LDC with online big-data services —
social networking in particular — where users continuously post (writes)
while timelines are assembled from range reads, and where *tail latency* is
the user-visible quality metric.

This example models a feed store: keys are ``(user, timestamp)`` pairs so
one user's posts are contiguous; the workload interleaves 60% post writes
with 40% timeline scans.  It runs the same trace against UDC and LDC and
reports the numbers an SRE would care about: p99/p99.9 latency and how
often an operation stalls behind compaction.

Run:  python examples/social_feed.py
"""

import numpy as np

from repro import DB, LDCPolicy, LeveledCompaction, LSMConfig

NUM_USERS = 400
NUM_OPS = 40_000
POST_BYTES = 512
TIMELINE_POSTS = 20


def feed_key(user: int, post_index: int) -> bytes:
    """Keys sort by user, then by time — a timeline is one contiguous range."""
    return f"feed/{user:06d}/{post_index:010d}".encode()


def run_trace(policy_name: str, policy: object) -> dict:
    db = DB(config=LSMConfig(), policy=policy)
    rng = np.random.default_rng(2019)
    post_counts = [0] * NUM_USERS
    latencies = []

    for _ in range(NUM_OPS):
        user = int(rng.integers(0, NUM_USERS))
        begin = db.clock.now()
        if rng.random() < 0.6:
            # The user posts.
            body = rng.bytes(POST_BYTES)
            db.put(feed_key(user, post_counts[user]), body)
            post_counts[user] += 1
        else:
            # Someone opens the user's timeline: newest TIMELINE_POSTS posts.
            start = max(0, post_counts[user] - TIMELINE_POSTS)
            db.scan(feed_key(user, start), count=TIMELINE_POSTS)
        latencies.append(db.clock.now() - begin)

    latencies.sort()

    def pct(p: float) -> float:
        return latencies[min(len(latencies) - 1, int(len(latencies) * p / 100))]

    return {
        "policy": policy_name,
        "p50_us": pct(50),
        "p99_us": pct(99),
        "p999_us": pct(99.9),
        "mean_us": sum(latencies) / len(latencies),
        "compaction_mib": db.device.stats.compaction_bytes_total / 2**20,
        "write_amp": db.write_amplification(),
    }


def main() -> None:
    print(f"social feed: {NUM_USERS} users, {NUM_OPS} ops (60% posts / 40% timelines)\n")
    results = [
        run_trace("UDC (stock LevelDB)", LeveledCompaction()),
        run_trace("LDC (this paper)", LDCPolicy()),
    ]
    header = f"{'policy':<22} {'p50':>8} {'p99':>9} {'p99.9':>9} {'mean':>8} {'compactIO':>10} {'WA':>6}"
    print(header)
    print("-" * len(header))
    for row in results:
        print(
            f"{row['policy']:<22} {row['p50_us']:>7.0f}u {row['p99_us']:>8.0f}u "
            f"{row['p999_us']:>8.0f}u {row['mean_us']:>7.1f}u "
            f"{row['compaction_mib']:>8.1f}Mi {row['write_amp']:>6.2f}"
        )
    udc, ldc = results
    print(
        f"\nLDC cuts p99.9 by {udc['p999_us'] / max(ldc['p999_us'], 1e-9):.2f}x and "
        f"compaction I/O by {100 * (1 - ldc['compaction_mib'] / udc['compaction_mib']):.0f}% "
        f"on this trace."
    )


if __name__ == "__main__":
    main()
