#!/usr/bin/env python3
"""Self-adaptive SliceLink threshold reacting to a shifting workload.

§III-B.4 of the paper proposes tuning LDC's SliceLink threshold ``T_s`` to
the live read/write mix: small thresholds for read-dominated phases (fewer
linked slices to check on reads), large ones for write-dominated phases
(more accumulation, less write amplification).

This example drives one LDC store through three phases — write-heavy,
balanced, read-heavy — and prints the controller's smoothed write-ratio
estimate and the threshold it converges to in each phase.

Run:  python examples/adaptive_tuning.py
"""

import numpy as np

from repro import DB, LDCPolicy, LSMConfig

PHASES = (
    ("write-heavy (90% writes)", 0.9, 30_000),
    ("balanced   (50% writes)", 0.5, 30_000),
    ("read-heavy (10% writes)", 0.1, 30_000),
)
KEY_SPACE = 15_000


def main() -> None:
    policy = LDCPolicy(adaptive=True)
    db = DB(config=LSMConfig(), policy=policy)
    rng = np.random.default_rng(11)
    value = b"v" * 512

    # Seed the store so the read phases hit existing keys.
    for index in range(KEY_SPACE):
        db.put(str(index).zfill(16).encode(), value)

    fan_out = db.config.fan_out
    print(f"fan-out = {fan_out}; controller maps write-ratio w -> T_s ~ 2*{fan_out}*w\n")
    print(f"{'phase':<28} {'est. write ratio':>17} {'T_s':>5} {'merges':>8}")
    print("-" * 62)
    for label, write_ratio, ops in PHASES:
        merges_before = db.engine_stats.merge_count
        for _ in range(ops):
            key = str(int(rng.integers(0, KEY_SPACE))).zfill(16).encode()
            if rng.random() < write_ratio:
                db.put(key, value)
            else:
                db.get(key)
        print(
            f"{label:<28} {policy._adaptive.write_ratio:>17.3f} "  # noqa: SLF001 - demo introspection
            f"{policy.threshold:>5} {db.engine_stats.merge_count - merges_before:>8}"
        )

    print(
        "\nThe threshold follows the mix: large while writes dominate "
        "(accumulate more per merge),\nsmall once reads dominate (fewer "
        "slices for lookups to check)."
    )


if __name__ == "__main__":
    main()
