#!/usr/bin/env python3
"""LDC beyond LSM-trees: linked absorption in a partitioned B-tree (§V).

The paper's related-work section argues LDC generalises: a partitioned
B-tree also periodically merges small write-optimised partitions into a
large main partition, and the same link & merge split applies — freeze the
side partitions, link their slices onto the main partition's *leaves*, and
merge each leaf only when it has accumulated about a leaf's worth of
linked data.

This example ingests the same bursty update stream under both absorption
strategies and prints the per-operation stall profile, plus a small
text histogram of stall magnitudes.

Run:  python examples/btree_absorption.py
"""

import random

from repro.extras.partitioned_btree import (
    EagerAbsorb,
    LinkedAbsorb,
    PartitionedBTree,
)

NUM_OPS = 25_000
KEY_SPACE = 8_000
VALUE_BYTES = 64


def run(policy_name: str, policy) -> dict:
    tree = PartitionedBTree(
        policy=policy,
        buffer_bytes=8 * 1024,
        leaf_bytes=8 * 1024,
        max_side_partitions=4,
    )
    rng = random.Random(42)
    stalls = []
    for _ in range(NUM_OPS):
        key = str(rng.randrange(KEY_SPACE)).zfill(12).encode()
        begin = tree.clock.now()
        tree.put(key, b"v" * VALUE_BYTES)
        stalls.append(tree.clock.now() - begin)
    stalls.sort()
    return {
        "name": policy_name,
        "stalls": stalls,
        "amp": tree.write_amplification(),
        "absorbs": tree.absorb_count,
        "leaf_merges": tree.leaf_merge_count,
        "tree": tree,
    }


def histogram(stalls, buckets=(10, 100, 500, 1000, 5000)) -> str:
    """A small text histogram of stall magnitudes (µs)."""
    lines = []
    previous = 0.0
    for bound in list(buckets) + [float("inf")]:
        count = sum(1 for s in stalls if previous <= s < bound)
        bar = "#" * min(60, max(1, count * 60 // len(stalls)) if count else 0)
        label = f"<{bound:g}us" if bound != float("inf") else f">={previous:g}us"
        lines.append(f"    {label:>9} {count:>7}  {bar}")
        previous = bound
    return "\n".join(lines)


def main() -> None:
    print(
        f"partitioned B-tree, {NUM_OPS:,} updates over {KEY_SPACE:,} keys, "
        f"4 side partitions per absorb\n"
    )
    results = [
        run("eager absorption (classical)", EagerAbsorb()),
        run("linked absorption (LDC, §V)", LinkedAbsorb()),
    ]
    for data in results:
        stalls = data["stalls"]
        p999 = stalls[int(len(stalls) * 0.999)]
        print(
            f"{data['name']}\n"
            f"    write amp {data['amp']:.2f}, absorbs {data['absorbs']}, "
            f"leaf merges {data['leaf_merges']}, "
            f"p99.9 {p999:.0f}us, max {stalls[-1]:.0f}us"
        )
        print(histogram(stalls))
        print()
    eager, linked = results
    print(
        f"linked absorption shrinks the worst stall "
        f"{eager['stalls'][-1] / linked['stalls'][-1]:.1f}x and writes "
        f"{100 * (1 - linked['amp'] / eager['amp']):.0f}% less to the device."
    )


if __name__ == "__main__":
    main()
