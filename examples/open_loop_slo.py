#!/usr/bin/env python3
"""Open-loop serving: what does compaction cost *paying customers*?

Closed-loop benchmarks understate compaction interference: the client
politely waits for each operation, so a compaction stall slows the
*next* request but never piles requests up.  Real services are open
loop — requests keep arriving while the engine is stalled, the queue
grows, and every queued request inherits the stall.  The serving layer
(``repro.serve``) reproduces that: a seeded Poisson arrival process in
virtual time, a bounded FIFO queue with admission control, and separate
queue-wait / service-time accounting per request.

This example drives the same read/write-balanced workload through UDC
(stock leveled compaction) and LDC at the same offered load and a 1 ms
latency SLO, with two tenants sharing the store, and reports the
numbers a service owner actually signs: queue-inflated p99/p99.9,
mean wait vs mean service, and per-tenant SLO violation rates
(rejections count as violations — shedding load must not launder the
SLO).  UDC's whole-round compactions stall the server long enough for
the queue to spike, so its tail and violation rate are far worse than
LDC's at the identical offered load — the serving-layer form of the
paper's Fig. 1.

Run:  python examples/open_loop_slo.py
"""

from repro import LSMConfig, ServeSpec, Tenant, serve_workload
from repro.workload import rwb

NUM_OPS = 6_000
KEY_SPACE = 2_000
RATE_OPS_S = 15_000.0  # offered load, ops per virtual second
SLO_US = 1_000.0  # 1 ms, queue wait + service
QUEUE_DEPTH = 128


def run(num_ops=NUM_OPS, key_space=KEY_SPACE, rate_ops_s=RATE_OPS_S,
        slo_us=SLO_US):
    """Serve the workload under both policies; return per-policy rows."""
    spec = rwb(num_operations=num_ops, key_space=key_space)
    tenants = (
        Tenant("online", rate_ops_s * 0.5, slo_us=slo_us),
        Tenant("batch", rate_ops_s * 0.5, slo_us=slo_us * 10),
    )
    serve = ServeSpec(
        arrival="poisson",
        rate_ops_s=rate_ops_s,
        tenants=tenants,
        queue_depth=QUEUE_DEPTH,
        slo_us=slo_us,
        seed=7,
    )
    rows = []
    for name in ("udc", "ldc"):
        result = serve_workload(spec, name, serve, config=LSMConfig())
        rows.append(
            {
                "policy": name.upper(),
                "throughput_ops_s": result.throughput_ops_s,
                "mean_wait_us": result.wait_latencies.mean(),
                "mean_service_us": result.service_latencies.mean(),
                "p99_us": result.total_latencies.percentile(99.0),
                "p999_us": result.total_latencies.percentile(99.9),
                "rejected": result.rejected,
                "slo_violation_rate": result.slo_violation_rate,
                "tenants": {
                    stats.tenant.name: stats.slo_violation_rate
                    for stats in result.tenant_stats
                },
            }
        )
    return rows


def main(num_ops=NUM_OPS, key_space=KEY_SPACE, rate_ops_s=RATE_OPS_S,
         slo_us=SLO_US):
    rows = run(num_ops, key_space, rate_ops_s, slo_us)
    print(
        f"open-loop Poisson arrivals at {rate_ops_s:,.0f} ops/s, "
        f"SLO {slo_us:,.0f} us (queue wait + service)"
    )
    header = (
        f"{'policy':<7} {'tput':>8} {'wait':>9} {'service':>9} "
        f"{'p99':>9} {'p99.9':>10} {'rej':>5} {'SLO viol':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['policy']:<7} {row['throughput_ops_s']:>8,.0f} "
            f"{row['mean_wait_us']:>8,.0f}u {row['mean_service_us']:>8,.0f}u "
            f"{row['p99_us']:>8,.0f}u {row['p999_us']:>9,.0f}u "
            f"{row['rejected']:>5d} {row['slo_violation_rate']:>8.1%}"
        )
    print()
    for row in rows:
        tenants = ", ".join(
            f"{name}: {rate:.1%}" for name, rate in row["tenants"].items()
        )
        print(f"{row['policy']} per-tenant SLO violations — {tenants}")
    udc, ldc = rows
    ratio = udc["p999_us"] / ldc["p999_us"]
    print(
        f"\nat the same offered load, UDC's queue-inflated p99.9 is "
        f"{ratio:.1f}x LDC's: whole-round compactions stall the server "
        f"and every queued request inherits the stall."
    )


if __name__ == "__main__":
    main()
