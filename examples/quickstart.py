#!/usr/bin/env python3
"""Quickstart: the public API in two minutes.

Creates a key-value store running the paper's LDC compaction policy over a
simulated enterprise PCIe SSD, performs the basic operations, and prints
what the engine did — all in deterministic virtual time.

Run:  python examples/quickstart.py
"""

from repro import DB, LDCPolicy, LSMConfig


def main() -> None:
    # A store with the paper's geometry (fan-out 10, 10-bit Bloom filters)
    # at simulation scale: 64 KiB memtable/SSTables.
    config = LSMConfig()
    db = DB(config=config, policy=LDCPolicy())

    # --- Writes -------------------------------------------------------
    for user_id in range(5_000):
        key = f"user:{user_id:010d}".encode()
        value = f"profile-data-for-user-{user_id}".encode() * 4
        db.put(key, value)
    print(f"inserted 5,000 keys in {db.clock.now() / 1e3:.1f} virtual ms")

    # --- Point lookups --------------------------------------------------
    value = db.get(b"user:0000001234")
    assert value is not None and value.startswith(b"profile-data-for-user-1234")
    missing = db.get(b"user:9999999999")
    assert missing is None

    # --- Updates shadow older versions ---------------------------------
    db.put(b"user:0000001234", b"updated!")
    assert db.get(b"user:0000001234") == b"updated!"

    # --- Deletes are tombstones -----------------------------------------
    db.delete(b"user:0000000007")
    assert db.get(b"user:0000000007") is None

    # --- Range scans -----------------------------------------------------
    window = db.scan(b"user:0000002000", count=5)
    print("scan from user:2000 ->", [key.decode() for key, _ in window])

    # --- What the engine did ---------------------------------------------
    stats = db.engine_stats
    device = db.device.stats
    print(
        f"flushes={stats.flush_count}  links={stats.link_count}  "
        f"merges={stats.merge_count}  trivial_moves={stats.trivial_moves}"
    )
    print(
        f"compaction I/O: read {device.compaction_bytes_read / 2**20:.1f} MiB, "
        f"wrote {device.compaction_bytes_written / 2**20:.1f} MiB"
    )
    print(f"write amplification: {db.write_amplification():.2f}")
    print(
        "levels:",
        [len(level_files) for level_files in db.version.levels],
        f" frozen files awaiting merge: {len(db.policy.frozen)}",
    )
    db.close()


if __name__ == "__main__":
    main()
