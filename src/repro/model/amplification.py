"""I/O amplification theorems from §II-B and §III-C.

The paper derives four asymptotic amplification results:

* Theorem 2.1 — UDC write amplification: ``O(k * log_k(n/b))``;
* Theorem 2.2 — UDC read amplification: ``O(log_k(n/b) + u)``;
* Theorem 3.1 — LDC write amplification: ``O(log_k(n/b))``;
* Theorem 3.2 — LDC read amplification: ``O(k * log_k(n/b) + u)``,
  in practice close to ``O(log_k(n/b) + u)`` with cached Bloom filters.

These functions evaluate the formulas (with unit constants) so tests and
benches can compare the model's *shape* against measured amplification —
e.g. the predicted ``k``-fold gap between UDC and LDC write amplification,
or why tuning fan-out alone cannot win (Fig. 7: the ``k`` and ``log_k``
factors trade off).
"""

from __future__ import annotations

import math

from ..errors import ConfigError


def _check(fan_out: int, total_bytes: float, sstable_bytes: float) -> None:
    if fan_out < 2:
        raise ConfigError("fan_out must be at least 2")
    if total_bytes <= 0 or sstable_bytes <= 0:
        raise ConfigError("sizes must be positive")
    if total_bytes < sstable_bytes:
        raise ConfigError("total_bytes must be at least one SSTable")


def tree_height(fan_out: int, total_bytes: float, sstable_bytes: float) -> float:
    """LSM-tree height ``log_k(n/b)`` (at least 1)."""
    _check(fan_out, total_bytes, sstable_bytes)
    return max(1.0, math.log(total_bytes / sstable_bytes, fan_out))


def udc_write_amplification(
    fan_out: int, total_bytes: float, sstable_bytes: float
) -> float:
    """Theorem 2.1: each level rewrite drags in O(k) lower files."""
    return fan_out * tree_height(fan_out, total_bytes, sstable_bytes)


def ldc_write_amplification(
    fan_out: int, total_bytes: float, sstable_bytes: float
) -> float:
    """Theorem 3.1: per-round amplification is O(1); only the height remains."""
    return tree_height(fan_out, total_bytes, sstable_bytes)


def udc_read_amplification(
    fan_out: int,
    total_bytes: float,
    sstable_bytes: float,
    level0_files: int = 0,
) -> float:
    """Theorem 2.2: one sorted run per level plus the unsorted L0 files."""
    if level0_files < 0:
        raise ConfigError("level0_files must be non-negative")
    return tree_height(fan_out, total_bytes, sstable_bytes) + level0_files


def ldc_read_amplification(
    fan_out: int,
    total_bytes: float,
    sstable_bytes: float,
    level0_files: int = 0,
    bloom_effectiveness: float = 0.0,
) -> float:
    """Theorem 3.2 with the §III-C Bloom-filter refinement.

    ``bloom_effectiveness`` in [0, 1] interpolates between the worst case
    (0: every slice is read, ``O(k log + u)``) and the practical case the
    paper argues for (1: Bloom filters skip all useless slices, collapsing
    back to ``O(log + u)``).
    """
    if level0_files < 0:
        raise ConfigError("level0_files must be non-negative")
    if not 0.0 <= bloom_effectiveness <= 1.0:
        raise ConfigError("bloom_effectiveness must lie in [0, 1]")
    height = tree_height(fan_out, total_bytes, sstable_bytes)
    worst = fan_out * height
    best = height
    return best + (worst - best) * (1.0 - bloom_effectiveness) + level0_files


def optimal_fanout_search(
    total_bytes: float,
    sstable_bytes: float,
    amplification,
    candidates=range(2, 101),
) -> int:
    """Fan-out minimising a given amplification function (Fig. 7 / §III-D).

    For UDC the optimum sits at small fan-outs (``k / ln k`` grows with k),
    while LDC's amplification falls with ``k`` — matching the paper's
    observation that UDC peaked at fan-out 3 and LDC near 25.
    """
    best_k = None
    best_value = math.inf
    for k in candidates:
        value = amplification(k, total_bytes, sstable_bytes)
        if value < best_value:
            best_value = value
            best_k = k
    if best_k is None:
        raise ConfigError("no fan-out candidates supplied")
    return best_k
