"""The analytical performance model of §II–III, as executable formulas."""

from .amplification import (
    ldc_read_amplification,
    ldc_write_amplification,
    optimal_fanout_search,
    tree_height,
    udc_read_amplification,
    udc_write_amplification,
)
from .latency import (
    compaction_round_bytes,
    ldc_round_bytes,
    udc_vs_ldc_tail_ratio,
    write_tail_latency_us,
)
from .throughput import (
    lsm_read_throughput,
    lsm_write_throughput,
    paper_example_2c3,
    total_throughput,
)

__all__ = [
    "tree_height",
    "udc_write_amplification",
    "ldc_write_amplification",
    "udc_read_amplification",
    "ldc_read_amplification",
    "optimal_fanout_search",
    "lsm_write_throughput",
    "lsm_read_throughput",
    "total_throughput",
    "paper_example_2c3",
    "compaction_round_bytes",
    "ldc_round_bytes",
    "write_tail_latency_us",
    "udc_vs_ldc_tail_ratio",
]
