"""Tail-latency equation (3) from §II-B.

The paper models the write tail latency as the time one round of
compaction blocks a user write::

    tl_w = (k + 1) * c * b / (th_w^ssd - th_read) + p

where ``k`` is the fan-out (a UDC round drags in ~k lower files per upper
file), ``c`` the number of upper SSTables selected per round, ``b`` the
SSTable size, ``th_read`` the device bandwidth concurrently consumed by
reads, and ``p`` the (negligible) memtable insert time.

LDC's improvement substitutes the per-round file count: instead of
``(k + 1) * c`` files, a lower-level driven merge touches ``O(1)`` files —
roughly 2 (the target plus one file's worth of linked slices) — shrinking
each round and therefore the tail (§III-C).
"""

from __future__ import annotations

from ..errors import ConfigError


def compaction_round_bytes(fan_out: int, selected_files: int, sstable_bytes: int) -> int:
    """Bytes a UDC round moves: ``(k + 1) * c * b``."""
    if fan_out < 1 or selected_files < 1 or sstable_bytes <= 0:
        raise ConfigError("fan_out, selected_files, sstable_bytes must be positive")
    return (fan_out + 1) * selected_files * sstable_bytes


def ldc_round_bytes(selected_files: int, sstable_bytes: int, merge_factor: float = 2.0) -> int:
    """Bytes an LDC round moves: ``O(1) * c * b`` (default factor 2)."""
    if selected_files < 1 or sstable_bytes <= 0:
        raise ConfigError("selected_files and sstable_bytes must be positive")
    if merge_factor <= 0:
        raise ConfigError("merge_factor must be positive")
    return int(merge_factor * selected_files * sstable_bytes)


def write_tail_latency_us(
    round_bytes: float,
    device_write_bw_mbps: float,
    concurrent_read_bw_mbps: float = 0.0,
    memtable_write_us: float = 1.0,
) -> float:
    """Equation (3): the time one compaction round blocks a write.

    Bandwidths are in MB/s (1 MB/s == 1 byte/µs), so the quotient lands
    directly in microseconds.
    """
    if round_bytes < 0:
        raise ConfigError("round_bytes must be non-negative")
    effective = device_write_bw_mbps - concurrent_read_bw_mbps
    if effective <= 0:
        raise ConfigError(
            "reads must leave some device write bandwidth (th_w^ssd > th_read)"
        )
    return round_bytes / effective + memtable_write_us


def udc_vs_ldc_tail_ratio(fan_out: int, merge_factor: float = 2.0) -> float:
    """Predicted UDC/LDC tail ratio: ``(k + 1) / merge_factor``.

    With the paper's defaults (k = 10, LDC rounds ~2 files) the model
    predicts roughly a 5x smaller blocking time per round; the measured
    P99.9 improvement (2.62x) is smaller because not every tail event is a
    maximal round.
    """
    if fan_out < 1:
        raise ConfigError("fan_out must be positive")
    if merge_factor <= 0:
        raise ConfigError("merge_factor must be positive")
    return (fan_out + 1) / merge_factor
