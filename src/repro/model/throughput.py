"""Throughput equations (1) and (2) from §II-B.

Equation (1) maps device bandwidth through amplification to LSM throughput::

    th_w = th_w^ssd / a_w          th_r = th_r^ssd / a_r

Equation (2) combines them under a workload's write ratio ``r_w`` as the
harmonic (rate-limited) mean::

    th = 1 / (r_w / th_w + (1 - r_w) / th_r)

§II-C point 3 works a concrete example with these equations — raising write
throughput at some read cost *increases* total throughput on read-fast
devices — which is the quantitative argument for LDC's trade.  The tests
reproduce that example; the model-validation bench feeds *measured*
amplifications through these formulas and compares against measured
throughput.
"""

from __future__ import annotations

from ..errors import ConfigError


def lsm_write_throughput(device_write_bw: float, write_amplification: float) -> float:
    """Equation (1), write half: user-visible write bandwidth."""
    if device_write_bw <= 0:
        raise ConfigError("device write bandwidth must be positive")
    if write_amplification < 1:
        raise ConfigError("write amplification cannot be below 1")
    return device_write_bw / write_amplification


def lsm_read_throughput(device_read_bw: float, read_amplification: float) -> float:
    """Equation (1), read half: user-visible read bandwidth."""
    if device_read_bw <= 0:
        raise ConfigError("device read bandwidth must be positive")
    if read_amplification < 1:
        raise ConfigError("read amplification cannot be below 1")
    return device_read_bw / read_amplification


def total_throughput(
    write_ratio: float, write_throughput: float, read_throughput: float
) -> float:
    """Equation (2): rate-limited combination of read and write service."""
    if not 0.0 <= write_ratio <= 1.0:
        raise ConfigError("write_ratio must lie in [0, 1]")
    if write_throughput <= 0 or read_throughput <= 0:
        raise ConfigError("throughputs must be positive")
    return 1.0 / (
        write_ratio / write_throughput + (1.0 - write_ratio) / read_throughput
    )


def paper_example_2c3() -> dict:
    """The worked example of §II-C point 3, returned for tests/docs.

    With ``r_w = 0.5``, ``th_r = 10 MB/s`` and ``th_w = 1 MB/s`` the total
    is 1.82 MB/s; trading reads for writes (``th_w = 2``, ``th_r = 5``)
    lifts it to 2.86 MB/s — 57% higher although ``th_r + th_w`` dropped.
    """
    before = total_throughput(0.5, 1.0, 10.0)
    after = total_throughput(0.5, 2.0, 5.0)
    return {
        "before_mbps": before,
        "after_mbps": after,
        "improvement": after / before - 1.0,
    }
