"""Extensions beyond the paper's implementation.

The paper's related-work discussion (§V) argues LDC generalises past
LSM-trees: "in the partitioned B-tree, ... when the data in the small
partitions are merged into the main partition, LDC can be integrated to
both shrink the granularity of data merging for smaller tail latency and
accumulate more data in small partitions for less write amplification".
:mod:`repro.extras.partitioned_btree` implements exactly that claim so it
can be measured rather than asserted.
"""

from .partitioned_btree import (
    BTreeLeaf,
    EagerAbsorb,
    LinkedAbsorb,
    PartitionedBTree,
)

__all__ = [
    "PartitionedBTree",
    "BTreeLeaf",
    "EagerAbsorb",
    "LinkedAbsorb",
]
