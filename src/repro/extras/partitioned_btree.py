"""A partitioned B-tree with LDC-style linked absorption (§V extension).

Graefe's partitioned B-tree [21] keeps a large *main* partition plus small
*side* partitions that absorb bulk writes cheaply; periodically the side
partitions are merged into the main partition.  The paper's §V claims LDC
transfers to this structure: instead of one giant partition merge, freeze
the side partitions, *link* their key-range slices onto the main
partition's leaves, and merge each leaf only when it has accumulated about
a leaf's worth of linked data.

This module implements both absorption strategies over the same simulated
device so the claim is measurable:

* :class:`EagerAbsorb` — the classical scheme: when enough side partitions
  have accumulated, merge them *all* into the main partition in one pass
  (read + rewrite the whole main).  Low bookkeeping, huge merge
  granularity.
* :class:`LinkedAbsorb` — the LDC transfer: freeze side partitions, link
  slices onto leaves by responsibility range, merge per-leaf at a byte
  threshold, recycle frozen partitions by refcount.

The structure is deliberately a *B-tree*, not an LSM-tree: there is one
sorted main partition of fixed-size leaves, side partitions are flat
sorted runs, and reads bin-search the main leaves directly.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import EngineError
from ..ssd.device import SimulatedSSD
from ..ssd.metrics import COMPACTION_READ, COMPACTION_WRITE, FLUSH_WRITE, USER_READ
from ..ssd.profile import ENTERPRISE_PCIE

_RECORD_OVERHEAD = 13


def _record_size(key: bytes, value: bytes) -> int:
    return len(key) + len(value) + _RECORD_OVERHEAD


class BTreeLeaf:
    """One leaf of the main partition: a sorted run of (key, seq, value)."""

    __slots__ = ("keys", "seqs", "values", "size_bytes", "linked", "linked_bytes")

    def __init__(self, records: List[Tuple[bytes, int, bytes]]) -> None:
        if not records:
            raise EngineError("a leaf must hold at least one record")
        self.keys = [record[0] for record in records]
        self.seqs = [record[1] for record in records]
        self.values = [record[2] for record in records]
        self.size_bytes = sum(_record_size(k, v) for k, _, v in records)
        #: LDC state: slices of frozen side partitions linked to this leaf.
        self.linked: List["_SliceRef"] = []
        self.linked_bytes = 0

    @property
    def min_key(self) -> bytes:
        return self.keys[0]

    @property
    def max_key(self) -> bytes:
        return self.keys[-1]

    def get(self, key: bytes) -> Optional[Tuple[int, bytes]]:
        index = bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            return self.seqs[index], self.values[index]
        return None

    def records(self) -> Iterator[Tuple[bytes, int, bytes]]:
        return zip(self.keys, self.seqs, self.values)


class _SidePartition:
    """A flat sorted run absorbing a burst of writes."""

    __slots__ = ("records", "size_bytes", "refcount", "frozen")

    def __init__(self, records: List[Tuple[bytes, int, bytes]]) -> None:
        self.records = records
        self.size_bytes = sum(_record_size(k, v) for k, _, v in records)
        self.refcount = 0
        self.frozen = False

    def get(self, key: bytes) -> Optional[Tuple[int, bytes]]:
        keys = [record[0] for record in self.records]
        index = bisect_left(keys, key)
        if index < len(self.records) and self.records[index][0] == key:
            return self.records[index][1], self.records[index][2]
        return None

    def records_in_range(
        self, lo: Optional[bytes], hi: Optional[bytes]
    ) -> List[Tuple[bytes, int, bytes]]:
        keys = [record[0] for record in self.records]
        start = 0 if lo is None else bisect_left(keys, lo)
        stop = len(keys) if hi is None else bisect_left(keys, hi)
        return self.records[start:stop]


class _SliceRef:
    """A key-subrange view of a frozen side partition, linked to a leaf."""

    __slots__ = ("source", "lo", "hi", "link_seq", "size_bytes")

    def __init__(
        self,
        source: _SidePartition,
        lo: Optional[bytes],
        hi: Optional[bytes],
        link_seq: int,
    ) -> None:
        self.source = source
        self.lo = lo
        self.hi = hi
        self.link_seq = link_seq
        self.size_bytes = sum(
            _record_size(k, v) for k, _, v in source.records_in_range(lo, hi)
        )

    def covers(self, key: bytes) -> bool:
        if self.lo is not None and key < self.lo:
            return False
        return self.hi is None or key < self.hi

    def get(self, key: bytes) -> Optional[Tuple[int, bytes]]:
        if not self.covers(key):
            return None
        return self.source.get(key)

    def records(self) -> List[Tuple[bytes, int, bytes]]:
        return self.source.records_in_range(self.lo, self.hi)


class _AbsorbPolicy:
    """Strategy for moving side-partition data into the main partition."""

    name = "abstract"

    def attach(self, tree: "PartitionedBTree") -> None:
        self.tree = tree

    def absorb(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def maintain(self) -> None:
        """One background maintenance round, called once per operation."""

    def lookup_extra(self, leaf: BTreeLeaf, key: bytes) -> Optional[Tuple[int, bytes]]:
        """Check policy-held data newer than the leaf (LDC slices)."""
        return None

    def extra_space_bytes(self) -> int:
        return 0


class EagerAbsorb(_AbsorbPolicy):
    """Classical absorption: merge every side partition into the whole main.

    One pass reads the entire main partition plus all side partitions and
    rewrites the main — maximal granularity, the analogue of the paper's
    UDC/lazy criticism applied to B-trees.
    """

    name = "eager"

    def absorb(self) -> None:
        tree = self.tree
        device = tree.device
        sides = tree.side_partitions
        if not sides:
            return
        for leaf in tree.leaves:
            device.read(leaf.size_bytes, COMPACTION_READ, sequential=True)
        for side in sides:
            device.read(side.size_bytes, COMPACTION_READ, sequential=True)
        merged: Dict[bytes, Tuple[int, bytes]] = {}
        for leaf in tree.leaves:
            for key, seq, value in leaf.records():
                merged[key] = (seq, value)
        for side in sides:
            for key, seq, value in side.records:
                if key not in merged or seq > merged[key][0]:
                    merged[key] = (seq, value)
        records = [(key, seq, value) for key, (seq, value) in sorted(merged.items())]
        tree.leaves = tree.build_leaves(records)
        for leaf in tree.leaves:
            device.write(leaf.size_bytes, COMPACTION_WRITE, sequential=True)
        tree.side_partitions = []
        tree.absorb_count += 1


class LinkedAbsorb(_AbsorbPolicy):
    """LDC-style absorption: link slices to leaves, merge per leaf.

    Freezing and linking are metadata-only; the actual I/O happens per
    leaf, when a leaf has accumulated ``merge_ratio`` times its own size in
    linked data — the B-tree transfer of the paper's lower-level driven
    merge trigger.
    """

    name = "linked"

    def __init__(self, merge_ratio: float = 1.0) -> None:
        if merge_ratio <= 0:
            raise EngineError("merge_ratio must be positive")
        self.merge_ratio = merge_ratio
        self._link_seq = 0
        self.frozen: List[_SidePartition] = []

    def absorb(self) -> None:
        tree = self.tree
        sides = tree.side_partitions
        tree.side_partitions = []
        for side in sides:
            self._link(side)
        tree.absorb_count += 1
        # The actual merges are deferred to maintain(), one leaf per
        # operation — the LDC granularity property.

    def _link(self, side: _SidePartition) -> None:
        tree = self.tree
        side.frozen = True
        plan: List[Tuple[BTreeLeaf, Optional[bytes], Optional[bytes]]] = []
        previous_hi: Optional[bytes] = None
        for index, leaf in enumerate(tree.leaves):
            lo = previous_hi
            is_last = index == len(tree.leaves) - 1
            hi = None if is_last else leaf.max_key + b"\x00"
            previous_hi = hi
            if side.records_in_range(lo, hi):
                plan.append((leaf, lo, hi))
        if not plan:
            raise EngineError("a side partition must link to at least one leaf")
        side.refcount = len(plan)
        self.frozen.append(side)
        for leaf, lo, hi in plan:
            self._link_seq += 1
            piece = _SliceRef(side, lo, hi, self._link_seq)
            leaf.linked.append(piece)
            leaf.linked_bytes += piece.size_bytes

    def maintain(self) -> None:
        """Merge at most one due leaf (one I/O-bearing round per op)."""
        for leaf in self.tree.leaves:
            if leaf.linked and leaf.linked_bytes >= self.merge_ratio * leaf.size_bytes:
                self.merge_leaf(leaf)
                return

    def merge_leaf(self, leaf: BTreeLeaf) -> None:
        """The lower-level driven merge of one leaf with its slices."""
        tree = self.tree
        device = tree.device
        device.read(leaf.size_bytes, COMPACTION_READ, sequential=True)
        merged: Dict[bytes, Tuple[int, bytes]] = {
            key: (seq, value) for key, seq, value in leaf.records()
        }
        for piece in leaf.linked:
            device.read(piece.size_bytes, COMPACTION_READ, sequential=True)
            for key, seq, value in piece.records():
                if key not in merged or seq > merged[key][0]:
                    merged[key] = (seq, value)
        records = [(key, seq, value) for key, (seq, value) in sorted(merged.items())]
        new_leaves = tree.build_leaves(records)
        for new_leaf in new_leaves:
            device.write(new_leaf.size_bytes, COMPACTION_WRITE, sequential=True)
        index = tree.leaves.index(leaf)
        tree.leaves[index : index + 1] = new_leaves
        for piece in leaf.linked:
            piece.source.refcount -= 1
            if piece.source.refcount == 0:
                self.frozen.remove(piece.source)
                piece.source.frozen = False
        leaf.linked = []
        leaf.linked_bytes = 0
        tree.leaf_merge_count += 1

    def lookup_extra(self, leaf: BTreeLeaf, key: bytes) -> Optional[Tuple[int, bytes]]:
        best: Optional[Tuple[int, bytes]] = None
        for piece in sorted(leaf.linked, key=lambda p: p.link_seq, reverse=True):
            if not piece.covers(key):
                continue
            self.tree.device.read(
                min(piece.size_bytes, self.tree.leaf_bytes), USER_READ
            )
            hit = piece.get(key)
            if hit is not None and (best is None or hit[0] > best[0]):
                best = hit
        return best

    def extra_space_bytes(self) -> int:
        return sum(side.size_bytes for side in self.frozen)


class PartitionedBTree:
    """A partitioned B-tree over the simulated device.

    Writes buffer in memory; a full buffer becomes a side partition
    (sequential flush).  When ``max_side_partitions`` side partitions have
    accumulated, the absorb policy moves their contents into the main
    partition.  Reads check the buffer, then side partitions newest-first,
    then the responsible main leaf (and, under :class:`LinkedAbsorb`, its
    linked slices first).
    """

    def __init__(
        self,
        policy: Optional[_AbsorbPolicy] = None,
        device: Optional[SimulatedSSD] = None,
        buffer_bytes: int = 16 * 1024,
        leaf_bytes: int = 16 * 1024,
        max_side_partitions: int = 4,
    ) -> None:
        if buffer_bytes <= 0 or leaf_bytes <= 0 or max_side_partitions <= 0:
            raise EngineError("sizes and thresholds must be positive")
        self.policy = policy if policy is not None else LinkedAbsorb()
        self.device = device if device is not None else SimulatedSSD(ENTERPRISE_PCIE)
        self.clock = self.device.clock
        self.buffer_bytes = buffer_bytes
        self.leaf_bytes = leaf_bytes
        self.max_side_partitions = max_side_partitions
        self._buffer: Dict[bytes, Tuple[int, bytes]] = {}
        self._buffer_size = 0
        self.side_partitions: List[_SidePartition] = []
        self.leaves: List[BTreeLeaf] = []
        self._next_seq = 1
        self.absorb_count = 0
        self.leaf_merge_count = 0
        self.user_bytes_written = 0
        self.policy.attach(self)

    # ------------------------------------------------------------------
    def build_leaves(
        self, records: List[Tuple[bytes, int, bytes]]
    ) -> List[BTreeLeaf]:
        """Split a sorted record run into leaves of ~``leaf_bytes``."""
        if not records:
            return []
        total = sum(_record_size(k, v) for k, _, v in records)
        nleaves = max(1, round(total / self.leaf_bytes))
        per_leaf = total / nleaves
        leaves: List[BTreeLeaf] = []
        chunk: List[Tuple[bytes, int, bytes]] = []
        chunk_size = 0
        for record in records:
            chunk.append(record)
            chunk_size += _record_size(record[0], record[2])
            if chunk_size >= per_leaf and len(leaves) < nleaves - 1:
                leaves.append(BTreeLeaf(chunk))
                chunk = []
                chunk_size = 0
        if chunk:
            leaves.append(BTreeLeaf(chunk))
        return leaves

    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update; spills the buffer and absorbs when due."""
        if not isinstance(key, bytes) or not key:
            raise EngineError("keys must be non-empty bytes")
        seq = self._next_seq
        self._next_seq += 1
        previous = self._buffer.get(key)
        if previous is not None:
            self._buffer_size -= _record_size(key, previous[1])
        self._buffer[key] = (seq, value)
        self._buffer_size += _record_size(key, value)
        self.user_bytes_written += _record_size(key, value)
        self.clock.advance(0.5)
        if self._buffer_size >= self.buffer_bytes:
            self._spill_buffer()
        self.policy.maintain()

    def _spill_buffer(self) -> None:
        records = [
            (key, seq, value) for key, (seq, value) in sorted(self._buffer.items())
        ]
        side = _SidePartition(records)
        self.device.write(side.size_bytes, FLUSH_WRITE, sequential=True)
        self._buffer = {}
        self._buffer_size = 0
        if not self.leaves:
            # Bootstrap: the first spill becomes the main partition.
            self.leaves = self.build_leaves(records)
            return
        self.side_partitions.append(side)
        if len(self.side_partitions) >= self.max_side_partitions:
            self.policy.absorb()

    def get(self, key: bytes) -> Optional[bytes]:
        """Newest visible value: buffer, sides (newest first), then leaf."""
        self.clock.advance(0.3)
        hit = self._buffer.get(key)
        best: Optional[Tuple[int, bytes]] = hit
        for side in reversed(self.side_partitions):
            self.device.read(min(side.size_bytes, self.leaf_bytes), USER_READ)
            side_hit = side.get(key)
            if side_hit is not None and (best is None or side_hit[0] > best[0]):
                best = side_hit
        leaf = self._responsible_leaf(key)
        if leaf is not None:
            extra = self.policy.lookup_extra(leaf, key)
            if extra is not None and (best is None or extra[0] > best[0]):
                best = extra
            if leaf.min_key <= key <= leaf.max_key:
                self.device.read(leaf.size_bytes, USER_READ)
                leaf_hit = leaf.get(key)
                if leaf_hit is not None and (best is None or leaf_hit[0] > best[0]):
                    best = leaf_hit
        return None if best is None else best[1]

    def _responsible_leaf(self, key: bytes) -> Optional[BTreeLeaf]:
        if not self.leaves:
            return None
        maxes = [leaf.max_key for leaf in self.leaves]
        index = bisect_left(maxes, key)
        if index < len(self.leaves):
            return self.leaves[index]
        return self.leaves[-1]

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All live pairs in key order (verification backdoor, no cost)."""
        merged: Dict[bytes, Tuple[int, bytes]] = {}
        for leaf in self.leaves:
            for key, seq, value in leaf.records():
                if key not in merged or seq > merged[key][0]:
                    merged[key] = (seq, value)
            for piece in leaf.linked:
                for key, seq, value in piece.records():
                    if key not in merged or seq > merged[key][0]:
                        merged[key] = (seq, value)
        for side in self.side_partitions:
            for key, seq, value in side.records:
                if key not in merged or seq > merged[key][0]:
                    merged[key] = (seq, value)
        for key, (seq, value) in self._buffer.items():
            if key not in merged or seq > merged[key][0]:
                merged[key] = (seq, value)
        for key in sorted(merged):
            yield key, merged[key][1]

    def write_amplification(self) -> float:
        """Physical/logical write ratio over the device's lifetime."""
        if self.user_bytes_written == 0:
            return 0.0
        return self.device.stats.total_bytes_written / self.user_bytes_written

    def space_bytes(self) -> int:
        """Resident bytes: leaves + side partitions + frozen residue."""
        live = sum(leaf.size_bytes for leaf in self.leaves)
        live += sum(side.size_bytes for side in self.side_partitions)
        return live + self.policy.extra_space_bytes()
