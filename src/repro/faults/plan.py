"""Fault plans: deterministic schedules of injected failures.

A :class:`FaultPlan` is pure data — *which* I/Os fail and *how* — consumed
by :class:`~repro.faults.device.FaultyDevice`, the decorator that sits
between the engine and its :class:`~repro.ssd.device.SimulatedSSD`.  Four
fault families are supported, mirroring the failure modes an SSD-backed
key-value store must survive (PAPER.md §III's recovery invariants):

* **crash points** — abort at the Nth I/O (globally, or the Nth I/O of one
  category such as ``wal_write``), optionally leaving a *torn* prefix of
  the aborted write on the media;
* **read corruption** — the Nth read delivers flipped bits, surfaced to
  decode paths as a CRC XOR mask;
* **transient errors** — the Nth I/O fails ``k`` times before succeeding,
  absorbed by the device's bounded retry/backoff policy;
* the **retry policy** itself (attempt budget and exponential backoff).

Plans are deterministic by construction: the same plan against the same
workload produces the same failure at the same virtual time, which is what
lets the crash-point enumeration harness (:mod:`repro.faults.crashtest`)
replay a workload thousands of times with one knob moving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigError

#: Default XOR mask applied to a corrupted block's CRC — any non-zero mask
#: models at least one flipped bit in the delivered payload.
DEFAULT_CORRUPTION_MASK = 0x00010000


@dataclass(frozen=True)
class CrashSpec:
    """One armed crash point.

    Parameters
    ----------
    at_io:
        1-based index of the I/O to abort.  Counts every charged device
        request when ``category`` is None, otherwise only requests of that
        category.
    category:
        Optional device category filter (e.g. ``wal_write``,
        ``flush_write``, ``compaction_read``).
    torn_fraction:
        Fraction of the aborted *write* that still reaches the media
        (0.0 = clean abort, 1.0 = the write completed just before the
        crash).  Ignored for reads.
    """

    at_io: int
    category: Optional[str] = None
    torn_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.at_io <= 0:
            raise ConfigError("crash points are 1-based: at_io must be positive")
        if not 0.0 <= self.torn_fraction <= 1.0:
            raise ConfigError("torn_fraction must lie in [0, 1]")

    def torn_bytes(self, nbytes: int) -> int:
        """Bytes of an ``nbytes`` write surviving on media after the crash."""
        return int(nbytes * self.torn_fraction)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry/backoff absorbing transient I/O errors.

    Each failed attempt charges ``backoff_us * multiplier**attempt`` of
    virtual time (the driver's retry delay) before the request is retried;
    after ``max_attempts`` failures the error escapes as a
    :class:`~repro.errors.PersistentIOError`.
    """

    max_attempts: int = 3
    backoff_us: float = 100.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ConfigError("max_attempts must be positive")
        if self.backoff_us < 0:
            raise ConfigError("backoff_us must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be at least 1")

    def backoff_for_attempt(self, attempt: int) -> float:
        """Virtual-time delay before retry number ``attempt`` (0-based)."""
        return self.backoff_us * self.multiplier**attempt


class FaultPlan:
    """A deterministic schedule of injected faults.

    Build fluently::

        plan = (
            FaultPlan()
            .crash_at(120, category=WAL_WRITE, torn_fraction=0.5)
            .corrupt_read(7)
            .transient(30, failures=2)
        )

    Crash points are *one-shot*: once fired they disarm, so the recovery
    that follows (which performs WAL-replay I/O through the same device)
    does not immediately crash again.  Corruption and transient entries
    are likewise consumed when they trigger.
    """

    def __init__(self, retry: Optional[RetryPolicy] = None) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self._crashes: List[CrashSpec] = []
        #: read index -> XOR mask delivered for that read.
        self._corrupt_reads: Dict[int, int] = {}
        #: global I/O index -> remaining transient failures.
        self._transients: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def crash_at(
        self,
        at_io: int,
        category: Optional[str] = None,
        torn_fraction: float = 0.0,
    ) -> "FaultPlan":
        """Arm a crash point at the ``at_io``-th I/O (see :class:`CrashSpec`)."""
        self._crashes.append(CrashSpec(at_io, category, torn_fraction))
        return self

    def corrupt_read(
        self, read_index: int, mask: int = DEFAULT_CORRUPTION_MASK
    ) -> "FaultPlan":
        """Deliver flipped bits on the ``read_index``-th read (1-based)."""
        if read_index <= 0:
            raise ConfigError("read_index is 1-based and must be positive")
        if mask == 0:
            raise ConfigError("a corruption mask of 0 flips no bits")
        self._corrupt_reads[read_index] = mask
        return self

    def transient(self, at_io: int, failures: int = 1) -> "FaultPlan":
        """Fail the ``at_io``-th I/O ``failures`` times before it succeeds."""
        if at_io <= 0:
            raise ConfigError("at_io is 1-based and must be positive")
        if failures <= 0:
            raise ConfigError("failures must be positive")
        self._transients[at_io] = failures
        return self

    # ------------------------------------------------------------------
    # Consumption (called by FaultyDevice)
    # ------------------------------------------------------------------
    def take_crash(
        self, io_index: int, category: str, category_index: int
    ) -> Optional[CrashSpec]:
        """The armed crash matching this I/O, disarmed; None otherwise."""
        for position, spec in enumerate(self._crashes):
            if spec.category is None:
                if spec.at_io == io_index:
                    return self._crashes.pop(position)
            elif spec.category == category and spec.at_io == category_index:
                return self._crashes.pop(position)
        return None

    def take_corruption(self, read_index: int) -> int:
        """XOR mask for this read (0 if intact), consumed."""
        return self._corrupt_reads.pop(read_index, 0)

    def take_transient(self, io_index: int) -> int:
        """Remaining transient failure count for this I/O, consumed."""
        return self._transients.pop(io_index, 0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def armed_crashes(self) -> List[CrashSpec]:
        return list(self._crashes)

    @property
    def pending_corruptions(self) -> int:
        return len(self._corrupt_reads)

    @property
    def pending_transients(self) -> int:
        return len(self._transients)

    def is_exhausted(self) -> bool:
        """True once every scheduled fault has been injected."""
        return not (self._crashes or self._corrupt_reads or self._transients)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(crashes={len(self._crashes)}, "
            f"corrupt_reads={len(self._corrupt_reads)}, "
            f"transients={len(self._transients)})"
        )
