"""Deterministic fault injection for crash-consistency testing.

Two layers:

* :class:`FaultPlan` / :class:`FaultyDevice` (this package's core) — a
  pure-data fault schedule and the device decorator that executes it:
  crash points, torn WAL tails, read corruption and transient I/O errors,
  all counted under ``faults.*`` in the metrics registry and traced as
  ``fault_*`` events.
* :mod:`repro.faults.crashtest` — the crash-point enumeration harness
  behind ``repro crashtest``: run a workload once to count I/Os, then
  replay it crashing at every I/O boundary, recovering, and checking the
  durability/atomicity oracle each time.

``crashtest`` is deliberately *not* re-exported here: it imports the DB
layer, which itself imports this package, and keeping the heavy module
out of ``repro.faults`` breaks that cycle.
"""

from .device import FaultyDevice
from .plan import DEFAULT_CORRUPTION_MASK, CrashSpec, FaultPlan, RetryPolicy

__all__ = [
    "FaultPlan",
    "FaultyDevice",
    "CrashSpec",
    "RetryPolicy",
    "DEFAULT_CORRUPTION_MASK",
]
