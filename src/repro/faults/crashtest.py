"""Crash-point enumeration: replay a workload, crashing at every I/O.

The harness behind ``repro crashtest``.  One workload, three passes:

1. **Reference run** — execute the workload on a fault-free store whose
   device is wrapped in a :class:`~repro.faults.device.FaultyDevice` with
   an empty plan, purely to count the charged I/Os (and to confirm the
   workload exercises flushes and, under LDC, links and merges).
2. **Crash enumeration** — for every I/O index (or every ``stride``-th
   one), rebuild the store from scratch, arm a one-shot crash at that
   index, run the workload until the crash fires, recover, and check the
   durability/atomicity oracle.
3. **Oracle** — after recovery:

   * every *acknowledged* write (operation returned before the crash) is
     readable with its acknowledged value;
   * the operation in flight at the crash is atomic: its keys show
     either entirely the old state or entirely the new one (for a
     ``write_batch``, all-or-nothing across the whole batch);
   * :meth:`~repro.lsm.db.DB.check_invariants` passes — levels sorted
     and disjoint, LDC frozen refcounts equal to live slice fan-in,
     block cache holding only live files;
   * after retrying the interrupted operation and finishing the
     workload, the store's full logical contents equal the model.

Torn WAL tails are exercised by cycling the crash's ``torn_fraction``
through 0, ½ and 1 across crash points, so every third write-crash
leaves a partial record on media for recovery to detect and drop.

Sharded mode arms one shard at a time (each shard owns its device), and
recovery runs fleet-wide via :meth:`~repro.shard.db.ShardedDB.crash_and_recover`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .plan import FaultPlan
from ..errors import CorruptionError, ReproError, SimulatedCrash
from ..lsm.compaction.spec import resolve_factory
from ..lsm.config import LSMConfig
from ..lsm.db import DB, WriteBatch
from ..shard.db import ShardedDB
from ..ssd.flash import DeviceConfig, FlashSpec
from ..ssd.profile import ENTERPRISE_PCIE

#: A workload operation: ("put", key, value) | ("delete", key) |
#: ("get", key) | ("scan", start_key, count) |
#: ("batch", ((key, value-or-None), ...)).
Operation = Tuple

#: Zero-arg policy factory; every crashtest entry point also accepts a
#: registered policy name or a PolicySpec (coerced via ``resolve_factory``).
PolicyFactory = Callable[[], object]

#: torn_fraction cycle applied across successive crash points.
TORN_CYCLE = (0.0, 0.5, 1.0)

#: Deliberately tiny FTL geometry for flash-on crash testing: small pages
#: and blocks over a capacity a few times the crashtest store's footprint,
#: so the GC relocates pages within a few-thousand-op workload and crash
#: points land *inside* relocations (the FaultyDevice is the flash layer's
#: charger, so GC reads/writes count toward the crash index like any other
#: charged I/O).  Crash-before-install ordering must then leave the
#: mapping recoverable — ``DB.check_invariants`` runs the FTL's own
#: invariant sweep after every recovery.
CRASHTEST_FLASH_SPEC = FlashSpec(
    page_bytes=512,
    pages_per_block=16,
    logical_bytes=48 * 1024,
    over_provisioning=0.07,
    gc_policy="greedy",
)


def default_config() -> LSMConfig:
    """Small geometry so a few-thousand-op workload flushes and compacts."""
    return LSMConfig(
        memtable_bytes=4096,
        sstable_target_bytes=4096,
        block_bytes=512,
        fan_out=4,
        level1_capacity_bytes=8192,
        max_levels=6,
        bloom_bits_per_key=10,
        slicelink_threshold=4,
    )


def build_operations(
    num_ops: int,
    num_keys: int,
    seed: int = 0,
    value_bytes: int = 32,
) -> List[Operation]:
    """A deterministic mixed workload: puts, deletes, batches, gets, scans.

    Write-heavy (~70% puts) so the store flushes and compacts; batches
    and deletes appear often enough that every crash-point class (torn
    batch, tombstone replay) is exercised.
    """
    rng = random.Random(seed)
    ops: List[Operation] = []
    for index in range(num_ops):
        key = _key(rng.randrange(num_keys))
        roll = rng.random()
        if roll < 0.70:
            ops.append(("put", key, _value(index, value_bytes)))
        elif roll < 0.80:
            ops.append(("delete", key))
        elif roll < 0.85:
            entries = []
            for offset in range(rng.randrange(2, 6)):
                entry_key = _key(rng.randrange(num_keys))
                if rng.random() < 0.2:
                    entries.append((entry_key, None))
                else:
                    entries.append((entry_key, _value(index * 10 + offset, value_bytes)))
            ops.append(("batch", tuple(entries)))
        elif roll < 0.95:
            ops.append(("get", key))
        else:
            ops.append(("scan", key, rng.randrange(1, 8)))
    return ops


def _key(index: int) -> bytes:
    return str(index).zfill(12).encode()


def _value(stamp: int, value_bytes: int) -> bytes:
    body = f"v{stamp}-".encode()
    return (body * (value_bytes // len(body) + 1))[:value_bytes]


# ----------------------------------------------------------------------
# Model application
# ----------------------------------------------------------------------
def _op_effect(op: Operation) -> Dict[bytes, Optional[bytes]]:
    """Net key effects of a write op (empty for reads); None = deleted."""
    kind = op[0]
    if kind == "put":
        return {op[1]: op[2]}
    if kind == "delete":
        return {op[1]: None}
    if kind == "batch":
        effect: Dict[bytes, Optional[bytes]] = {}
        for key, value in op[1]:
            effect[key] = value
        return effect
    return {}


def _apply_to_model(model: Dict[bytes, bytes], op: Operation) -> None:
    for key, value in _op_effect(op).items():
        if value is None:
            model.pop(key, None)
        else:
            model[key] = value


def _execute(store: Union[DB, ShardedDB], op: Operation):
    kind = op[0]
    if kind == "put":
        store.put(op[1], op[2])
    elif kind == "delete":
        store.delete(op[1])
    elif kind == "batch":
        _execute_batch(store, op[1])
    elif kind == "get":
        return store.get(op[1])
    elif kind == "scan":
        return store.scan(op[1], op[2])
    else:  # pragma: no cover - workload generator bug
        raise ReproError(f"unknown operation kind {kind!r}")
    return None


def _execute_batch(store: Union[DB, ShardedDB], entries) -> None:
    if isinstance(store, ShardedDB):
        # Per-shard sub-batches: atomicity holds within each shard (the
        # documented sharded-batch semantics; cross-shard atomicity would
        # need a commit protocol the paper's engine does not have).
        buckets: Dict[int, WriteBatch] = {}
        for key, value in entries:
            batch = buckets.setdefault(store.shard_of(key), WriteBatch())
            if value is None:
                batch.delete(key)
            else:
                batch.put(key, value)
        for index in sorted(buckets):
            store.shards[index].write_batch(buckets[index])
        return
    batch = WriteBatch()
    for key, value in entries:
        if value is None:
            batch.delete(key)
        else:
            batch.put(key, value)
    store.write_batch(batch)


# ----------------------------------------------------------------------
# Store construction
# ----------------------------------------------------------------------
def _build_store(
    policy_factory: PolicyFactory,
    config: LSMConfig,
    seed: int,
    shards: int,
    plans: Optional[List[Optional[FaultPlan]]],
    flash: Optional[FlashSpec] = None,
) -> Union[DB, ShardedDB]:
    policy_factory = resolve_factory(policy_factory)
    profile = (
        DeviceConfig(flash=flash) if flash is not None else ENTERPRISE_PCIE
    )
    if shards <= 1:
        plan = plans[0] if plans else None
        return DB(
            config=config,
            policy=policy_factory(),
            profile=profile,
            seed=seed,
            fault_plan=plan,
        )
    return ShardedDB(
        num_shards=shards,
        policy_factory=policy_factory,
        config=config,
        profile=profile,
        seed=seed,
        fault_plans=plans,
    )


def _devices(store: Union[DB, ShardedDB]) -> List:
    if isinstance(store, ShardedDB):
        return [shard.device for shard in store.shards]
    return [store.device]


def _logical(store: Union[DB, ShardedDB]) -> Dict[bytes, bytes]:
    return dict(store.logical_items())


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class ReferenceRun:
    """Fault-free execution statistics used to enumerate crash points."""

    shard_ios: List[int]
    flushes: int
    links: int
    merges: int
    final_items: int

    @property
    def total_ios(self) -> int:
        return sum(self.shard_ios)


@dataclass
class CrashPointResult:
    """Outcome of one crash-recover-verify cycle."""

    io_index: int
    shard: int
    torn_fraction: float
    fired: bool
    crashed_at_op: Optional[int] = None
    crash_category: Optional[str] = None
    recovered_records: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


@dataclass
class CrashTestReport:
    """Aggregate verdict of a crash-point enumeration."""

    policy: str
    shards: int
    stride: int
    reference: ReferenceRun
    results: List[CrashPointResult]

    @property
    def points_run(self) -> int:
        return len(self.results)

    @property
    def points_fired(self) -> int:
        return sum(1 for result in self.results if result.fired)

    @property
    def failures(self) -> List[CrashPointResult]:
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"crashtest policy={self.policy} shards={self.shards} "
            f"stride={self.stride}",
            f"reference: {self.reference.total_ios} I/Os, "
            f"{self.reference.flushes} flushes, {self.reference.links} links, "
            f"{self.reference.merges} merges, "
            f"{self.reference.final_items} live keys",
            f"crash points: {self.points_run} run, {self.points_fired} fired, "
            f"{len(self.failures)} failed",
        ]
        for failure in self.failures[:10]:
            lines.append(
                f"  FAIL io={failure.io_index} shard={failure.shard} "
                f"({failure.crash_category}): {'; '.join(failure.errors[:3])}"
            )
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


@dataclass
class CorruptionReport:
    """Outcome of a seeded read-corruption sweep."""

    policy: str
    scheduled: int
    delivered: int
    detected: int
    missed: int

    @property
    def ok(self) -> bool:
        return self.delivered > 0 and self.detected == self.delivered and self.missed == 0

    def summary(self) -> str:
        return (
            f"corruption policy={self.policy}: {self.scheduled} scheduled, "
            f"{self.delivered} delivered, {self.detected} detected, "
            f"{self.missed} missed -> {'PASS' if self.ok else 'FAIL'}"
        )


# ----------------------------------------------------------------------
# Reference run
# ----------------------------------------------------------------------
def run_reference(
    operations: Sequence[Operation],
    policy_factory: PolicyFactory,
    config: Optional[LSMConfig] = None,
    seed: int = 0,
    shards: int = 1,
    flash: Optional[FlashSpec] = None,
) -> ReferenceRun:
    """Fault-free run counting charged I/Os per shard device."""
    config = config if config is not None else default_config()
    plans: List[Optional[FaultPlan]] = [FaultPlan() for _ in range(max(1, shards))]
    store = _build_store(policy_factory, config, seed, shards, plans, flash)
    for op in operations:
        _execute(store, op)
    engines = store.shards if isinstance(store, ShardedDB) else [store]
    return ReferenceRun(
        shard_ios=[device.io_count for device in _devices(store)],
        flushes=sum(engine.engine_stats.flush_count for engine in engines),
        links=sum(engine.engine_stats.link_count for engine in engines),
        merges=sum(engine.engine_stats.merge_count for engine in engines),
        final_items=len(_logical(store)),
    )


# ----------------------------------------------------------------------
# One crash point
# ----------------------------------------------------------------------
def run_crash_point(
    operations: Sequence[Operation],
    policy_factory: PolicyFactory,
    io_index: int,
    *,
    config: Optional[LSMConfig] = None,
    seed: int = 0,
    shards: int = 1,
    shard: int = 0,
    torn_fraction: float = 0.0,
    flash: Optional[FlashSpec] = None,
) -> CrashPointResult:
    """Crash at one I/O index, recover, verify the oracle, finish the run."""
    config = config if config is not None else default_config()
    effective_shards = max(1, shards)
    plans: List[Optional[FaultPlan]] = [None] * effective_shards
    plans[shard] = FaultPlan().crash_at(io_index, torn_fraction=torn_fraction)
    store = _build_store(policy_factory, config, seed, shards, plans, flash)
    result = CrashPointResult(
        io_index=io_index, shard=shard, torn_fraction=torn_fraction, fired=False
    )

    model: Dict[bytes, bytes] = {}
    pending: Optional[Operation] = None
    pending_index = 0
    for index, op in enumerate(operations):
        try:
            observed = _execute(store, op)
        except SimulatedCrash as crash:
            result.fired = True
            result.crashed_at_op = index
            result.crash_category = crash.category
            pending = op
            pending_index = index
            break
        if op[0] == "get" and observed != model.get(op[1]):
            result.errors.append(
                f"pre-crash get({op[1]!r}) = {observed!r}, model has "
                f"{model.get(op[1])!r}"
            )
            return result
        _apply_to_model(model, op)

    if not result.fired:
        # Crash index beyond the run's I/O count (stride overshoot or a
        # diverged schedule): still a useful full-run consistency check.
        _verify_final(store, model, result)
        return result

    try:
        result.recovered_records = store.crash_and_recover()
        store.check_invariants()
    except ReproError as exc:
        result.errors.append(f"recovery failed: {exc}")
        return result

    _verify_oracle(store, model, pending, result)
    if result.errors:
        return result

    # Resume: retry the interrupted operation (legal — it was never
    # acknowledged) and finish the workload, then require exact equality.
    for op in operations[pending_index:]:
        try:
            _execute(store, op)
        except ReproError as exc:
            result.errors.append(f"post-recovery {op[0]} failed: {exc}")
            return result
        _apply_to_model(model, op)
    _verify_final(store, model, result)
    return result


def _verify_oracle(
    store: Union[DB, ShardedDB],
    model: Dict[bytes, bytes],
    pending: Optional[Operation],
    result: CrashPointResult,
) -> None:
    """Durability + atomicity: acknowledged data intact, pending atomic.

    Batch atomicity is checked per atomicity domain: the whole batch for
    a single store, per owning shard for a :class:`ShardedDB` (a
    cross-shard batch commits shard-by-shard — the documented sharded
    semantics — so mixed old/new across *different* shards is legal).
    """
    observed = _logical(store)
    effect = _op_effect(pending) if pending is not None else {}
    sharded = isinstance(store, ShardedDB)
    states: Dict[int, List[str]] = {}
    for key in set(model) | set(observed) | set(effect):
        old = model.get(key)
        seen = observed.get(key)
        if key in effect:
            new = effect[key]
            if seen == old and seen == new:
                state = "both"
            elif seen == old:
                state = "old"
            elif seen == new:
                state = "new"
            else:
                result.errors.append(
                    f"key {key!r}: observed {seen!r}, neither acknowledged "
                    f"{old!r} nor in-flight {new!r}"
                )
                continue
            domain = store.shard_of(key) if sharded else 0
            states.setdefault(domain, []).append(state)
        elif seen != old:
            result.errors.append(
                f"acknowledged key {key!r}: observed {seen!r} != {old!r}"
            )
    for domain, domain_states in states.items():
        if "old" in domain_states and "new" in domain_states:
            result.errors.append(
                f"torn batch in atomicity domain {domain}: some keys show "
                f"the old state, some the new"
            )


def _verify_final(
    store: Union[DB, ShardedDB],
    model: Dict[bytes, bytes],
    result: CrashPointResult,
) -> None:
    try:
        store.check_invariants()
    except ReproError as exc:
        result.errors.append(f"invariant violation: {exc}")
        return
    observed = _logical(store)
    if observed != model:
        missing = [k for k in model if k not in observed]
        extra = [k for k in observed if k not in model]
        wrong = [
            k for k in model if k in observed and observed[k] != model[k]
        ]
        result.errors.append(
            f"final state mismatch: {len(missing)} missing, {len(extra)} "
            f"extra, {len(wrong)} wrong values"
        )


# ----------------------------------------------------------------------
# Full enumeration
# ----------------------------------------------------------------------
def run_crashtest(
    policy_factory: PolicyFactory,
    *,
    policy_name: str = "?",
    num_ops: int = 2000,
    num_keys: int = 200,
    value_bytes: int = 32,
    seed: int = 0,
    stride: int = 1,
    shards: int = 1,
    config: Optional[LSMConfig] = None,
    flash: Optional[FlashSpec] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> CrashTestReport:
    """Enumerate crash points over one workload and verify each recovery.

    ``stride`` samples every Nth I/O index (1 = exhaustive).  ``flash``
    mounts an FTL layer under every store (see
    :data:`CRASHTEST_FLASH_SPEC`), putting GC relocations inside the
    crash-point schedule.  ``progress`` (points_done, points_total) is
    called after each crash point — the CLI uses it for a live counter.
    """
    if stride <= 0:
        raise ReproError("stride must be positive")
    config = config if config is not None else default_config()
    operations = build_operations(num_ops, num_keys, seed, value_bytes)
    reference = run_reference(
        operations, policy_factory, config, seed, shards, flash
    )

    points: List[Tuple[int, int]] = []
    for shard_index, shard_ios in enumerate(reference.shard_ios):
        points.extend(
            (shard_index, io) for io in range(1, shard_ios + 1, stride)
        )

    results: List[CrashPointResult] = []
    for count, (shard_index, io_index) in enumerate(points):
        results.append(
            run_crash_point(
                operations,
                policy_factory,
                io_index,
                config=config,
                seed=seed,
                shards=shards,
                shard=shard_index,
                torn_fraction=TORN_CYCLE[count % len(TORN_CYCLE)],
                flash=flash,
            )
        )
        if progress is not None:
            progress(count + 1, len(points))
    return CrashTestReport(
        policy=policy_name,
        shards=max(1, shards),
        stride=stride,
        reference=reference,
        results=results,
    )


# ----------------------------------------------------------------------
# Corruption sweep
# ----------------------------------------------------------------------
def run_corruption_test(
    policy_factory: PolicyFactory,
    *,
    policy_name: str = "?",
    num_ops: int = 1500,
    num_keys: int = 150,
    value_bytes: int = 32,
    seed: int = 0,
    corruptions: int = 25,
    config: Optional[LSMConfig] = None,
) -> CorruptionReport:
    """Seed read corruptions across the workload; all must be detected.

    Corrupt-read indices are spread over the first 80% of the reference
    run's reads (an aborted operation shortens the schedule, so indices
    near the tail might never be reached — scheduling conservatively
    keeps ``delivered`` close to ``scheduled``).  The verdict requires
    every *delivered* corruption to raise
    :class:`~repro.errors.CorruptionError` and none to slip past a
    decode path (``faults.corruptions_missed`` must stay zero).
    """
    config = config if config is not None else default_config()
    operations = build_operations(num_ops, num_keys, seed, value_bytes)

    probe = _build_store(policy_factory, config, seed, 1, [FaultPlan()])
    for op in operations:
        _execute(probe, op)
    total_reads = probe.device.read_count
    if total_reads == 0:
        raise ReproError("workload performed no reads; cannot seed corruption")

    usable = max(1, int(total_reads * 0.8))
    count = min(corruptions, usable)
    plan = FaultPlan()
    step = max(1, usable // count)
    for index in range(1, usable + 1, step):
        plan.corrupt_read(index)
    scheduled = plan.pending_corruptions

    store = DB(
        config=config,
        policy=resolve_factory(policy_factory)(),
        seed=seed,
        fault_plan=plan,
    )
    detected = 0
    for op in operations:
        try:
            _execute(store, op)
        except CorruptionError:
            detected += 1
    delivered = int(store.registry.counter("faults.corrupted_blocks"))
    missed = int(store.registry.counter("faults.corruptions_missed"))
    return CorruptionReport(
        policy=policy_name,
        scheduled=scheduled,
        delivered=delivered,
        detected=detected,
        missed=missed,
    )
