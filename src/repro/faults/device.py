"""``FaultyDevice``: a fault-injecting decorator around ``SimulatedSSD``.

The engine never knows it is being tested: the decorator exposes the same
``read``/``write``/cost-query surface as the plain device, counts every
charged request (globally and per category), and consults its
:class:`~repro.faults.plan.FaultPlan` before forwarding:

* an armed **crash point** raises :class:`~repro.errors.SimulatedCrash`
  *before* the inner charge — the crashed I/O never reaches the media,
  except for an optional torn prefix recorded on the exception;
* a scheduled **transient error** fails the request ``k`` times, charging
  the retry policy's backoff to the virtual clock each time, then lets it
  through (or raises :class:`~repro.errors.PersistentIOError` once the
  attempt budget is spent);
* a scheduled **read corruption** performs the read normally but parks an
  XOR mask that the decode path picks up via
  :meth:`consume_read_corruption` and checks against the block CRC.

Everything injected is observable: ``faults.*`` counters land in the
shared metrics registry and each injection emits a trace event
(``fault_crash`` / ``fault_transient`` / ``fault_corruption``).
``faults.corruptions_missed`` deserves a note — it counts masks that were
*delivered but never consumed*, i.e. a decode path that read a corrupted
block without verifying it.  The corruption tests assert it stays zero.
"""

from __future__ import annotations

from typing import Dict

from .plan import FaultPlan
from ..errors import PersistentIOError, SimulatedCrash, TransientIOError
from ..obs.events import EV_FAULT_CORRUPTION, EV_FAULT_CRASH, EV_FAULT_TRANSIENT
from ..ssd.device import SimulatedSSD

# Registry keys for injected-fault accounting.
CTR_CRASHES = "faults.crashes_injected"
CTR_TORN_BYTES = "faults.torn_bytes"
CTR_TRANSIENTS = "faults.transient_errors"
CTR_RETRIES = "faults.retries"
CTR_BACKOFF_US = "faults.backoff_time_us"
CTR_PERSISTENT = "faults.persistent_errors"
CTR_CORRUPTED = "faults.corrupted_blocks"
CTR_CORRUPTIONS_MISSED = "faults.corruptions_missed"


class FaultyDevice:
    """Wrap a :class:`~repro.ssd.device.SimulatedSSD`, injecting faults.

    The wrapper is transparent when the plan is empty: every request
    forwards to the inner device with only integer counter bumps added,
    so fault-free runs through a ``FaultyDevice`` cost the same virtual
    time as runs on the bare device.
    """

    injects_faults = True

    def __init__(self, inner: SimulatedSSD, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        if inner.flash is not None:
            # GC relocation I/O must pass through the fault hooks too,
            # so crash points can land inside a GC relocation; the FTL
            # charges through the outermost device object.
            inner.flash.charger = self
        #: Total charged I/Os so far (reads + writes), 1-based at test time.
        self.io_count = 0
        #: Total charged reads so far.
        self.read_count = 0
        #: Per-category I/O counts.
        self.category_counts: Dict[str, int] = {}
        #: XOR mask parked by the most recent corrupted read; handed to the
        #: decode path exactly once via :meth:`consume_read_corruption`.
        self._pending_mask = 0

    # ------------------------------------------------------------------
    # Transparent delegation
    # ------------------------------------------------------------------
    @property
    def profile(self):
        return self.inner.profile

    @property
    def clock(self):
        return self.inner.clock

    @property
    def registry(self):
        return self.inner.registry

    @property
    def stats(self):
        return self.inner.stats

    @property
    def tracer(self):
        return self.inner.tracer

    @property
    def wear_bytes(self) -> int:
        return self.inner.wear_bytes

    @property
    def flash(self):
        """The inner device's flash layer (``None`` when disabled)."""
        return self.inner.flash

    def trim(self, owner) -> None:
        # Trim is metadata-only (no charged I/O), so no fault hooks run.
        self.inner.trim(owner)

    @property
    def channel(self):
        """The inner device's bandwidth arbiter (see ``repro.sched``)."""
        return self.inner.channel

    @channel.setter
    def channel(self, value) -> None:
        # The scheduler attaches its DeviceChannel through whichever
        # device object the DB holds; arbitration itself happens in the
        # inner device's charge path, below the fault-injection hooks.
        self.inner.channel = value

    def read_cost_us(self, nbytes: int, *, sequential: bool = False) -> float:
        return self.inner.read_cost_us(nbytes, sequential=sequential)

    def write_cost_us(self, nbytes: int, *, sequential: bool = False) -> float:
        return self.inner.write_cost_us(nbytes, sequential=sequential)

    # ------------------------------------------------------------------
    # Charged operations with injection
    # ------------------------------------------------------------------
    def read(self, nbytes: int, category: str, *, sequential: bool = False) -> float:
        self._before_io(category, nbytes, is_write=False)
        elapsed = self.inner.read(nbytes, category, sequential=sequential)
        self.read_count += 1
        mask = self.plan.take_corruption(self.read_count)
        if mask:
            self._deliver_corruption(mask, category, nbytes)
        return elapsed

    def write(
        self,
        nbytes: int,
        category: str,
        *,
        sequential: bool = False,
        owner=None,
        stream: bool = False,
    ) -> float:
        self._before_io(category, nbytes, is_write=True)
        return self.inner.write(
            nbytes, category, sequential=sequential, owner=owner, stream=stream
        )

    def read_runs(
        self,
        run_sizes: "list[int]",
        category: str,
        *,
        sequential: bool = False,
    ) -> float:
        """Batched reads stay per-run under injection: every run passes
        through :meth:`read`, so crash indices, corruption take-points and
        per-category counts see the exact same I/O sequence as unbatched
        callers.  (The engine's fault-aware paths read per run anyway so
        they can interleave CRC verification; this keeps the wrapper's
        surface complete.)"""
        total = 0.0
        for nbytes in run_sizes:
            total += self.read(nbytes, category, sequential=sequential)
        return total

    # ------------------------------------------------------------------
    # Corruption hand-off to decode paths
    # ------------------------------------------------------------------
    def consume_read_corruption(self) -> int:
        """Return the parked XOR mask (0 if the last read was intact)."""
        mask = self._pending_mask
        self._pending_mask = 0
        return mask

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _before_io(self, category: str, nbytes: int, *, is_write: bool) -> None:
        # An unconsumed mask from an earlier read means some decode path
        # used corrupted bytes without verifying them — record the escape.
        if self._pending_mask:
            self._pending_mask = 0
            self.registry.add(CTR_CORRUPTIONS_MISSED)

        self.io_count += 1
        cat_index = self.category_counts.get(category, 0) + 1
        self.category_counts[category] = cat_index

        crash = self.plan.take_crash(self.io_count, category, cat_index)
        if crash is not None:
            torn = crash.torn_bytes(nbytes) if is_write else 0
            self.registry.add(CTR_CRASHES)
            if torn:
                self.registry.add(CTR_TORN_BYTES, torn)
            if self.tracer.active:
                self.tracer.emit(
                    EV_FAULT_CRASH,
                    io_index=self.io_count,
                    category=category,
                    nbytes=nbytes,
                    torn_bytes=torn,
                )
            raise SimulatedCrash(self.io_count, category, torn_bytes=torn)

        failures = self.plan.take_transient(self.io_count)
        if failures:
            self._absorb_transients(failures, category, nbytes)

    def _absorb_transients(self, failures: int, category: str, nbytes: int) -> None:
        """Retry through ``failures`` scheduled errors or give up."""
        retry = self.plan.retry
        for attempt in range(failures):
            self.registry.add(CTR_TRANSIENTS)
            if self.tracer.active:
                self.tracer.emit(
                    EV_FAULT_TRANSIENT,
                    io_index=self.io_count,
                    category=category,
                    nbytes=nbytes,
                    attempt=attempt + 1,
                )
            if attempt + 1 >= retry.max_attempts:
                self.registry.add(CTR_PERSISTENT)
                raise PersistentIOError(
                    f"I/O #{self.io_count} ({category}) still failing after "
                    f"{retry.max_attempts} attempts"
                ) from TransientIOError(
                    f"transient failure {attempt + 1} on I/O #{self.io_count}"
                )
            backoff = retry.backoff_for_attempt(attempt)
            self.clock.advance(backoff)
            self.registry.add(CTR_RETRIES)
            self.registry.add(CTR_BACKOFF_US, backoff)

    def _deliver_corruption(self, mask: int, category: str, nbytes: int) -> None:
        self._pending_mask = mask
        self.registry.add(CTR_CORRUPTED)
        if self.tracer.active:
            self.tracer.emit(
                EV_FAULT_CORRUPTION,
                read_index=self.read_count,
                category=category,
                nbytes=nbytes,
                mask=mask,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultyDevice(io_count={self.io_count}, plan={self.plan!r})"
