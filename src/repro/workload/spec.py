"""Workload specifications: the paper's Table III as data.

A :class:`WorkloadSpec` captures everything the generator needs: the
operation mix (insert / point-lookup / scan ratios), the key distribution,
key-space size, key/value sizes, and the request count.  The module-level
constructors (``WO``, ``WH``, ``RWB``, ``RH``, ``RO``, ``SCN_WH``,
``SCN_RWB``, ``SCN_RH``) mirror Table III exactly: 16-byte keys, 1-KB
values, point lookups or 100-record range scans mixed with random
insertions at 100/70/50/30/0 % writes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

from ..errors import WorkloadError

#: Paper defaults (§IV-A): "Each key-value pair is set to have a 16-B key
#: and a 1-KB value", scans "cover 100 key-value pairs on average".
PAPER_KEY_BYTES = 16
PAPER_VALUE_BYTES = 1024
PAPER_SCAN_LENGTH = 100

DIST_UNIFORM = "uniform"
DIST_ZIPF = "zipf"
DIST_LATEST = "latest"
_KNOWN_DISTRIBUTIONS = (DIST_UNIFORM, DIST_ZIPF, DIST_LATEST)


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully specified benchmark workload.

    Parameters
    ----------
    name:
        Label used in reports (e.g. ``"RWB"``).
    num_operations:
        Total request count.
    write_ratio:
        Fraction of operations that are random insertions; the remainder
        are queries of ``query_type``.
    query_type:
        ``"get"`` for point lookups or ``"scan"`` for range queries.
    key_space:
        Number of distinct keys addressed.
    key_bytes / value_bytes:
        Sizes of generated keys and values (keys are zero-padded decimal
        strings so lexicographic order matches numeric order).
    distribution:
        ``"uniform"``, ``"zipf"`` or ``"latest"``.
    zipf_constant:
        Skew parameter for the Zipf distribution (the paper sweeps 1–5 in
        Fig. 11; larger = more concentrated).
    scan_length:
        Average records per range query (paper: 100).
    delete_ratio:
        Fraction of *write* operations that are deletes (0 in the paper's
        workloads; exposed for the extension tests).
    preload_keys:
        Keys inserted before measurement starts so read-mostly workloads
        do not miss constantly (the paper loads the store first).
    seed:
        Master RNG seed; every derived stream is deterministic.
    """

    name: str
    num_operations: int
    write_ratio: float
    query_type: str = "get"
    key_space: int = 50_000
    key_bytes: int = PAPER_KEY_BYTES
    value_bytes: int = PAPER_VALUE_BYTES
    distribution: str = DIST_UNIFORM
    zipf_constant: float = 1.0
    scan_length: int = PAPER_SCAN_LENGTH
    delete_ratio: float = 0.0
    preload_keys: int = 0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_operations <= 0:
            raise WorkloadError("num_operations must be positive")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise WorkloadError("write_ratio must lie in [0, 1]")
        if self.query_type not in ("get", "scan"):
            raise WorkloadError(f"unknown query_type {self.query_type!r}")
        if self.key_space <= 0:
            raise WorkloadError("key_space must be positive")
        if self.key_bytes < 8:
            raise WorkloadError("key_bytes must be at least 8")
        if self.value_bytes < 0:
            raise WorkloadError("value_bytes must be non-negative")
        if self.distribution not in _KNOWN_DISTRIBUTIONS:
            raise WorkloadError(
                f"unknown distribution {self.distribution!r}; "
                f"known: {', '.join(_KNOWN_DISTRIBUTIONS)}"
            )
        if self.distribution == DIST_ZIPF and self.zipf_constant <= 0:
            raise WorkloadError("zipf_constant must be positive")
        if self.scan_length <= 0:
            raise WorkloadError("scan_length must be positive")
        if not 0.0 <= self.delete_ratio <= 1.0:
            raise WorkloadError("delete_ratio must lie in [0, 1]")
        if self.preload_keys < 0:
            raise WorkloadError("preload_keys must be non-negative")

    @property
    def read_ratio(self) -> float:
        return 1.0 - self.write_ratio

    def scaled(self, factor: float) -> "WorkloadSpec":
        """Scale operation count and key space together (Fig. 14 sweeps)."""
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        return replace(
            self,
            num_operations=max(1, int(self.num_operations * factor)),
            key_space=max(1, int(self.key_space * factor)),
            preload_keys=max(0, int(self.preload_keys * factor)),
        )

    def with_overrides(self, **overrides: Any) -> "WorkloadSpec":
        return replace(self, **overrides)


def _mix(
    name: str,
    write_ratio: float,
    query_type: str = "get",
    **overrides: Any,
) -> WorkloadSpec:
    defaults: Dict[str, Any] = dict(
        num_operations=100_000,
        key_space=50_000,
    )
    if write_ratio < 1.0:
        # Read-bearing workloads start against a loaded store.
        defaults["preload_keys"] = defaults["key_space"]
    defaults.update(overrides)
    return WorkloadSpec(
        name=name, write_ratio=write_ratio, query_type=query_type, **defaults
    )


def wo(**overrides: Any) -> WorkloadSpec:
    """Write Only — 100% random insertions (Table III: WO)."""
    return _mix("WO", 1.0, **overrides)


def wh(**overrides: Any) -> WorkloadSpec:
    """Write Heavy — 70% writes, 30% point lookups (Table III: WH)."""
    return _mix("WH", 0.7, **overrides)


def rwb(**overrides: Any) -> WorkloadSpec:
    """Read/Write Balanced — 50/50 (Table III: RWB)."""
    return _mix("RWB", 0.5, **overrides)


def rh(**overrides: Any) -> WorkloadSpec:
    """Read Heavy — 30% writes, 70% point lookups (Table III: RH)."""
    return _mix("RH", 0.3, **overrides)


def ro(**overrides: Any) -> WorkloadSpec:
    """Read Only — 100% point lookups (Table III: RO)."""
    return _mix("RO", 0.0, **overrides)


def scn_wh(**overrides: Any) -> WorkloadSpec:
    """Scan Write Heavy — 70% writes, 30% range queries (Table III)."""
    return _mix("SCN-WH", 0.7, query_type="scan", **overrides)


def scn_rwb(**overrides: Any) -> WorkloadSpec:
    """Scan Read/Write Balanced — 50/50 (Table III)."""
    return _mix("SCN-RWB", 0.5, query_type="scan", **overrides)


def scn_rh(**overrides: Any) -> WorkloadSpec:
    """Scan Read Heavy — 30% writes, 70% range queries (Table III)."""
    return _mix("SCN-RH", 0.3, query_type="scan", **overrides)


#: All eight Table III workload constructors by name.
TABLE_III = {
    "WO": wo,
    "WH": wh,
    "RWB": rwb,
    "RH": rh,
    "RO": ro,
    "SCN-WH": scn_wh,
    "SCN-RWB": scn_rwb,
    "SCN-RH": scn_rh,
}
