"""Workload traces: record, persist, and replay operation streams.

Benchmark reproducibility sometimes needs more than a seed — e.g. sharing
the *exact* request sequence between engines written in different
languages, or replaying a captured production trace.  This module gives
the generator's operation stream a stable on-disk form:

* one operation per line;
* keys and values hex-encoded (traces are valid UTF-8 regardless of key
  bytes);
* a `#`-prefixed header carrying provenance.

Format::

    # repro-trace v1 name=RWB ops=4
    put 6b6579 76616c7565
    del 6b6579
    get 6b6579
    scan 6b6579 100
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .spec import WorkloadSpec
from .ycsb import OP_DELETE, OP_GET, OP_PUT, OP_SCAN, Operation, WorkloadGenerator
from ..errors import WorkloadError

_HEADER_PREFIX = "# repro-trace v1"


def record_trace(spec: WorkloadSpec, include_preload: bool = False) -> List[Operation]:
    """Materialise the operation stream a spec would generate."""
    generator = WorkloadGenerator(spec)
    operations: List[Operation] = []
    if include_preload:
        operations.extend(generator.preload_operations())
    operations.extend(generator.operations())
    return operations


def write_trace(
    operations: Iterable[Operation],
    path: Union[str, Path],
    name: str = "trace",
) -> int:
    """Persist operations to ``path``; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="ascii") as handle:
        lines = []
        for operation in operations:
            lines.append(_encode(operation))
            count += 1
        handle.write(f"{_HEADER_PREFIX} name={name} ops={count}\n")
        handle.write("\n".join(lines))
        if lines:
            handle.write("\n")
    return count


def read_trace(path: Union[str, Path]) -> Iterator[Operation]:
    """Stream operations back from a trace file."""
    path = Path(path)
    with path.open("r", encoding="ascii") as handle:
        first = handle.readline()
        if not first.startswith(_HEADER_PREFIX):
            raise WorkloadError(f"{path} is not a repro trace (bad header)")
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield _decode(line, path, line_number)


def _encode(operation: Operation) -> str:
    key_hex = operation.key.hex()
    if operation.kind == OP_PUT:
        value_hex = (operation.value or b"").hex()
        return f"put {key_hex} {value_hex}"
    if operation.kind == OP_DELETE:
        return f"del {key_hex}"
    if operation.kind == OP_GET:
        return f"get {key_hex}"
    if operation.kind == OP_SCAN:
        return f"scan {key_hex} {operation.scan_length}"
    raise WorkloadError(f"cannot encode operation kind {operation.kind!r}")


def _decode(line: str, path: Path, line_number: int) -> Operation:
    parts = line.split()
    try:
        kind = parts[0]
        key = bytes.fromhex(parts[1])
        if kind == "put":
            return Operation(OP_PUT, key, bytes.fromhex(parts[2]))
        if kind == "del":
            return Operation(OP_DELETE, key)
        if kind == "get":
            return Operation(OP_GET, key)
        if kind == "scan":
            return Operation(OP_SCAN, key, scan_length=int(parts[2]))
    except (IndexError, ValueError) as exc:
        raise WorkloadError(f"{path}:{line_number}: malformed trace line") from exc
    raise WorkloadError(f"{path}:{line_number}: unknown operation {kind!r}")


def replay(db, operations: Iterable[Operation]) -> dict:
    """Apply a trace to a database, returning the expected final contents.

    Useful for differential testing: the returned dict is what a correct
    store must contain after the replay.
    """
    model: dict = {}
    for operation in operations:
        if operation.kind == OP_PUT:
            db.put(operation.key, operation.value or b"")
            model[operation.key] = operation.value or b""
        elif operation.kind == OP_DELETE:
            db.delete(operation.key)
            model.pop(operation.key, None)
        elif operation.kind == OP_GET:
            db.get(operation.key)
        elif operation.kind == OP_SCAN:
            db.scan(operation.key, operation.scan_length)
        else:  # pragma: no cover - record_trace never emits others
            raise WorkloadError(f"cannot replay operation kind {operation.kind!r}")
    return model
