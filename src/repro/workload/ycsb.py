"""YCSB-like operation stream generator.

Turns a :class:`~repro.workload.spec.WorkloadSpec` into a deterministic
stream of operations (:class:`Operation`).  The paper drives LevelDB with
the YCSB benchmark suite (§IV-A); this module reproduces the pieces the
paper uses — random insertions mixed with point lookups or 100-record
scans under uniform/Zipf key choice — and additionally offers the six
classic YCSB core workloads (A–F) for the example applications.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Optional

import numpy as np

from .keydist import LatestKeys, make_distribution
from .spec import WorkloadSpec
from ..errors import WorkloadError

OP_PUT = "put"
OP_GET = "get"
OP_SCAN = "scan"
OP_DELETE = "delete"
OP_RMW = "rmw"  # read-modify-write (YCSB F)


class Operation(NamedTuple):
    """One generated request."""

    kind: str
    key: bytes
    value: Optional[bytes] = None
    scan_length: int = 0


#: Hard cap on the per-generator encoded-key memo so enormous key spaces
#: cannot balloon memory (1M keys x ~20 bytes is a few tens of MB at most).
_KEY_CACHE_MAX = 1 << 20


class WorkloadGenerator:
    """Deterministic operation stream for one workload spec.

    Key encoding: zero-padded decimal strings of ``key_bytes`` length, so
    lexicographic byte order equals numeric order and scan ranges behave
    like YCSB's ordered keys.

    Example
    -------
    >>> from repro.workload import rwb, WorkloadGenerator
    >>> gen = WorkloadGenerator(rwb(num_operations=4, key_space=10))
    >>> ops = list(gen.operations())
    >>> len(ops)
    4
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        root = np.random.SeedSequence(spec.seed)
        op_seed, key_seed, value_seed, load_seed = root.spawn(4)
        self._op_rng = np.random.default_rng(op_seed)
        self._key_rng = np.random.default_rng(key_seed)
        self._value_rng = np.random.default_rng(value_seed)
        self._load_rng = np.random.default_rng(load_seed)
        self._dist = make_distribution(
            spec.distribution, spec.key_space, spec.zipf_constant, self._key_rng
        )
        self._value_counter = 0
        # Skewed workloads re-encode the same hot keys constantly; memoise
        # the encodings (values are immutable bytes, sharing is safe).
        self._key_cache: dict = {}
        self._value_pad = b"x" * spec.value_bytes

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_key(self, index: int) -> bytes:
        """Map a key index to its fixed-width byte encoding."""
        cached = self._key_cache.get(index)
        if cached is not None:
            return cached
        if not 0 <= index < self.spec.key_space:
            raise WorkloadError(
                f"key index {index} outside [0, {self.spec.key_space})"
            )
        key = str(index).zfill(self.spec.key_bytes).encode("ascii")
        if len(self._key_cache) < _KEY_CACHE_MAX:
            self._key_cache[index] = key
        return key

    def decode_key(self, key: bytes) -> int:
        """Inverse of :meth:`encode_key`."""
        return int(key)

    def make_value(self) -> bytes:
        """A fresh deterministic value of the configured size."""
        self._value_counter += 1
        stamp = b"v%08d" % self._value_counter
        value_bytes = self.spec.value_bytes
        if len(stamp) >= value_bytes:
            return stamp[:value_bytes]
        return stamp + self._value_pad[: value_bytes - len(stamp)]

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def preload_operations(self) -> Iterator[Operation]:
        """The load phase: insert ``preload_keys`` distinct keys.

        Insertion order is shuffled (seeded) so the loaded tree has
        realistic overlap structure rather than a single sorted run.
        """
        count = min(self.spec.preload_keys, self.spec.key_space)
        if count == 0:
            return
        order = self._load_rng.permutation(self.spec.key_space)[:count]
        encode_key = self.encode_key
        make_value = self.make_value
        for index in order.tolist():
            yield Operation(OP_PUT, encode_key(index), make_value())

    def operations(self) -> Iterator[Operation]:
        """The measured phase: ``num_operations`` requests per the spec.

        Key-index draws (and, when the mix permits, operation-kind draws)
        are generated in vectorized blocks; the emitted stream is
        bit-identical to per-operation sampling because numpy's bulk
        draws consume the underlying bit stream exactly like the
        equivalent sequence of scalar draws (pinned by the workload
        equivalence tests).  Distributions without a ``sample_block``
        (the feedback-coupled "latest") fall back to the scalar loop.
        """
        sample_block = getattr(self._dist, "sample_block", None)
        if sample_block is None:
            return self._operations_scalar()
        return self._operations_blocked(sample_block)

    def _operations_scalar(self) -> Iterator[Operation]:
        """Reference per-operation generation (and the "latest" path)."""
        spec = self.spec
        sample = self._dist.sample
        encode_key = self.encode_key
        make_value = self.make_value
        random = self._op_rng.random
        write_ratio = spec.write_ratio
        delete_ratio = spec.delete_ratio
        scans = spec.query_type == "scan"
        scan_length = spec.scan_length
        latest = self._dist if isinstance(self._dist, LatestKeys) else None
        for _ in range(spec.num_operations):
            key = encode_key(sample())
            if random() < write_ratio:
                if delete_ratio and random() < delete_ratio:
                    yield Operation(OP_DELETE, key)
                else:
                    yield Operation(OP_PUT, key, make_value())
            elif scans:
                yield Operation(OP_SCAN, key, scan_length=scan_length)
            else:
                yield Operation(OP_GET, key)
            if latest is not None:
                latest.population = min(spec.key_space, latest.population + 1)

    #: Key/operation draws generated per vectorized block.
    _GEN_BLOCK = 4096

    def _operations_blocked(self, sample_block) -> Iterator[Operation]:
        """Blocked generation for feedback-free distributions.

        Key indices always batch (the key stream is an independent RNG).
        Operation-kind draws batch only when ``delete_ratio == 0``: a
        non-zero delete ratio consumes a *conditional* second draw per
        write, so the number of op-stream draws depends on earlier
        outcomes and the scalar loop is kept for that stream.
        """
        spec = self.spec
        encode_key = self.encode_key
        make_value = self.make_value
        op_rng = self._op_rng
        random = op_rng.random
        write_ratio = spec.write_ratio
        delete_ratio = spec.delete_ratio
        scans = spec.query_type == "scan"
        scan_length = spec.scan_length
        block = self._GEN_BLOCK
        remaining = spec.num_operations
        while remaining > 0:
            n = block if remaining > block else remaining
            remaining -= n
            indices = sample_block(n)
            if not delete_ratio:
                draws = random(n).tolist()
                for index, draw in zip(indices, draws):
                    key = encode_key(index)
                    if draw < write_ratio:
                        yield Operation(OP_PUT, key, make_value())
                    elif scans:
                        yield Operation(OP_SCAN, key, scan_length=scan_length)
                    else:
                        yield Operation(OP_GET, key)
            else:
                for index in indices:
                    key = encode_key(index)
                    if random() < write_ratio:
                        if random() < delete_ratio:
                            yield Operation(OP_DELETE, key)
                        else:
                            yield Operation(OP_PUT, key, make_value())
                    elif scans:
                        yield Operation(OP_SCAN, key, scan_length=scan_length)
                    else:
                        yield Operation(OP_GET, key)

    def _sample_index(self) -> int:
        """One draw from the key distribution (kept as a test seam)."""
        return self._dist.sample()


# ----------------------------------------------------------------------
# Classic YCSB core workloads (A-F) — extensions beyond the paper's mixes,
# used by the example applications.
# ----------------------------------------------------------------------
def ycsb_a(**overrides: object) -> WorkloadSpec:
    """YCSB-A: 50% reads / 50% updates, Zipfian."""
    defaults = dict(
        num_operations=100_000,
        key_space=50_000,
        preload_keys=50_000,
        distribution="zipf",
        zipf_constant=0.99,
    )
    defaults.update(overrides)
    return WorkloadSpec(name="YCSB-A", write_ratio=0.5, **defaults)  # type: ignore[arg-type]


def ycsb_b(**overrides: object) -> WorkloadSpec:
    """YCSB-B: 95% reads / 5% updates, Zipfian."""
    defaults = dict(
        num_operations=100_000,
        key_space=50_000,
        preload_keys=50_000,
        distribution="zipf",
        zipf_constant=0.99,
    )
    defaults.update(overrides)
    return WorkloadSpec(name="YCSB-B", write_ratio=0.05, **defaults)  # type: ignore[arg-type]


def ycsb_c(**overrides: object) -> WorkloadSpec:
    """YCSB-C: 100% reads, Zipfian."""
    defaults = dict(
        num_operations=100_000,
        key_space=50_000,
        preload_keys=50_000,
        distribution="zipf",
        zipf_constant=0.99,
    )
    defaults.update(overrides)
    return WorkloadSpec(name="YCSB-C", write_ratio=0.0, **defaults)  # type: ignore[arg-type]


def ycsb_d(**overrides: object) -> WorkloadSpec:
    """YCSB-D: 95% reads of recently inserted keys / 5% inserts."""
    defaults = dict(
        num_operations=100_000,
        key_space=50_000,
        preload_keys=25_000,
        distribution="latest",
        zipf_constant=0.99,
    )
    defaults.update(overrides)
    return WorkloadSpec(name="YCSB-D", write_ratio=0.05, **defaults)  # type: ignore[arg-type]


def ycsb_e(**overrides: object) -> WorkloadSpec:
    """YCSB-E: 95% short scans / 5% inserts, Zipfian."""
    defaults = dict(
        num_operations=50_000,
        key_space=50_000,
        preload_keys=50_000,
        distribution="zipf",
        zipf_constant=0.99,
        scan_length=50,
    )
    defaults.update(overrides)
    return WorkloadSpec(
        name="YCSB-E", write_ratio=0.05, query_type="scan", **defaults  # type: ignore[arg-type]
    )


def ycsb_f(**overrides: object) -> WorkloadSpec:
    """YCSB-F: 50% reads / 50% read-modify-writes, Zipfian.

    The runner executes a read-modify-write as a get followed by a put of
    the same key; the spec models it as a 50% write ratio.
    """
    defaults = dict(
        num_operations=100_000,
        key_space=50_000,
        preload_keys=50_000,
        distribution="zipf",
        zipf_constant=0.99,
    )
    defaults.update(overrides)
    return WorkloadSpec(name="YCSB-F", write_ratio=0.5, **defaults)  # type: ignore[arg-type]
