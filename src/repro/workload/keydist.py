"""Key distributions: uniform, Zipf, and latest.

The paper's default is the uniform distribution; Fig. 11 compares it with
Zipf distributions whose constant ranges from 1 to 5 ("the larger the Zipf
constant is, the accesses are more concentrated on some popular key-value
pairs").  We implement:

* **uniform** — every key equally likely;
* **zipf(s)** — rank ``r`` (1-based) drawn with probability ∝ ``1 / r^s``,
  using inverse-CDF sampling over a precomputed table (exact, not the
  rejection approximation), with ranks scattered over the key space by a
  fixed pseudo-random permutation so popular keys are not adjacent;
* **latest** — YCSB's "latest" pattern: recency-skewed toward the most
  recently inserted keys (used by the extension workloads, not the paper).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..errors import WorkloadError


class KeyDistribution(Protocol):
    """Samples key indices in ``[0, key_space)``."""

    def sample(self) -> int:  # pragma: no cover - protocol signature
        """Return the next key index."""


class UniformKeys:
    """Uniformly random key indices."""

    def __init__(self, key_space: int, rng: np.random.Generator) -> None:
        if key_space <= 0:
            raise WorkloadError("key_space must be positive")
        self._key_space = key_space
        self._rng = rng

    def sample(self) -> int:
        return int(self._rng.integers(0, self._key_space))

    def sample_block(self, count: int) -> list:
        """Draw ``count`` indices in one vectorized call.

        Bit-identical to ``count`` successive :meth:`sample` calls: numpy's
        bounded-integer generation consumes the bit stream identically for
        ``integers(0, k, size=n)`` and ``n`` scalar ``integers(0, k)``
        draws (covered by the workload equivalence tests).
        """
        return self._rng.integers(0, self._key_space, size=count).tolist()


class ZipfKeys:
    """Exact Zipf-distributed key indices via inverse-CDF sampling.

    Probability of rank ``r`` (1-based) is ``r^-s / H(n, s)``.  Ranks are
    mapped onto key indices through a seeded permutation, so the hot set is
    spread across the key space — matching YCSB's *scrambled* Zipfian and
    avoiding an artificial hot key *range* that would make compaction
    locality trivially favourable.
    """

    def __init__(
        self,
        key_space: int,
        constant: float,
        rng: np.random.Generator,
        scramble: bool = True,
    ) -> None:
        if key_space <= 0:
            raise WorkloadError("key_space must be positive")
        if constant <= 0:
            raise WorkloadError("zipf constant must be positive")
        self._rng = rng
        ranks = np.arange(1, key_space + 1, dtype=np.float64)
        weights = ranks ** (-float(constant))
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if scramble:
            # Permutation seeded independently of the sampling stream so
            # the hot set is stable across runs with the same key space.
            perm_rng = np.random.default_rng(key_space * 2654435761 % 2**32)
            self._perm = perm_rng.permutation(key_space)
        else:
            self._perm = np.arange(key_space)
        # Plain-int copy for sample(): indexing a Python list returns an
        # int directly, skipping a numpy scalar round-trip per draw.
        self._perm_list = self._perm.tolist()

    def sample(self) -> int:
        u = self._rng.random()
        rank = int(np.searchsorted(self._cdf, u, side="left"))
        return self._perm_list[rank]

    def sample_block(self, count: int) -> list:
        """Draw ``count`` indices in one vectorized call.

        Bit-identical to ``count`` successive :meth:`sample` calls:
        ``rng.random(count)`` consumes the bit stream exactly like
        ``count`` scalar ``random()`` draws, and the batched
        ``searchsorted`` matches the per-draw binary search.
        """
        u = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="left")
        perm = self._perm_list
        return [perm[rank] for rank in ranks]

    def probability_of_rank(self, rank: int) -> float:
        """P(rank) for tests (1-based rank)."""
        if rank == 1:
            return float(self._cdf[0])
        return float(self._cdf[rank - 1] - self._cdf[rank - 2])


class LatestKeys:
    """Recency-skewed indices over a growing key population.

    Follows YCSB's "latest" pattern: sample a Zipf rank and subtract it
    from the newest key's index, so recently inserted keys are hottest.
    The caller advances :attr:`population` as inserts happen.
    """

    def __init__(
        self, initial_population: int, constant: float, rng: np.random.Generator
    ) -> None:
        if initial_population <= 0:
            raise WorkloadError("initial_population must be positive")
        if constant <= 0:
            raise WorkloadError("latest constant must be positive")
        self.population = initial_population
        self._constant = float(constant)
        self._rng = rng

    def sample(self) -> int:
        # Rejection-free: draw uniform over CDF of a truncated Zipf by
        # re-sampling ranks beyond the population (rare for skewed draws).
        while True:
            rank = int(self._rng.zipf(1.0 + self._constant))
            if rank <= self.population:
                return self.population - rank


def make_distribution(
    distribution: str,
    key_space: int,
    zipf_constant: float,
    rng: np.random.Generator,
) -> KeyDistribution:
    """Factory mapping a spec's distribution name to a sampler."""
    if distribution == "uniform":
        return UniformKeys(key_space, rng)
    if distribution == "zipf":
        return ZipfKeys(key_space, zipf_constant, rng)
    if distribution == "latest":
        return LatestKeys(key_space, max(zipf_constant, 0.5), rng)
    raise WorkloadError(f"unknown distribution {distribution!r}")
