"""Command-line interface: run paper experiments from the shell.

Usage::

    python -m repro list                       # show available experiments
    python -m repro fig08 --ops 60000          # reproduce one figure
    python -m repro fig12be --ops 30000 --keys 10000
    python -m repro describe                   # quick engine demo + describe()
    python -m repro trace WO --policy ldc --trace-out run.jsonl
    python -m repro bench --quick              # wall-clock perf suite
    python -m repro bench --compare BENCH_a.json BENCH_b.json
    python -m repro run RWB --shards 4 --workers 4   # sharded execution
    python -m repro run RWB --bg-threads 2 --slowdown-l0 8 --stop-l0 12
    python -m repro fig01s --ops 12000              # scheduled interference
    python -m repro crashtest --policy ldc --every 25   # crash-consistency sweep
    python -m repro crashtest --policy ldc --flash      # crash inside GC too
    python -m repro run RWB --flash                 # FTL/GC device layer on
    python -m repro fig_device_wa --ops 20000       # host/device/total WA
    python -m repro explore --policies udc,ldc,lazy_leveling --mixes RWB
    python -m repro explore --flash                 # device-WA winner columns
    python -m repro explore --report-out REPORT_design_space.md

The heavy lifting lives in :mod:`repro.harness.experiments`; this module
maps experiment names to those entry points and prints their results as
tables.  The ``trace`` subcommand runs one Table III workload with the
observability layer's event tracer attached and writes the full engine
timeline (flushes, compaction rounds, links/merges, stalls) as JSON-lines.
The ``bench`` subcommand runs the wall-clock performance suite
(:mod:`repro.harness.bench`) and writes a ``BENCH_<name>.json`` artifact
tracking how fast the simulator itself runs on the host.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .errors import UnknownBenchmarkError, UnknownPolicyError
from .harness import experiments
from .harness.report import format_table, mib
from .lsm.compaction.spec import resolve_factory
from .ssd.flash import DeviceConfig, FlashSpec
from .obs import (
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_DEVICE_READ,
    EV_DEVICE_WRITE,
    JsonLinesSink,
    RingBufferSink,
    Tracer,
    summarize_events,
)


def _print_output(output: experiments.ExperimentOutput) -> None:
    rows = []
    for row in output.rows:
        result = row.result
        rows.append(
            (
                row.workload,
                row.policy,
                round(result.throughput_ops_s),
                round(result.mean_latency_us, 1),
                round(result.latencies.percentile(99.9), 1),
                round(result.write_amplification, 2),
                round(mib(result.compaction_bytes_total), 1),
                round(mib(result.space_bytes), 2),
            )
        )
    print(
        format_table(
            [
                "workload",
                "policy",
                "ops/s",
                "avg us",
                "p99.9 us",
                "write amp",
                "compact MiB",
                "space MiB",
            ],
            rows,
            title=f"experiment: {output.name}",
        )
    )


def _run_fig01(ops: int, keys: int) -> None:
    out = experiments.fig01_latency_fluctuation(ops=ops, key_space=keys)
    points = out["points"]
    rows = [
        (f"{p.start_us / 1e3:.1f}ms", p.count, round(p.mean_latency_us, 1))
        for p in points[:40]
    ]
    print(format_table(["bucket", "ops", "mean latency us"], rows, title="fig01"))
    print(f"fluctuation ratio: {out['fluctuation_ratio']:.1f}x (paper: up to 49.13x)")


def _run_fig01s(ops: int, keys: int) -> None:
    out = experiments.fig01_scheduled_interference(ops=ops, key_space=keys)
    spreads = out["p99_p50_spread"]
    rows = [
        (
            policy,
            round(spreads[policy], 2),
            round(out["stall_time_us"][policy] / 1e3, 1),
            round(out["device_wait_us"][policy] / 1e3, 1),
        )
        for policy in sorted(spreads)
    ]
    print(
        format_table(
            ["policy", "write p99/p50", "stall ms", "device wait ms"],
            rows,
            title=f"fig01s (bg_threads={out['bg_threads']})",
        )
    )
    print(
        "scheduled interference: UDC spread should exceed LDC's "
        "(background compaction chunks share the device channel)"
    )


def _run_fig01ol(ops: int, keys: int) -> None:
    out = experiments.fig01_open_loop(ops=ops, key_space=keys)
    rows = []
    curves = out["curves"]
    for index, fraction in enumerate(out["load_fractions"]):
        for policy in ("UDC", "LDC"):
            row = curves[policy][index]
            rows.append(
                (
                    f"{fraction:.2f}",
                    policy,
                    round(row["offered_rate_ops_s"]),
                    round(row["p50_us"], 1),
                    round(row["p999_us"], 1),
                    f"{row['slo_violation_rate']:.4f}",
                    int(row["rejected"]),
                )
            )
    print(
        format_table(
            ["load", "policy", "rate ops/s", "p50 us", "p99.9 us",
             "SLO viol", "rejected"],
            rows,
            title=f"fig01_open_loop (SLO {out['slo_us']:g}us, "
            f"queue {out['queue_depth']}, {out['arrival']})",
        )
    )
    head = out["headline"]
    knee = out["knee_fraction"]
    print(
        f"UDC knee: load {knee} (first tested load with SLO violation "
        f"rate > 5%)" if knee is not None else "UDC knee: not reached"
    )
    print(
        f"headline @ load {head['load_fraction']:.2f} "
        f"({head['offered_rate_ops_s']:.0f} ops/s, above knee: "
        f"{head['above_knee']}): "
        f"UDC p99.9 {head['udc_p999_us']:.0f}us vs LDC "
        f"{head['ldc_p999_us']:.0f}us; SLO violation rate "
        f"{head['udc_slo_violation_rate']:.4f} vs "
        f"{head['ldc_slo_violation_rate']:.4f}"
    )
    print(
        "open-loop claim: UDC strictly worse on both -> "
        f"{head['udc_worse_p999'] and head['udc_worse_slo']}"
    )


def _run_tab1(ops: int, keys: int) -> None:
    shares = experiments.tab1_time_breakdown(ops=ops, key_space=keys)
    rows = [(name, f"{share:.1%}") for name, share in shares.items()]
    print(format_table(["module", "time share"], rows, title="Table I"))


def _run_fig08(ops: int, keys: int) -> None:
    out = experiments.fig08_tail_latency(ops=ops, key_space=keys)
    rows = [
        (f"P{pct:g}", round(out["UDC"][pct], 1), round(out["LDC"][pct], 1))
        for pct in sorted(out["UDC"])
    ]
    print(format_table(["percentile", "UDC us", "LDC us"], rows, title="fig08"))


def _run_fig13(ops: int, keys: int) -> None:
    out = experiments.fig13_bloom_ro(ops=ops, key_space=keys)
    rows = [
        (bits, int(d["block_reads"]), round(d["filter_bytes_per_table"] / 1024, 2))
        for bits, d in out.items()
    ]
    print(format_table(["bits/key", "block reads", "filter KiB"], rows, title="fig13"))


def _matrix_runner(fn: Callable[..., experiments.ExperimentOutput]):
    def run(ops: int, keys: int) -> None:
        _print_output(fn(ops=ops, key_space=keys))

    return run


def _counts_runner(fn: Callable[..., experiments.ExperimentOutput]):
    def run(ops: int, keys: int) -> None:
        _print_output(fn(request_counts=(ops // 3, ops * 2 // 3, ops)))

    return run


def _run_shard_scaling(ops: int, keys: int) -> None:
    out = experiments.shard_scaling(ops=ops, key_space=keys)
    rows = [
        (
            count,
            round(data["throughput_ops_s"]),
            round(data["write_amplification"], 2),
            round(data["compaction_mib"], 1),
            round(data["p999_us"], 1),
            round(data["wall_s"], 3),
        )
        for count, data in out.items()
    ]
    print(
        format_table(
            ["shards", "ops/s", "write amp", "compact MiB", "p99.9 us", "wall s"],
            rows,
            title="shard scaling (RWB, UDC per shard)",
        )
    )


def _run_describe(ops: int, keys: int) -> None:
    import random

    from . import DB

    db = DB(policy="ldc")
    rng = random.Random(0)
    for _ in range(min(ops, 20_000)):
        db.put(str(rng.randrange(keys)).zfill(16).encode(), b"v" * 128)
    print(db.describe())


def _policy_factory(name: str) -> Optional[Callable[[], object]]:
    """Resolve a registered policy name via the central registry.

    Prints the typed error (which lists every valid name) and returns
    ``None`` on a miss; callers turn that into exit status 2.
    """
    try:
        return resolve_factory(name)
    except UnknownPolicyError as exc:
        print(str(exc), file=sys.stderr)
        return None

#: Per-I/O events are dropped from the trace by default — a traced run
#: emits hundreds of device/cache events per compaction round, and the
#: compaction timeline is what ``repro trace`` exists to show.
_NOISY_KINDS = (EV_DEVICE_READ, EV_DEVICE_WRITE, EV_CACHE_HIT, EV_CACHE_MISS)


def run_trace(
    workload: str,
    policy: str,
    ops: int,
    keys: int,
    trace_out: Optional[str] = None,
    include_io: bool = False,
) -> int:
    """Run one Table III workload with the event tracer attached.

    Prints the per-kind event counts plus metrics-snapshot highlights;
    with ``trace_out`` the full timeline is also written as JSON-lines.
    """
    from .workload.spec import TABLE_III

    spec_factory = TABLE_III.get(workload)
    if spec_factory is None:
        known = ", ".join(TABLE_III)
        print(f"unknown workload {workload!r}; known: {known}", file=sys.stderr)
        return 2
    policy_factory = _policy_factory(policy)
    if policy_factory is None:
        return 2

    spec = spec_factory(num_operations=ops, key_space=keys, preload_keys=keys)
    kinds = None
    if not include_io:
        from .obs import ALL_EVENT_KINDS

        kinds = [k for k in ALL_EVENT_KINDS if k not in _NOISY_KINDS]
    ring = RingBufferSink()
    tracer = Tracer([ring], kinds=kinds)
    if trace_out is not None:
        tracer.add_sink(JsonLinesSink(trace_out))
    try:
        result = experiments.run_workload(
            spec, policy_factory, config=experiments.experiment_config(),
            tracer=tracer,
        )
    finally:
        tracer.close()

    print(f"trace: workload={spec.name} policy={result.policy} ops={result.operations}")
    counts = summarize_events(ring.events)
    rows = [(kind, count) for kind, count in counts.items()]
    print(format_table(["event", "count"], rows, title="event counts"))
    snap = result.metrics
    if snap is not None:
        highlights = [
            ("throughput ops/s", round(result.throughput_ops_s)),
            ("write amplification", round(snap.write_amplification, 2)),
            ("compaction MiB", round(mib(snap.compaction_bytes_total), 1)),
            ("cache hit ratio", round(snap.cache_hit_ratio, 3)),
        ]
        print(format_table(["metric", "value"], highlights, title="highlights"))
    if trace_out is not None:
        print(f"full timeline written to {trace_out}")
    return 0


def _build_flash_spec(
    over_provisioning: float,
    gc_policy: str,
    logical_mib: Optional[float],
    probe_space_bytes: Optional[int] = None,
) -> FlashSpec:
    """Build the CLI's flash geometry.

    An explicit ``--flash-logical-mib`` wins; otherwise the logical
    capacity is auto-sized from a flash-off probe's final store size at
    the same margin ``fig_device_wa`` uses, so GC pressure reflects the
    policy's write pattern rather than capacity starvation.
    """
    if logical_mib is not None:
        logical_bytes = max(int(logical_mib * 2**20), 1 << 20)
    else:
        assert probe_space_bytes is not None
        logical_bytes = max(
            int(probe_space_bytes * experiments.DEVICE_WA_SIZE_MARGIN), 1 << 20
        )
    return FlashSpec(
        logical_bytes=logical_bytes,
        over_provisioning=over_provisioning,
        gc_policy=gc_policy,
    )


def run_sharded_cli(
    workload: Optional[str],
    policy: str,
    ops: int,
    keys: int,
    shards: int,
    workers: int,
    partitioner: str,
    bg_threads: int = 0,
    slowdown_l0: Optional[int] = None,
    stop_l0: Optional[int] = None,
    flash: bool = False,
    flash_op: float = 0.07,
    flash_gc: str = "greedy",
    flash_logical_mib: Optional[float] = None,
) -> int:
    """Run one Table III workload across a sharded engine and report it.

    ``bg_threads >= 1`` turns on the virtual-time compaction scheduler
    per shard; ``slowdown_l0``/``stop_l0`` override the L0 write-throttle
    thresholds (docs/SCHEDULING.md).  ``flash=True`` mounts the page/block
    FTL layer (docs/DEVICE.md) under every shard's device and adds the
    device/total write-amplification rows to the report.
    """
    from .shard.runner import run_sharded_workload
    from .workload.spec import TABLE_III

    workload = workload or "RWB"
    spec_factory = TABLE_III.get(workload)
    if spec_factory is None:
        known = ", ".join(TABLE_III)
        print(f"unknown workload {workload!r}; known: {known}", file=sys.stderr)
        return 2
    policy_factory = _policy_factory(policy)
    if policy_factory is None:
        return 2
    overrides: Dict[str, object] = {"bg_threads": bg_threads}
    if slowdown_l0 is not None:
        overrides["l0_slowdown_trigger"] = slowdown_l0
    if stop_l0 is not None:
        overrides["l0_stop_trigger"] = stop_l0
    spec = spec_factory(num_operations=ops, key_space=keys)
    profile: object = None
    try:
        if flash:
            probe_space: Optional[int] = None
            if flash_logical_mib is None:
                probe = experiments.run_workload(
                    spec,
                    policy_factory,
                    config=experiments.experiment_config(**overrides),
                )
                probe_space = probe.space_bytes
            flash_spec = _build_flash_spec(
                flash_op, flash_gc, flash_logical_mib, probe_space
            )
            profile = DeviceConfig(flash=flash_spec)
            print(
                f"flash: {flash_spec.logical_bytes / 2**20:.1f} MiB logical "
                f"per shard, OP={flash_spec.over_provisioning:.0%}, "
                f"gc={flash_spec.gc_policy}"
            )
        kwargs: Dict[str, object] = {}
        if profile is not None:
            kwargs["profile"] = profile
        report = run_sharded_workload(
            spec,
            policy_factory,
            num_shards=shards,
            partitioner=partitioner,
            workers=workers,
            config=experiments.experiment_config(**overrides),
            **kwargs,
        )
    except Exception as exc:  # ConfigError: bad shard/partitioner/flash combo
        print(str(exc), file=sys.stderr)
        return 2
    print(
        f"run: workload={report.workload} policy={report.policy} "
        f"shards={report.num_shards} workers={report.workers} "
        f"partitioner={report.partitioner}"
    )
    snap = report.metrics
    highlights = [
        ("operations", report.operations),
        ("sim throughput ops/s", round(report.throughput_ops_s)),
        ("write amplification", round(report.write_amplification, 2)),
        ("compaction MiB", round(mib(snap.compaction_bytes_total), 1)),
        ("p99.9 latency us", round(report.latencies.percentile(99.9), 1)),
        ("wall seconds", round(report.wall_s, 3)),
    ]
    if flash:
        highlights.extend(
            [
                ("device write amp", round(report.device_write_amplification, 3)),
                ("total write amp", round(report.total_write_amplification, 2)),
                ("gc write MiB", round(mib(snap.gc_write_bytes), 2)),
                ("blocks erased", snap.blocks_erased),
            ]
        )
    if bg_threads >= 1:
        counters = snap.counters
        highlights.extend(
            [
                ("bg tasks completed", int(counters.get("sched.tasks_completed", 0))),
                ("stall ms", round(counters.get("sched.stall_time_us", 0) / 1e3, 1)),
                (
                    "slowdown ms",
                    round(counters.get("sched.slowdown_time_us", 0) / 1e3, 1),
                ),
                (
                    "device wait ms",
                    round(counters.get("sched.device_wait_us", 0) / 1e3, 1),
                ),
            ]
        )
    print(format_table(["metric", "value"], highlights, title="aggregate"))
    rows = [
        (
            index,
            result.operations,
            round(result.elapsed_us / 1e6, 3),
            round(result.write_amplification, 2),
            result.flush_count,
            result.compaction_count,
        )
        for index, result in enumerate(report.shard_results)
    ]
    print(
        format_table(
            ["shard", "ops", "virtual s", "write amp", "flushes", "compactions"],
            rows,
            title="per shard",
        )
    )
    return 0


def run_serve_cli(
    workload: Optional[str],
    policy: str,
    ops: int,
    keys: int,
    arrival: str = "poisson",
    rate: float = 15_000.0,
    tenants: int = 1,
    slo_us: float = 1_000.0,
    queue_depth: int = 128,
    discipline: str = "fifo",
    bg_threads: int = 0,
    seed: int = 7,
    shards: int = 1,
    partitioner: str = "hash",
) -> int:
    """Serve one Table III workload open-loop and report the client view.

    ``arrival`` picks the process (``poisson``/``onoff``/``diurnal``) or
    ``closed`` for closed-loop replay through the serve bookkeeping.
    ``rate`` is the aggregate offered load (virtual ops/s) split equally
    across ``tenants``; the report decomposes latency into queue wait and
    service time and shows per-tenant SLO-violation rates.
    """
    from .serve import ServeSpec, run_sharded_serve, serve_workload
    from .workload.spec import TABLE_III

    workload = workload or "RWB"
    spec_factory = TABLE_III.get(workload)
    if spec_factory is None:
        known = ", ".join(TABLE_III)
        print(f"unknown workload {workload!r}; known: {known}", file=sys.stderr)
        return 2
    policy_factory = _policy_factory(policy)
    if policy_factory is None:
        return 2
    spec = spec_factory(num_operations=ops, key_space=keys)
    config = experiments.experiment_config(bg_threads=bg_threads)
    try:
        serve_spec = ServeSpec(
            arrival=arrival,
            rate_ops_s=rate,
            num_tenants=tenants,
            queue_depth=queue_depth,
            discipline=discipline,
            slo_us=slo_us,
            seed=seed,
        )
        if shards > 1:
            report = run_sharded_serve(
                spec,
                policy_factory,
                serve_spec,
                num_shards=shards,
                partitioner=partitioner,
                config=config,
            )
            print(
                f"serve: workload={report.workload} policy={report.policy} "
                f"arrival={arrival} shards={report.num_shards} "
                f"partitioner={report.partitioner}"
            )
            highlights = [
                ("offered rate ops/s", round(rate)),
                ("arrived", report.arrived),
                ("completed", report.completed),
                ("rejected", report.rejected),
                ("sim throughput ops/s", round(report.throughput_ops_s)),
                ("SLO violation rate", round(report.slo_violation_rate, 4)),
                ("wait p99 us", round(report.wait_latencies.percentile(99.0), 1)),
                ("total p99.9 us", round(report.total_latencies.percentile(99.9), 1)),
            ]
            print(format_table(["metric", "value"], highlights, title="aggregate"))
            return 0
        result = serve_workload(spec, policy_factory, serve_spec, config=config)
    except Exception as exc:  # ConfigError: bad arrival/discipline combo
        print(str(exc), file=sys.stderr)
        return 2
    print(
        f"serve: workload={result.workload} policy={result.policy} "
        f"arrival={result.arrival} queue_depth={result.queue_depth} "
        f"discipline={result.discipline} bg_threads={bg_threads}"
    )
    highlights = [
        ("offered rate ops/s", round(result.offered_rate_ops_s)),
        ("arrived", result.arrived),
        ("admitted", result.admitted),
        ("rejected (queue full)", result.rejected_full),
        ("rejected (backpressure)", result.rejected_backpressure),
        ("completed", result.completed),
        ("sim throughput ops/s", round(result.throughput_ops_s)),
        ("SLO violation rate", round(result.slo_violation_rate, 4)),
    ]
    if result.completed:
        highlights.extend(
            [
                ("mean wait us", round(result.wait_latencies.mean(), 1)),
                ("mean service us", round(result.service_latencies.mean(), 1)),
                ("wait p99 us", round(result.wait_latencies.percentile(99.0), 1)),
                ("total p50 us", round(result.total_latencies.percentile(50.0), 1)),
                ("total p99 us", round(result.total_latencies.percentile(99.0), 1)),
                ("total p99.9 us", round(result.total_latencies.percentile(99.9), 1)),
            ]
        )
    print(format_table(["metric", "value"], highlights, title="client view"))
    if len(result.tenant_stats) > 1:
        rows = [
            (
                stats.tenant.name,
                stats.completed,
                stats.rejected_full + stats.rejected_backpressure,
                round(stats.slo_violation_rate, 4),
                round(stats.total_latencies.percentile(99.0), 1)
                if stats.completed
                else "-",
            )
            for stats in result.tenant_stats
        ]
        print(
            format_table(
                ["tenant", "completed", "rejected", "SLO viol rate", "p99 us"],
                rows,
                title="per tenant",
            )
        )
    return 0


def run_crashtest_cli(
    policy: str,
    ops: int,
    keys: int,
    every: int,
    shards: int,
    seed: int,
    value_bytes: int,
    corrupt: int,
    flash: bool = False,
) -> int:
    """Crash-point enumeration + corruption sweep (``repro crashtest``).

    Replays a deterministic mixed workload, crashing at every
    ``every``-th charged I/O, recovering, and checking the
    durability/atomicity oracle at each point; then seeds ``corrupt``
    read corruptions and requires all of them to be detected via CRC.
    ``flash=True`` mounts a deliberately tiny FTL geometry under the
    store so crash points land inside GC relocations too.  Exit status 0
    only when both passes hold.
    """
    from .faults import crashtest

    policy_factory = _policy_factory(policy)
    if policy_factory is None:
        return 2

    def progress(done: int, total: int) -> None:
        if done % 200 == 0 or done == total:
            print(f"  crash points: {done}/{total}", file=sys.stderr)

    report = crashtest.run_crashtest(
        policy_factory,
        policy_name=policy,
        num_ops=ops,
        num_keys=keys,
        value_bytes=value_bytes,
        seed=seed,
        stride=every,
        shards=shards,
        flash=crashtest.CRASHTEST_FLASH_SPEC if flash else None,
        progress=progress,
    )
    print(report.summary())
    corruption = None
    if corrupt > 0:
        corruption = crashtest.run_corruption_test(
            policy_factory,
            policy_name=policy,
            num_ops=min(ops, 1500),
            num_keys=keys,
            value_bytes=value_bytes,
            seed=seed,
            corruptions=corrupt,
        )
        print(corruption.summary())
    ok = report.ok and (corruption is None or corruption.ok)
    return 0 if ok else 1


def run_explore_cli(
    ops: int,
    keys: int,
    policies: Optional[str] = None,
    mixes: Optional[str] = None,
    profiles: Optional[str] = None,
    report_out: Optional[str] = None,
    flash: bool = False,
    flash_op: float = 0.07,
    flash_gc: str = "greedy",
    flash_logical_mib: Optional[float] = None,
) -> int:
    """Design-space exploration (``repro explore``).

    Sweeps registered policy compositions across workload mixes and
    device profiles, printing the WA/RA/p99 comparison grid; with
    ``--report-out`` the markdown report is also written to disk.
    ``flash=True`` mounts the same FTL geometry under every cell and adds
    device/total write-amplification columns plus a total-WA winner.
    """
    from .errors import ConfigError
    from .workload.spec import TABLE_III

    policy_names = None
    if policies:
        policy_names = [item.strip() for item in policies.split(",") if item.strip()]
        for name in policy_names:
            if _policy_factory(name) is None:
                return 2
    mix_names = list(experiments.DESIGN_SPACE_MIXES)
    if mixes:
        mix_names = [item.strip() for item in mixes.split(",") if item.strip()]
        for name in mix_names:
            if name not in TABLE_III:
                known = ", ".join(TABLE_III)
                print(f"unknown workload {name!r}; known: {known}", file=sys.stderr)
                return 2
    profile_names = list(experiments.DESIGN_SPACE_PROFILES)
    if profiles:
        profile_names = [item.strip() for item in profiles.split(",") if item.strip()]
    try:
        flash_spec = None
        if flash:
            probe_space: Optional[int] = None
            if flash_logical_mib is None:
                # One shared geometry for the whole sweep: size it from a
                # flash-off probe of the first mix under UDC (the widest
                # footprint spread is policy-side, which the margin covers).
                probe = experiments.run_workload(
                    experiments.workloads.TABLE_III[mix_names[0]](
                        num_operations=ops, key_space=keys
                    ),
                    experiments.udc_factory,
                    config=experiments.experiment_config(),
                )
                probe_space = probe.space_bytes
            flash_spec = _build_flash_spec(
                flash_op, flash_gc, flash_logical_mib, probe_space
            )
        report = experiments.design_space(
            policies=policy_names,
            mixes=mix_names,
            profiles=profile_names,
            ops=ops,
            key_space=keys,
            flash=flash_spec,
        )
    except ConfigError as exc:  # unknown device profile
        print(str(exc), file=sys.stderr)
        return 2
    headers = [
        "policy",
        "workload",
        "device",
        "ops/s",
        "p99 us",
        "WA",
        "RA",
        "compact MiB",
        "space MiB",
    ]
    if flash_spec is not None:
        headers += ["dev WA", "total WA"]
    rows = []
    for point in report["points"]:
        row = [
            point.policy,
            point.workload,
            point.profile,
            round(point.throughput_ops_s),
            round(point.p99_us, 1),
            round(point.write_amplification, 2),
            round(point.read_amplification, 2),
            round(point.compaction_mib, 2),
            round(point.space_mib, 2),
        ]
        if flash_spec is not None:
            row += [
                round(point.device_write_amplification, 3),
                round(point.total_write_amplification, 2),
            ]
        rows.append(tuple(row))
    print(format_table(headers, rows, title="design-space exploration"))
    winner_headers = [
        "cell", "lowest WA", "lowest RA", "lowest p99", "highest ops/s",
    ]
    if flash_spec is not None:
        winner_headers.append("lowest total WA")
    winner_rows = []
    for cell, best in report["winners"].items():
        row = [
            cell,
            best["write_amplification"],
            best["read_amplification"],
            best["p99_us"],
            best["throughput_ops_s"],
        ]
        if flash_spec is not None:
            row.append(best["total_write_amplification"])
        winner_rows.append(tuple(row))
    print(format_table(winner_headers, winner_rows, title="winners"))
    if report_out is not None:
        with open(report_out, "w", encoding="utf-8") as handle:
            handle.write(experiments.format_design_report(report))
        print(f"report written to {report_out}")
    return 0


def run_device_wa_cli(
    ops: int,
    keys: int,
    flash_op: float = 0.07,
    flash_gc: str = "greedy",
) -> int:
    """End-to-end write-amplification comparison (``repro fig_device_wa``).

    Sizes one flash geometry from a flash-off probe, runs every
    registered policy on it and prints host / device / total WA with the
    GC and wear counters (docs/DEVICE.md).
    """
    from .errors import ConfigError

    try:
        report = experiments.fig_device_wa(
            ops=ops,
            key_space=keys,
            over_provisioning=flash_op,
            gc_policy=flash_gc,
        )
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(experiments.format_device_wa_report(report))
    return 0


def run_bench_compare(paths: List[str], threshold: float) -> int:
    """Diff two bench reports; non-zero exit on regression or loss."""
    import json

    from .harness import bench

    reports = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                reports.append(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return 2
    try:
        diff = bench.diff_reports(reports[0], reports[1], threshold=threshold)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    rows = [
        (
            name,
            f"{factor:.3f}x",
            "REGRESSION" if name in diff["regressions"] else "ok",
        )
        for name, factor in sorted(diff["speedups"].items())
    ]
    for name in diff["missing"]:
        rows.append((name, "-", "MISSING"))
    for name in diff["added"]:
        # After-only benchmarks never gate; call them out explicitly so a
        # new benchmark is visible in review rather than silently passing.
        rows.append((name, "-", "new benchmark"))
    print(
        format_table(
            ["benchmark", "speedup", "status"],
            rows,
            title=f"bench compare (threshold {threshold:g})",
        )
    )
    if diff["regressions"] or diff["missing"]:
        failures = len(diff["regressions"]) + len(diff["missing"])
        print(
            f"{failures} benchmark(s) regressed beyond {threshold:g} or vanished",
            file=sys.stderr,
        )
        return 1
    print("no regressions")
    return 0


def run_bench_history(directory: str) -> int:
    """Print the markdown perf trajectory over committed BENCH_pr*.json.

    The table pasted into docs/PERF.md comes from this command, so the
    doc stays regenerable: ``repro bench --history``.
    """
    from .harness import bench

    try:
        entries = bench.load_bench_history(directory)
    except OSError as exc:
        print(f"cannot read {directory!r}: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"no BENCH_pr*.json reports found in {directory!r}", file=sys.stderr)
        return 2
    print(bench.history_table(entries))
    return 0


def run_bench_cli(
    quick: bool,
    out_dir: str,
    name: str,
    only: Optional[str] = None,
    profile: bool = False,
) -> int:
    """Run the wall-clock benchmark suite and write ``BENCH_<name>.json``.

    ``profile=True`` additionally runs every benchmark under ``cProfile``
    and drops ``PROFILE_<bench>.pstats`` files next to the report (see
    docs/PERF.md, "Profiling a benchmark").
    """
    from .harness import bench

    names = None
    if only:
        names = [item.strip() for item in only.split(",") if item.strip()]
    try:
        results = bench.run_bench(
            names=names,
            quick=quick,
            progress=lambda n: print(f"running {n} ..."),
            profile_dir=out_dir if profile else None,
        )
    except UnknownBenchmarkError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    rows = [
        (
            result.name,
            result.ops,
            round(result.wall_s, 3),
            round(result.ops_per_sec),
        )
        for result in results
    ]
    print(format_table(["benchmark", "ops", "wall s", "ops/s"], rows, title="bench"))
    report = bench.bench_report(results, name=name, quick=quick)
    path = bench.write_bench_report(report, out_dir=out_dir)
    print(f"report written to {path}")
    if profile:
        for result in results:
            print(f"profile written to {out_dir}/PROFILE_{result.name}.pstats")
        print("(profiled wall times are inflated; use them for hot spots only)")
    return 0


EXPERIMENTS: Dict[str, Callable[[int, int], None]] = {
    "fig01": _run_fig01,
    "fig01s": _run_fig01s,
    "fig01_open_loop": _run_fig01ol,
    "tab1": _run_tab1,
    "fig07": _matrix_runner(experiments.fig07_fanout_udc),
    "fig08": _run_fig08,
    "fig09": _matrix_runner(experiments.fig09_avg_latency),
    "fig10a": _matrix_runner(experiments.fig10a_throughput_get),
    "fig10b": _matrix_runner(experiments.fig10b_throughput_scan),
    "fig10c": _matrix_runner(experiments.fig10c_compaction_io),
    "fig11": _matrix_runner(experiments.fig11_zipf),
    "fig12ad": _matrix_runner(experiments.fig12ad_slicelink_threshold),
    "fig12be": _matrix_runner(experiments.fig12be_fanout_sweep),
    "fig12cf": _matrix_runner(experiments.fig12cf_bloom_rwb),
    "fig13": _run_fig13,
    "fig14": _counts_runner(experiments.fig14_scalability),
    "fig15": _counts_runner(experiments.fig15_space),
    "adaptive": _matrix_runner(experiments.ablation_adaptive_threshold),
    "tiered": _matrix_runner(experiments.ablation_tiered_tail),
    "asymmetry": _matrix_runner(experiments.ablation_device_asymmetry),
    "shard_scaling": _run_shard_scaling,
    "describe": _run_describe,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from the LDC paper (ICDE 2019).",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'trace' to trace one workload, or 'list'",
    )
    parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="Table III workload name (trace subcommand only), e.g. WO or RWB",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=None,
        help="measured operations (default 20000; 2000 for 'crashtest')",
    )
    parser.add_argument(
        "--keys",
        type=int,
        default=None,
        help="key-space size (default 8000; 200 for 'crashtest')",
    )
    parser.add_argument(
        "--policy",
        default="ldc",
        help="registered compaction policy for 'trace'/'run'/'crashtest' "
        "(see `repro explore` or repro.available_policies())",
    )
    parser.add_argument(
        "--policies",
        default=None,
        metavar="NAMES",
        help="comma-separated registered policies to sweep "
        "('explore' only, default: all)",
    )
    parser.add_argument(
        "--mixes",
        default=None,
        metavar="NAMES",
        help="comma-separated Table III workload mixes "
        "('explore' only, default: WO,RWB,RH)",
    )
    parser.add_argument(
        "--profiles",
        default=None,
        metavar="NAMES",
        help="comma-separated device profiles "
        "('explore' only, default: enterprise-pcie)",
    )
    parser.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        help="write the markdown comparison report to PATH ('explore' only)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the full event timeline as JSON-lines to PATH ('trace' only)",
    )
    parser.add_argument(
        "--include-io",
        action="store_true",
        help="also trace per-I/O device and cache events (verbose)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the bench suite ~10x for smoke runs ('bench' only)",
    )
    parser.add_argument(
        "--bench-out",
        default=".",
        metavar="DIR",
        help="directory receiving BENCH_<name>.json ('bench' only)",
    )
    parser.add_argument(
        "--bench-name",
        default="latest",
        help="artifact name: BENCH_<name>.json ('bench' only)",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="NAMES",
        help="comma-separated benchmark subset ('bench' only)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each benchmark under cProfile and write "
        "PROFILE_<bench>.pstats next to the report ('bench' only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for experiment grids and sharded runs "
        "(default serial)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="number of keyspace shards ('run' only)",
    )
    parser.add_argument(
        "--partitioner",
        default="hash",
        choices=("hash", "range"),
        help="keyspace partitioning strategy ('run' only)",
    )
    parser.add_argument(
        "--bg-threads",
        type=int,
        default=0,
        metavar="N",
        help="background compaction threads per shard; >= 1 turns on the "
        "virtual-time scheduler ('run'/'serve', default 0 = off)",
    )
    parser.add_argument(
        "--slowdown-l0",
        type=int,
        default=None,
        metavar="N",
        help="L0 file count that starts per-write slowdown delays "
        "('run' only, default from LSMConfig)",
    )
    parser.add_argument(
        "--stop-l0",
        type=int,
        default=None,
        metavar="N",
        help="L0 file count that stalls writes until compaction catches up "
        "('run' only, default from LSMConfig)",
    )
    parser.add_argument(
        "--arrival",
        default="poisson",
        choices=("poisson", "onoff", "diurnal", "closed"),
        help="arrival process for 'serve' (default poisson; 'closed' "
        "replays the workload closed-loop)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=15_000.0,
        metavar="OPS_S",
        help="aggregate offered load in virtual ops/s ('serve' only, "
        "default 15000)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=1,
        metavar="N",
        help="equal-rate tenants sharing the offered load ('serve' only)",
    )
    parser.add_argument(
        "--slo-us",
        type=float,
        default=1_000.0,
        metavar="US",
        help="latency SLO in virtual microseconds, queue wait + service "
        "('serve' only, default 1000)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=128,
        metavar="N",
        help="bounded request-queue capacity; arrivals beyond it are "
        "rejected ('serve' only, default 128)",
    )
    parser.add_argument(
        "--discipline",
        default="fifo",
        choices=("fifo", "priority"),
        help="request-queue discipline ('serve' only, default fifo)",
    )
    parser.add_argument(
        "--every",
        type=int,
        default=1,
        metavar="N",
        help="crash at every Nth I/O (stride sampling; 'crashtest' only)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed: workload for 'crashtest', arrival streams for 'serve'",
    )
    parser.add_argument(
        "--value-bytes",
        type=int,
        default=32,
        metavar="N",
        help="value size for the crashtest workload ('crashtest' only)",
    )
    parser.add_argument(
        "--corrupt",
        type=int,
        default=25,
        metavar="N",
        help="seeded read corruptions after the crash sweep; 0 disables "
        "('crashtest' only)",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        default=None,
        metavar=("BEFORE", "AFTER"),
        help="diff two BENCH_*.json reports instead of running ('bench' only)",
    )
    parser.add_argument(
        "--history",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="print a markdown perf-trajectory table from the committed "
        "BENCH_pr*.json baselines in DIR (default .) instead of running "
        "('bench' only)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.9,
        metavar="FACTOR",
        help="minimum acceptable speedup factor for --compare (default 0.9)",
    )
    parser.add_argument(
        "--flash",
        action="store_true",
        help="mount the page/block FTL flash layer under the simulated "
        "device ('run', 'explore', 'crashtest'; see docs/DEVICE.md)",
    )
    parser.add_argument(
        "--flash-op",
        type=float,
        default=0.07,
        metavar="FRACTION",
        help="flash over-provisioning fraction (default 0.07; "
        "'run'/'explore'/'fig_device_wa')",
    )
    parser.add_argument(
        "--flash-gc",
        default="greedy",
        choices=("greedy", "cost_benefit"),
        help="GC victim-selection policy (default greedy; "
        "'run'/'explore'/'fig_device_wa')",
    )
    parser.add_argument(
        "--flash-logical-mib",
        type=float,
        default=None,
        metavar="MIB",
        help="logical flash capacity in MiB; default auto-sizes from a "
        "flash-off probe of the workload ('run'/'explore')",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "crashtest":
        ops = args.ops if args.ops is not None else 2_000
        keys = args.keys if args.keys is not None else 200
    else:
        ops = args.ops if args.ops is not None else 20_000
        keys = args.keys if args.keys is not None else 8_000
    args.ops = ops
    args.keys = keys
    if args.workers is not None:
        experiments.set_default_workers(args.workers)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        print("fig_device_wa")
        print("trace")
        print("bench")
        print("run")
        print("serve")
        print("crashtest")
        print("explore")
        return 0
    if args.experiment == "fig_device_wa":
        return run_device_wa_cli(
            args.ops,
            args.keys,
            flash_op=args.flash_op,
            flash_gc=args.flash_gc,
        )
    if args.experiment == "explore":
        return run_explore_cli(
            args.ops,
            args.keys,
            policies=args.policies,
            mixes=args.mixes,
            profiles=args.profiles,
            report_out=args.report_out,
            flash=args.flash,
            flash_op=args.flash_op,
            flash_gc=args.flash_gc,
            flash_logical_mib=args.flash_logical_mib,
        )
    if args.experiment == "crashtest":
        return run_crashtest_cli(
            args.policy,
            args.ops,
            args.keys,
            every=args.every,
            shards=args.shards,
            seed=args.seed,
            value_bytes=args.value_bytes,
            corrupt=args.corrupt,
            flash=args.flash,
        )
    if args.experiment == "bench":
        if args.history is not None:
            return run_bench_history(args.history)
        if args.compare is not None:
            return run_bench_compare(args.compare, threshold=args.threshold)
        return run_bench_cli(
            quick=args.quick,
            out_dir=args.bench_out,
            name=args.bench_name,
            only=args.only,
            profile=args.profile,
        )
    if args.experiment == "serve":
        return run_serve_cli(
            args.workload,
            args.policy,
            args.ops,
            args.keys,
            arrival=args.arrival,
            rate=args.rate,
            tenants=args.tenants,
            slo_us=args.slo_us,
            queue_depth=args.queue_depth,
            discipline=args.discipline,
            bg_threads=args.bg_threads,
            seed=args.seed,
            shards=args.shards,
            partitioner=args.partitioner,
        )
    if args.experiment == "run":
        return run_sharded_cli(
            args.workload,
            args.policy,
            args.ops,
            args.keys,
            shards=args.shards,
            workers=args.workers or 1,
            partitioner=args.partitioner,
            bg_threads=args.bg_threads,
            slowdown_l0=args.slowdown_l0,
            stop_l0=args.stop_l0,
            flash=args.flash,
            flash_op=args.flash_op,
            flash_gc=args.flash_gc,
            flash_logical_mib=args.flash_logical_mib,
        )
    if args.experiment == "trace":
        if args.workload is None:
            print("trace requires a workload name, e.g. `repro trace WO`",
                  file=sys.stderr)
            return 2
        return run_trace(
            args.workload,
            args.policy,
            args.ops,
            args.keys,
            trace_out=args.trace_out,
            include_io=args.include_io,
        )
    runner = EXPERIMENTS.get(args.experiment)
    if runner is None:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {args.experiment!r}; known: list, {known}",
              file=sys.stderr)
        return 2
    runner(args.ops, args.keys)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
