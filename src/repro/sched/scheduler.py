"""Deterministic virtual-time background compaction scheduling.

The synchronous engine runs every compaction round inline inside the
operation that made it due, so foreground traffic and compaction never
overlap in simulated device time — the paper's interference mechanism
(Fig. 1, Figs. 8–9) is only approximated by per-operation charging.  This
module makes the overlap real while staying fully deterministic:

**Capture.**  A compaction round still executes the unchanged policy code
(:meth:`~repro.lsm.compaction.base.CompactionPolicy.step`), but under the
clock's *capture mode*: the round's logical effects — version-set edits,
links, merges, file drops — apply immediately and atomically, while every
time charge is diverted into a list of ``(kind, duration, bytes)`` items.
Logical state is therefore identical between scheduler-on and
scheduler-off runs (the metamorphic guarantee the differential suite
pins), and a crash can simply discard in-flight work: it is pure time
debt, never half-applied state.

**Chunks and threads.**  Captured items are split at block granularity
into chunks.  Each background "thread" owns a ``free_at_us`` horizon and
drains one task (one captured round) at a time, chunk by chunk.  IO chunks
additionally serialise on the shared :class:`~repro.ssd.clock.DeviceChannel`
— one device, one transfer at a time — while CPU chunks only occupy the
thread, so CPU work overlaps device work across threads.  Foreground I/O
arriving while the channel is busy waits out the horizon
(``sched.device_wait_us``): that wait is the interference.

**Pacing.**  New rounds are captured only when a thread is idle *at the
current virtual time*.  While every thread is still paying off earlier
debt, flushes pile files into Level 0 — which is exactly when LevelDB's
write throttling (slowdown delay, stop stall) becomes mechanically
meaningful rather than a modelling fiction.

Everything is a pure function of the operation stream: ties break on
thread index, queues are FIFO, and no wall-clock or randomness enters, so
runs are bit-for-bit reproducible.
"""

from __future__ import annotations

from collections import deque
from math import ceil
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from ..errors import CompactionError, EngineError
from ..obs.events import EV_SCHED_TASK, EV_SCHED_TASK_DONE
from ..ssd.clock import CAPTURE_IO, DeviceChannel

if TYPE_CHECKING:  # pragma: no cover
    from ..lsm.db import DB

#: Safety bound on rounds started by one stop-stall; mirrors
#: MAX_ROUNDS_PER_PASS in the synchronous drain path.
MAX_STALL_ROUNDS = 10_000

#: One replayable unit of background work: ``(kind, duration_us)``.
Chunk = Tuple[str, float]


class CompactionTask:
    """One captured compaction round, resumable at chunk granularity."""

    __slots__ = ("task_id", "policy", "enqueued_us", "chunks", "next_chunk")

    def __init__(
        self, task_id: int, policy: str, enqueued_us: float, chunks: List[Chunk]
    ) -> None:
        self.task_id = task_id
        self.policy = policy
        #: Virtual time of capture; chunks never replay before it.
        self.enqueued_us = enqueued_us
        self.chunks = chunks
        self.next_chunk = 0

    @property
    def remaining_chunks(self) -> int:
        return len(self.chunks) - self.next_chunk

    @property
    def done(self) -> bool:
        return self.next_chunk >= len(self.chunks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompactionTask(id={self.task_id}, policy={self.policy!r}, "
            f"{self.remaining_chunks}/{len(self.chunks)} chunks left)"
        )


class BackgroundThread:
    """One simulated compaction worker: busy until ``free_at_us``."""

    __slots__ = ("index", "free_at_us", "task")

    def __init__(self, index: int) -> None:
        self.index = index
        self.free_at_us = 0.0
        self.task: Optional[CompactionTask] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "idle" if self.task is None else f"task={self.task.task_id}"
        return f"BackgroundThread({self.index}, free_at={self.free_at_us:.1f}, {state})"


class CompactionScheduler:
    """Drains captured compaction rounds on N virtual background threads.

    Built by :class:`~repro.lsm.db.DB` when ``config.bg_threads >= 1``;
    attaches a :class:`~repro.ssd.clock.DeviceChannel` to the DB's device
    so foreground I/O arbitrates against in-flight background chunks.

    All counters live under the ``sched.`` namespace of the DB's metrics
    registry: ``tasks_enqueued`` / ``tasks_completed``,
    ``chunks_executed`` / ``chunks_discarded``, ``bg_busy_us``,
    ``device_wait_us`` / ``device_waits`` (bumped by the device),
    ``stall_events`` / ``stall_time_us`` and ``slowdown_events`` /
    ``slowdown_time_us`` (bumped by the DB's throttle path).
    """

    def __init__(self, db: "DB") -> None:
        if db.config.bg_threads <= 0:
            raise EngineError("CompactionScheduler requires bg_threads >= 1")
        self.db = db
        self.channel = DeviceChannel()
        db.device.channel = self.channel
        self.threads = [
            BackgroundThread(index) for index in range(db.config.bg_threads)
        ]
        self.queue: Deque[CompactionTask] = deque()
        self._next_task_id = 1
        self._count = db.registry.add
        self._chunk_bytes = db.config.sched_chunk_blocks * db.config.block_bytes
        # CPU chunk duration: comparable to one block's sequential read, so
        # CPU-heavy rounds interleave at the same grain as IO-heavy ones.
        self._cpu_chunk_us = max(
            db.device.read_cost_us(db.config.block_bytes, sequential=True), 1e-9
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def in_flight(self) -> bool:
        """True while any background work is queued or mid-task."""
        return bool(self.queue) or any(t.task is not None for t in self.threads)

    def pending_chunks(self) -> int:
        """Chunks not yet replayed, across queue and threads."""
        total = sum(task.remaining_chunks for task in self.queue)
        total += sum(t.task.remaining_chunks for t in self.threads if t.task)
        return total

    def backlog(self) -> Dict[str, float]:
        """Back-pressure signal for upstream admission control.

        Returns the queued-task count, the unreplayed chunk count and
        how far (virtual µs) the busiest background thread is committed
        past *now* — the serving layer's view of how much compaction
        debt a newly admitted write would land behind.  Pure
        introspection: touches no clock and mutates nothing.
        """
        now = self.db.clock.now()
        horizon = max(
            (t.free_at_us for t in self.threads if t.task is not None),
            default=now,
        )
        return {
            "queued_tasks": float(len(self.queue)),
            "pending_chunks": float(self.pending_chunks()),
            "busy_us": max(0.0, horizon - now),
        }

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def on_operation(self) -> None:
        """Advance background work to the current virtual time.

        Called by the DB after each user operation: replay chunks whose
        start precedes *now*, then capture at most one new round per
        thread idle at the current time.  Capture-on-idle is the pacing
        rule: busy threads mean Level 0 accumulates, which is what arms
        the slowdown/stop throttling upstream.
        """
        now = self.db.clock.now()
        self.pump(now)
        self._start_rounds(now)

    def pump(self, until_us: float) -> None:
        """Replay every background chunk that starts strictly before ``until_us``."""
        while True:
            self._assign_idle()
            thread = self._earliest_runnable()
            if thread is None or self._next_start(thread) >= until_us:
                return
            self._run_chunk(thread)

    def drain(self) -> float:
        """Pay off all outstanding debt; advance the clock past the last chunk.

        Used at ``close()`` so a finished run's clock covers all work the
        run caused — the analogue of joining the compaction threads.
        Returns the new virtual time.
        """
        clock = self.db.clock
        last = clock.now()
        while True:
            self._assign_idle()
            thread = self._earliest_runnable()
            if thread is None:
                break
            end, _ = self._run_chunk(thread)
            if end > last:
                last = end
        return clock.advance_to(last)

    def stall_until_l0_below(self, limit: int) -> None:
        """Block (in virtual time) until Level 0 holds fewer than ``limit`` files.

        The L0 *stop* semantics: capture new rounds whenever a thread is
        idle (their effects shrink L0 immediately); while all threads are
        busy, jump the clock to the next task completion — the writer is
        genuinely waiting for background compaction to catch up.
        """
        db = self.db
        version = db.version
        rounds = 0
        while len(version.levels[0]) >= limit:
            now = db.clock.now()
            self.pump(now)
            if self._start_rounds(now):
                rounds += 1
                if rounds > MAX_STALL_ROUNDS:
                    raise CompactionError(
                        f"L0 stop stall did not converge within "
                        f"{MAX_STALL_ROUNDS} rounds"
                    )
                continue
            if not self._advance_to_next_completion():
                # Nothing in flight and the policy found no work: L0
                # cannot shrink further; surrender rather than spin.
                break

    def discard_inflight(self) -> int:
        """Drop queued and mid-task work (crash semantics); return chunks lost.

        Captured rounds already applied their logical effects, so the only
        thing a crash destroys is unpaid time debt — which a rebooted
        store does not owe.  The channel's future occupancy dies with it.
        """
        dropped = self.pending_chunks()
        self.queue.clear()
        now = self.db.clock.now()
        for thread in self.threads:
            thread.task = None
            if thread.free_at_us > now:
                thread.free_at_us = now
        self.channel.release(now)
        if dropped:
            self._count("sched.chunks_discarded", dropped)
        return dropped

    def check_invariants(self) -> None:
        """Scheduler-internal consistency; raise :class:`EngineError` on violation."""
        for thread in self.threads:
            task = thread.task
            if task is not None and task.done:
                raise EngineError(
                    f"background thread {thread.index} holds completed "
                    f"task {task.task_id}"
                )
        for task in self.queue:
            if task.next_chunk != 0:
                raise EngineError(
                    f"queued task {task.task_id} has already executed chunks"
                )
        if self.channel.busy_until_us < 0:
            raise EngineError("device channel horizon is negative")

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def _start_rounds(self, now_us: float) -> bool:
        """Capture one round per currently-idle thread; True if any captured."""
        captured = False
        for thread in self.threads:
            if thread.task is not None or thread.free_at_us > now_us:
                continue
            if self.queue:
                self._assign_idle()
                continue
            if not self._capture_round(now_us):
                break
            captured = True
            self._assign_idle()
        return captured

    def _capture_round(self, now_us: float) -> bool:
        """Run one policy round under clock capture; enqueue its time debt."""
        db = self.db
        clock = db.clock
        clock.begin_capture()
        try:
            did_work = db.policy.step()
        finally:
            items = clock.end_capture()
        if not did_work:
            return False
        chunks = self._chunkify(items)
        self._count("sched.tasks_enqueued")
        if not chunks:
            # Zero-I/O metadata round (an LDC link, a trivial move): there
            # is no debt to replay, so no task occupies a thread.
            self._count("sched.tasks_completed")
            return True
        task = CompactionTask(
            self._next_task_id, db.policy.name, now_us, chunks
        )
        self._next_task_id += 1
        self.queue.append(task)
        tracer = db.tracer
        if tracer.active:
            tracer.emit(
                EV_SCHED_TASK,
                task_id=task.task_id,
                policy=task.policy,
                chunks=len(chunks),
                debt_us=sum(duration for _, duration in chunks),
                io_us=sum(d for kind, d in chunks if kind == CAPTURE_IO),
            )
        return True

    def _chunkify(self, items) -> List[Chunk]:
        """Split captured time charges into block-granularity chunks."""
        chunks: List[Chunk] = []
        for kind, duration, nbytes in items:
            if duration <= 0:
                continue
            if kind == CAPTURE_IO:
                pieces = max(1, -(-nbytes // self._chunk_bytes))
            else:
                pieces = max(1, ceil(duration / self._cpu_chunk_us))
            per_chunk = duration / pieces
            chunks.extend((kind, per_chunk) for _ in range(pieces))
        return chunks

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _assign_idle(self) -> None:
        """Hand queued tasks to idle threads (earliest-free first, FIFO tasks)."""
        while self.queue:
            idle = [t for t in self.threads if t.task is None]
            if not idle:
                return
            thread = min(idle, key=lambda t: (t.free_at_us, t.index))
            task = self.queue.popleft()
            thread.task = task
            if task.enqueued_us > thread.free_at_us:
                thread.free_at_us = task.enqueued_us

    def _next_start(self, thread: BackgroundThread) -> float:
        kind, _ = thread.task.chunks[thread.task.next_chunk]
        if kind == CAPTURE_IO and self.channel.busy_until_us > thread.free_at_us:
            return self.channel.busy_until_us
        return thread.free_at_us

    def _earliest_runnable(self) -> Optional[BackgroundThread]:
        """The busy thread whose next chunk can start first (ties: index)."""
        best: Optional[BackgroundThread] = None
        best_start = 0.0
        for thread in self.threads:
            if thread.task is None:
                continue
            start = self._next_start(thread)
            if best is None or start < best_start:
                best = thread
                best_start = start
        return best

    def _run_chunk(self, thread: BackgroundThread) -> Tuple[float, bool]:
        """Replay one chunk on ``thread``; return (end time, task completed)."""
        task = thread.task
        kind, duration = task.chunks[task.next_chunk]
        start = self._next_start(thread)
        end = start + duration
        thread.free_at_us = end
        if kind == CAPTURE_IO:
            self.channel.occupy_until(end)
        task.next_chunk += 1
        self._count("sched.chunks_executed")
        self._count("sched.bg_busy_us", duration)
        completed = task.done
        if completed:
            thread.task = None
            self._count("sched.tasks_completed")
            tracer = self.db.tracer
            if tracer.active:
                tracer.emit(
                    EV_SCHED_TASK_DONE,
                    task_id=task.task_id,
                    policy=task.policy,
                    completed_us=end,
                )
        return end, completed

    def _advance_to_next_completion(self) -> bool:
        """Fast-forward the clock to the next task completion; False if none."""
        clock = self.db.clock
        while True:
            self._assign_idle()
            thread = self._earliest_runnable()
            if thread is None:
                return False
            end, completed = self._run_chunk(thread)
            if completed:
                clock.advance_to(end)
                return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        busy = sum(1 for t in self.threads if t.task is not None)
        return (
            f"CompactionScheduler(threads={len(self.threads)}, busy={busy}, "
            f"queued={len(self.queue)})"
        )
