"""Virtual-time background compaction scheduling (see docs/SCHEDULING.md).

Enable with ``LSMConfig(bg_threads=N)``: compaction rounds become captured,
chunk-granular work units drained by N deterministic background threads
that share the simulated device's bandwidth with foreground I/O, while
writes observe LevelDB-style L0 slowdown/stop throttling.  With the
default ``bg_threads=0`` nothing here runs and the engine's timing is
byte-identical to the historical synchronous mode.
"""

from .scheduler import (
    BackgroundThread,
    CompactionScheduler,
    CompactionTask,
    MAX_STALL_ROUNDS,
)
from ..ssd.clock import DeviceChannel

__all__ = [
    "BackgroundThread",
    "CompactionScheduler",
    "CompactionTask",
    "DeviceChannel",
    "MAX_STALL_ROUNDS",
]
