"""LDC: Lower-level Driven Compaction (the paper's Algorithm 1).

LDC splits the traditional compaction into two phases:

**Link** (§III-B.1) — when level ``i`` overflows and an SSTable ``s_u`` is
selected, no data moves.  ``s_u`` is *frozen* (removed from the tree, placed
in the :class:`~repro.core.frozen.FrozenRegion` with a reference count) and,
for each level ``i+1`` SSTable whose *responsibility range* holds some of
``s_u``'s keys, a :class:`~repro.core.slice.Slice` of ``s_u`` is linked onto
that lower file.  Linking is pure metadata: zero I/O.

**Merge** (§III-B.2) — when a lower-level SSTable has accumulated at least
``T_s`` SliceLinks, the actual I/O happens: the file and all its linked
slices are read, merge-sorted, and rewritten as new SSTables *in the same
level*; every source frozen file drops one reference and is recycled at
zero (Algorithm 1, lines 10–22).

Because the merge trigger waits for roughly one file's worth of linked
upper-level data, each round's extra lower-level I/O is O(1) files instead
of O(fan_out) — Theorem 3.1's write-amplification reduction — and each
round is small, which shrinks the tail latency of equation (3).

Responsibility ranges follow Example 3.2: lower-level file ``j`` owns keys
in ``(max_key(j-1), max_key(j)]``, the first file extending down to the
smallest possible key and the last file up to the largest.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .adaptive import AdaptiveThreshold
from .frozen import FrozenRegion
from .slice import Slice, attach_slice, detach_all_slices
from ..errors import CompactionError
from ..lsm.compaction.base import CompactionPolicy, guard_rounds
from ..lsm.keys import key_successor
from ..lsm.sstable import SSTable
from ..obs.events import EV_LINK, EV_MERGE, EV_TRIVIAL_MOVE
from ..ssd.metrics import COMPACTION_READ


class LDCPolicy(CompactionPolicy):
    """The paper's Lower-level Driven Compaction policy."""

    name = "ldc"

    def __init__(
        self,
        threshold: Optional[int] = None,
        adaptive: Optional[bool] = None,
    ) -> None:
        """Create an LDC policy.

        Parameters
        ----------
        threshold:
            Fixed SliceLink threshold ``T_s``; defaults to the engine
            config's ``slicelink_threshold`` at attach time.
        adaptive:
            Enable the §III-B.4 self-adaptive controller; defaults to the
            engine config's ``adaptive_threshold`` flag.
        """
        super().__init__()
        self._threshold_override = threshold
        self._adaptive_override = adaptive
        self._fixed_threshold = 0
        self._adaptive: Optional[AdaptiveThreshold] = None
        self.frozen = FrozenRegion()
        self._link_seq = 0
        #: Active lower-level tables currently holding at least one slice,
        #: keyed by file id (merge-trigger scan set).
        self._linked_tables: dict[int, SSTable] = {}
        #: Subset of linked tables already past the merge trigger, filled
        #: at link time so the per-operation check is O(1).
        self._due: dict[int, SSTable] = {}
        self._last_threshold: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle / hooks
    # ------------------------------------------------------------------
    def attach(self, db) -> None:  # type: ignore[override]
        super().attach(db)
        config = db.config
        self._fixed_threshold = (
            self._threshold_override
            if self._threshold_override is not None
            else config.slicelink_threshold
        )
        use_adaptive = (
            self._adaptive_override
            if self._adaptive_override is not None
            else config.adaptive_threshold
        )
        if use_adaptive:
            self._adaptive = AdaptiveThreshold(config.fan_out)

    @property
    def threshold(self) -> int:
        """Current SliceLink threshold ``T_s``."""
        if self._adaptive is not None:
            return self._adaptive.threshold
        return self._fixed_threshold

    def on_operation(self, is_write: bool) -> None:
        if self._adaptive is not None:
            self._adaptive.observe(is_write)

    def extra_space_bytes(self) -> int:
        return self.frozen.space_bytes

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def compact_one(self) -> bool:
        """One I/O-bearing round: a merge, or a batch of zero-I/O links.

        Priority order: (1) merge a lower-level table whose SliceLinks are
        due (Algorithm 1's trigger); (2) relieve frozen-region space
        pressure; (3) shrink the most over-capacity level — by linking
        (free, so several links may batch into this round until a merge
        happens or the tree is in shape) or, when every file in the level
        already holds links, by merging one.
        """
        db = self._db
        did_work = False
        rounds = 0
        while True:
            rounds += 1
            guard_rounds(rounds)
            if self._merge_over_threshold():
                return True
            if self._enforce_frozen_space_limit():
                return True
            level = db.version.pick_compaction_level()
            if level is None:
                return did_work
            if self._compact_once(level):
                return True
            # A link or trivial move happened: free, keep going.
            did_work = True

    def due_for_merge(self, table: SSTable) -> bool:
        """Has ``table`` accumulated enough linked data to merge?

        The paper triggers the merge "when a lower-level SSTable has
        accumulated nearly the same amount of data as itself" and exposes
        the SliceLink threshold ``T_s`` as the knob, with ``T_s = fan_out``
        the balanced optimum (each slice is ~1/fan_out of a file, so
        ``fan_out`` slices equal one file).  In a simulated tree whose
        level-size ratios are not yet at steady state, slice sizes deviate
        from 1/fan_out, so we apply the *data-amount* form directly and
        scale it by the knob: merge once

            linked_bytes >= (T_s / fan_out) * file_bytes.

        At ``T_s = fan_out`` this is exactly the paper's "same amount of
        data" condition; smaller thresholds merge earlier (less slice
        accumulation, more extra I/O), larger ones later (less write
        amplification, more fragments to read) — precisely the Fig. 12a/d
        trade-off.  A slice-count backstop (4x the nominal count) bounds
        metadata growth when individual slices are tiny.
        """
        if not table.slice_links:
            return False
        ratio = self.threshold / self._db.config.fan_out
        if table.linked_bytes >= ratio * table.data_size:
            return True
        return len(table.slice_links) >= 4 * max(1, self.threshold)

    def _merge_over_threshold(self) -> bool:
        """Merge one table whose accumulated SliceLinks have reached T_s."""
        threshold = self.threshold
        if self._last_threshold is not None and threshold < self._last_threshold:
            # The adaptive controller lowered T_s: tables that were below
            # the old trigger may be due now, so refresh the due set.
            for table in self._linked_tables.values():
                if self.due_for_merge(table):
                    self._due[table.file_id] = table
        self._last_threshold = threshold
        while self._due:
            file_id, table = next(iter(self._due.items()))
            del self._due[file_id]
            # Entries can go stale if T_s rose since they were queued.
            if file_id in self._linked_tables and self.due_for_merge(table):
                self.merge(table)
                return True
        return False

    def _enforce_frozen_space_limit(self) -> bool:
        """Force a merge when the frozen region grows past its cap (§III-D)."""
        db = self._db
        limit = db.config.frozen_space_limit_ratio * max(
            1, db.version.total_data_size()
        )
        if self.frozen.space_bytes <= limit or not self._linked_tables:
            return False
        victim = max(
            self._linked_tables.values(), key=lambda table: table.linked_bytes
        )
        db.engine_stats.forced_merges += 1
        self.bump("forced_merges")
        self.merge(victim)
        return True

    # ------------------------------------------------------------------
    # One compaction action for an over-capacity level
    # ------------------------------------------------------------------
    def _compact_once(self, level: int) -> bool:
        """One action against an over-capacity level.

        Returns True when the action performed I/O (a merge), False for
        zero-I/O metadata actions (a link or a trivial move).
        """
        db = self._db
        version = db.version
        source = self._pick_link_source(level)
        if source is None:
            # Paper rule: a file holding SliceLinks cannot be a link
            # source (§III-D), and every file in this level holds links.
            # Merge the most-linked one; its outputs become link-free and
            # eligible to link down on a later round.
            victim = max(
                version.files(level), key=lambda table: len(table.slice_links)
            )
            self.merge(victim)
            return True
        version.advance_compact_pointer(level, source)
        targets = version.files(level + 1)
        if not targets:
            return self._descend_into_empty_level(level, source)
        self.link(source, level)
        return False

    def _pick_link_source(self, level: int) -> Optional[SSTable]:
        """Round-robin over the level's link-free files (None if all linked).

        Level 0 always picks the *oldest* file: Level-0 files overlap, and
        freezing strictly oldest-first guarantees that later-linked slices
        always carry newer data than earlier-linked ones, which the read
        path's newest-link-first priority relies on.
        """
        version = self._db.version
        candidates = [
            table for table in version.files(level) if not table.slice_links
        ]
        if not candidates:
            return None
        if level == 0:
            return min(candidates, key=lambda table: table.file_id)
        pointer = version.compact_pointer.get(level)
        if pointer is not None:
            for table in sorted(candidates, key=lambda t: t.min_key):
                if table.max_key > pointer:
                    return table
        return min(candidates, key=lambda table: table.min_key)

    def _descend_into_empty_level(self, level: int, source: SSTable) -> bool:
        """Move data into an empty next level (bootstrap path).

        With nothing below there is nothing to *drive* a lower-level
        compaction, so LDC behaves like LevelDB here: trivially move the
        file when safe (zero I/O, returns False), otherwise merge the
        Level-0 overlapping set down (returns True).
        """
        db = self._db
        version = db.version
        if level != 0 or self._alone_in_level0(source):
            version.remove_file(level, source)
            version.add_file(level + 1, source)
            db.engine_stats.trivial_moves += 1
            self.bump("trivial_moves")
            db.tracer.emit(
                EV_TRIVIAL_MOVE, policy=self.name, file_id=source.file_id,
                from_level=level, to_level=level + 1,
            )
            return False
        inputs = self._expanded_level0_set(source)
        drop = self.can_drop_tombstones(level + 1)
        outputs = self.merge_tables(inputs, drop_deletes=drop)
        for table in inputs:
            version.remove_file(0, table)
            db.note_file_dropped(table)
        for table in outputs:
            version.add_file(1, table)
        db.engine_stats.compaction_count += 1
        self.bump("bootstrap_compactions")
        return True

    def _alone_in_level0(self, table: SSTable) -> bool:
        overlapping = self._db.version.overlapping(
            0, table.min_key, key_successor(table.max_key)
        )
        return len(overlapping) == 1

    def _expanded_level0_set(self, seed: SSTable) -> List[SSTable]:
        version = self._db.version
        chosen = {seed.file_id: seed}
        lo, hi = seed.min_key, key_successor(seed.max_key)
        changed = True
        while changed:
            changed = False
            for table in version.overlapping(0, lo, hi):
                if table.file_id not in chosen:
                    chosen[table.file_id] = table
                    lo = min(lo, table.min_key)
                    hi = max(hi, key_successor(table.max_key))
                    changed = True
        return sorted(chosen.values(), key=lambda table: table.file_id)

    # ------------------------------------------------------------------
    # Phase 1: link (Algorithm 1, lines 1-9) — zero I/O
    # ------------------------------------------------------------------
    def link(self, source: SSTable, level: int) -> None:
        """Freeze ``source`` and link its slices onto level ``level+1``."""
        db = self._db
        version = db.version
        if source.slice_links:
            raise CompactionError(
                f"file {source.file_id} holds SliceLinks and cannot be linked"
            )
        plan = self._slice_plan(source, level + 1)
        if not plan:
            raise CompactionError(
                f"no responsibility targets found for file {source.file_id}; "
                f"level {level + 1} must be non-empty to drive a link"
            )
        version.remove_file(level, source)
        self.frozen.freeze(source, references=len(plan))
        for target, lo, hi in plan:
            self._link_seq += 1
            piece = Slice(source, lo, hi, self._link_seq)
            attach_slice(target, piece)
            version.note_linked_bytes(level + 1, piece.size_bytes)
            self._linked_tables[target.file_id] = target
            if self.due_for_merge(target):
                self._due[target.file_id] = target
        db.engine_stats.link_count += 1
        self.bump("links")
        self.bump("slices_created", len(plan))
        self.set_metric_gauge("threshold", self.threshold)
        self.set_metric_gauge("frozen_space_bytes", self.frozen.space_bytes)
        db.tracer.emit(
            EV_LINK,
            source_file=source.file_id,
            from_level=level,
            to_level=level + 1,
            slices=len(plan),
            frozen_bytes=source.data_size,
        )
        # Algorithm 1 lines 8-9 trigger the merge of any target now at the
        # threshold; the main loop's first priority performs it on the next
        # round, which is equivalent and keeps "one I/O unit per round".

    def _slice_plan(
        self, source: SSTable, target_level: int
    ) -> List[Tuple[SSTable, Optional[bytes], Optional[bytes]]]:
        """Partition ``source`` over the responsibility ranges of a level.

        Returns ``(target_file, lo, hi)`` triples (half-open ranges) for
        every lower-level file that owns at least one of the source's keys.
        The ranges tile the whole key space, so every source key is
        assigned to exactly one target.
        """
        files = self._db.version.files(target_level)
        plan: List[Tuple[SSTable, Optional[bytes], Optional[bytes]]] = []
        previous_hi: Optional[bytes] = None
        for index, target in enumerate(files):
            lo = previous_hi
            is_last = index == len(files) - 1
            hi = None if is_last else key_successor(target.max_key)
            previous_hi = hi
            if source.count_in_range(lo, hi) > 0:
                plan.append((target, lo, hi))
        return plan

    # ------------------------------------------------------------------
    # Phase 2: merge (Algorithm 1, lines 10-22) — the actual I/O
    # ------------------------------------------------------------------
    def merge(self, target: SSTable) -> None:
        """Lower-level driven merge of ``target`` with its linked slices."""
        db = self._db
        version = db.version
        slices = list(target.slice_links)
        if not slices:
            raise CompactionError(
                f"file {target.file_id} has no SliceLinks to merge"
            )
        level = version.level_of(target)

        # Load the lower file in full and each slice's overlapping blocks.
        db.device.read(target.data_size, COMPACTION_READ, sequential=True)
        if db._faulty:
            db._verify_block_read(target, range(target.num_blocks))
        for piece in slices:
            db.device.read(
                piece.read_block_bytes(), COMPACTION_READ, sequential=True
            )
            if db._faulty:
                db._verify_block_read(
                    piece.source,
                    [b for b, _ in piece.source.blocks_in_range(piece.lo, piece.hi)],
                )

        streams = [target.records]
        streams.extend(piece.records() for piece in slices)
        drop = self.can_drop_tombstones(level)
        merged = self.merge_table_streams(streams, drop_deletes=drop)
        outputs = self.write_outputs(merged)

        version.remove_file(level, target)
        db.note_file_dropped(target)
        self._linked_tables.pop(target.file_id, None)
        self._due.pop(target.file_id, None)
        detach_all_slices(target)
        for table in outputs:
            version.add_file(level, table)
        for piece in slices:
            # release() reports True when the last reference drops and the
            # frozen file is recycled — only then are its blocks dead.
            if self.frozen.release(piece.source):
                db.note_file_dropped(piece.source)
        db.engine_stats.merge_count += 1
        db.engine_stats.compaction_count += 1
        self.bump("merges")
        self.bump("slices_merged", len(slices))
        self.set_metric_gauge("threshold", self.threshold)
        self.set_metric_gauge("frozen_space_bytes", self.frozen.space_bytes)
        db.tracer.emit(
            EV_MERGE,
            target_file=target.file_id,
            level=level,
            slices=len(slices),
            outputs=len(outputs),
            target_bytes=target.data_size,
        )

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Cross-check policy bookkeeping (used by tests)."""
        self.frozen.check_invariants()
        for table in self._linked_tables.values():
            if not table.slice_links:
                raise CompactionError(
                    f"table {table.file_id} tracked as linked but has no links"
                )
            if not self._db.version.contains(table):
                raise CompactionError(
                    f"linked table {table.file_id} is not in the tree"
                )
        # Every frozen file's refcount must equal its live slice count.
        live_refs: dict[int, int] = {}
        for table in self._linked_tables.values():
            for piece in table.slice_links:
                live_refs[piece.source.file_id] = (
                    live_refs.get(piece.source.file_id, 0) + 1
                )
        for frozen_file in self.frozen.files():
            expected = live_refs.get(frozen_file.file_id, 0)
            if frozen_file.refcount != expected:
                raise CompactionError(
                    f"frozen file {frozen_file.file_id} refcount "
                    f"{frozen_file.refcount} != live slices {expected}"
                )
