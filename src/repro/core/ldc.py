"""LDC: Lower-level Driven Compaction (the paper's Algorithm 1).

LDC splits the traditional compaction into two phases:

**Link** (§III-B.1) — when level ``i`` overflows and an SSTable ``s_u`` is
selected, no data moves.  ``s_u`` is *frozen* (removed from the tree, placed
in the :class:`~repro.core.frozen.FrozenRegion` with a reference count) and,
for each level ``i+1`` SSTable whose *responsibility range* holds some of
``s_u``'s keys, a :class:`~repro.core.slice.Slice` of ``s_u`` is linked onto
that lower file.  Linking is pure metadata: zero I/O.

**Merge** (§III-B.2) — when a lower-level SSTable has accumulated at least
``T_s`` SliceLinks, the actual I/O happens: the file and all its linked
slices are read, merge-sorted, and rewritten as new SSTables *in the same
level*; every source frozen file drops one reference and is recycled at
zero (Algorithm 1, lines 10–22).

.. deprecated::
    The implementation now lives in the design-space primitives
    (:mod:`repro.core.primitives`): LDC is the registered composition
    ``ldc`` = fanout trigger × ldc_unit selector × ldc_link_merge
    movement × leveled layout.  This class remains as a byte-identical
    shim; build new code from the registry (``DB(policy="ldc")``) or
    derive a spec with custom knobs:
    ``get_spec("ldc").derive(threshold=8, adaptive=True)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..lsm.compaction.composed import ComposedPolicy, warn_legacy_class
from ..lsm.compaction.spec import get_spec
from ..lsm.sstable import SSTable


class LDCPolicy(ComposedPolicy):
    """The paper's Lower-level Driven Compaction policy."""

    def __init__(
        self,
        threshold: Optional[int] = None,
        adaptive: Optional[bool] = None,
    ) -> None:
        """Create an LDC policy.

        Parameters
        ----------
        threshold:
            Fixed SliceLink threshold ``T_s``; defaults to the engine
            config's ``slicelink_threshold`` at attach time.
        adaptive:
            Enable the §III-B.4 self-adaptive controller; defaults to the
            engine config's ``adaptive_threshold`` flag.
        """
        warn_legacy_class("LDCPolicy", "ldc")
        spec = get_spec("ldc")
        overrides = {}
        if threshold is not None:
            overrides["threshold"] = threshold
        if adaptive is not None:
            overrides["adaptive"] = adaptive
        if overrides:
            spec = spec.derive(**overrides)
        super().__init__(spec)

    # Legacy introspection points, forwarded to the link/merge movement.
    @property
    def frozen(self):
        return self.movement.frozen

    @property
    def _adaptive(self):
        return self.movement._adaptive

    def due_for_merge(self, table: SSTable) -> bool:
        return self.movement.due_for_merge(table)

    def link(self, source: SSTable, level: int) -> None:
        self.movement.link(source, level)

    def merge(self, target: SSTable) -> None:
        self.movement.merge(target)

    def _slice_plan(
        self, source: SSTable, target_level: int
    ) -> List[Tuple[SSTable, Optional[bytes], Optional[bytes]]]:
        return self.movement._slice_plan(source, target_level)
