"""Slices and SliceLinks: the metadata of LDC's *link* phase (§III-B.1).

When an upper-level SSTable is selected for compaction, LDC does not move
any data.  It freezes the file and records, for each lower-level SSTable
with an overlapping responsibility range, a :class:`Slice` — a key-subrange
*view* of the frozen file.  A slice is pure in-memory metadata (the paper's
"light-weighted link action"); the bytes it denotes stay inside the frozen
file until the merge phase reads them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..lsm.keys import clamp_range, in_range
from ..lsm.record import KVRecord
from ..lsm.sstable import RecordView, SSTable
from ..errors import EngineError


class Slice:
    """A key-subrange view ``[lo, hi)`` of a frozen source SSTable.

    ``link_seq`` is a store-wide monotonically increasing link timestamp:
    slices attached to the same lower-level SSTable are consulted
    newest-link-first on reads, because later-linked data is newer
    (§III-B.3: "linked slices have higher priority for reading").
    """

    __slots__ = (
        "source",
        "lo",
        "hi",
        "link_seq",
        "size_bytes",
        "record_count",
        "_start",
        "_stop",
    )

    def __init__(
        self,
        source: SSTable,
        lo: Optional[bytes],
        hi: Optional[bytes],
        link_seq: int,
    ) -> None:
        if not source.frozen:
            raise EngineError(
                f"slices may only view frozen files; {source.file_id} is active"
            )
        self.source = source
        self.lo = lo
        self.hi = hi
        self.link_seq = link_seq
        # The source is immutable, so the slice's index window is fixed at
        # construction: cache it once instead of re-bisecting the key
        # column on every records()/size query.
        start, stop = source._index_range(lo, hi)
        self._start = start
        self._stop = stop
        #: Cached logical size of the slice — this is the quantity that
        #: accumulates toward the SliceLink threshold T_s.
        if stop > start:
            prefix = source._size_prefix
            self.size_bytes = prefix[stop] - prefix[start]
            self.record_count = stop - start
        else:
            self.size_bytes = 0
            self.record_count = 0

    # ------------------------------------------------------------------
    def covers_key(self, key: bytes) -> bool:
        return in_range(key, self.lo, self.hi)

    def get(self, key: bytes) -> Optional[KVRecord]:
        """Point lookup inside the slice (None outside its range)."""
        if not self.covers_key(key):
            return None
        return self.source.get(key)

    def records(self) -> Sequence[KVRecord]:
        """All records this slice denotes, key-sorted."""
        return RecordView(self.source._records, self._start, self._stop)

    def columns_window(self) -> tuple:
        """The slice as a columnar merge window over its source's columns.

        Same shape as :meth:`~repro.lsm.sstable.SSTable.columns_window`
        but bounded to the slice's cached ``[start, stop)`` index window —
        the merge input representation of LDC's link/merge fast path (no
        re-bisect, no per-record decode).
        """
        source = self.source
        return (
            source._keys,
            source._records,
            source.seqs,
            source._sizes,
            self._start,
            self._stop,
        )

    def records_in_range(
        self, lo: Optional[bytes], hi: Optional[bytes]
    ) -> Sequence[KVRecord]:
        """Records in the intersection of the slice with ``[lo, hi)``."""
        clamped_lo, clamped_hi = clamp_range(self.lo, self.hi, lo, hi)
        return self.source.records_in_range(clamped_lo, clamped_hi)

    # ------------------------------------------------------------------
    # I/O cost queries: a slice read touches only the source blocks that
    # overlap the slice range — the saving over UDC's whole-file reads.
    # ------------------------------------------------------------------
    def read_block_bytes(self) -> int:
        """Device bytes to load the whole slice during a merge."""
        return self.source.block_bytes_in_range(self.lo, self.hi)

    def point_read_block_bytes(self, key: bytes) -> int:
        """Device bytes to check ``key`` inside this slice (one block)."""
        if not self.covers_key(key):
            return 0
        return self.source.block_bytes_for_key(key)

    def scan_block_bytes(self, lo: Optional[bytes], hi: Optional[bytes]) -> int:
        """Device bytes a scan over ``[lo, hi)`` reads from this slice."""
        clamped_lo, clamped_hi = clamp_range(self.lo, self.hi, lo, hi)
        return self.source.block_bytes_in_range(clamped_lo, clamped_hi)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Slice(src={self.source.file_id}, lo={self.lo!r}, hi={self.hi!r}, "
            f"bytes={self.size_bytes}, link_seq={self.link_seq})"
        )


def attach_slice(target: SSTable, piece: Slice) -> None:
    """Record a SliceLink: ``piece`` now belongs to lower-level ``target``."""
    if target.frozen:
        raise EngineError(
            f"cannot link onto frozen file {target.file_id}; links target "
            f"active lower-level SSTables"
        )
    target.slice_links.append(piece)
    target._links_newest = None
    target.linked_bytes += piece.size_bytes


def detach_all_slices(target: SSTable) -> List[Slice]:
    """Remove and return every SliceLink of ``target`` (merge consumed them)."""
    detached = target.slice_links
    target.slice_links = []
    target._links_newest = None
    target.linked_bytes = 0
    return detached


def slices_newest_first(target: SSTable) -> List[Slice]:
    """Slices of ``target`` in read-priority order (latest link first).

    Returns a fresh list; the cached read-path view stays private to the
    SSTable (see :meth:`~repro.lsm.sstable.SSTable.links_newest_first`).
    """
    return list(target.links_newest_first())
