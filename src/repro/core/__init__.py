"""The paper's primary contribution: Lower-level Driven Compaction.

* :class:`~repro.core.ldc.LDCPolicy` — the link & merge compaction policy
  (Algorithm 1);
* :class:`~repro.core.slice.Slice` — key-subrange views of frozen files;
* :class:`~repro.core.frozen.FrozenRegion` — refcounted frozen storage;
* :class:`~repro.core.adaptive.AdaptiveThreshold` — the self-tuning
  SliceLink threshold of §III-B.4;
* :mod:`~repro.core.primitives` — LDC as design-space primitives: the
  ``ldc_unit`` selector and the ``ldc_link_merge`` movement behind the
  registered ``ldc`` composition.
"""

from .adaptive import AdaptiveThreshold
from .frozen import FrozenRegion
from .ldc import LDCPolicy
from .primitives import LDCLinkMergeMovement, LDCUnitSelector
from .slice import Slice, attach_slice, slices_newest_first

__all__ = [
    "LDCPolicy",
    "LDCUnitSelector",
    "LDCLinkMergeMovement",
    "Slice",
    "attach_slice",
    "slices_newest_first",
    "FrozenRegion",
    "AdaptiveThreshold",
]
