"""The frozen region: reference-counted storage for linked files (§III-B).

When LDC links an upper-level SSTable down, the file leaves the LSM-tree
("breaks away from the normal management") and enters the *frozen region*.
Its reference count equals the number of live slices cut from it; every
merge that consumes a slice decrements the count, and a file whose count
reaches zero is recycled (its space reclaimed).  Until then the file may
hold *useless* slices — ranges already merged down — which is the temporary
space overhead the paper bounds at ≤25% worst-case and measures at
3.37–10.0% (Fig. 15).
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..errors import EngineError
from ..lsm.sstable import SSTable


class FrozenRegion:
    """Refcounted set of frozen SSTables awaiting slice consumption."""

    def __init__(self) -> None:
        self._files: Dict[int, SSTable] = {}
        self._space_bytes = 0
        self.total_frozen_ever = 0
        self.total_recycled = 0

    # ------------------------------------------------------------------
    def freeze(self, table: SSTable, references: int) -> None:
        """Move ``table`` into the frozen region with ``references`` slices."""
        if references <= 0:
            raise EngineError("a file must be frozen with at least one reference")
        if table.file_id in self._files:
            raise EngineError(f"file {table.file_id} is already frozen")
        if table.slice_links:
            raise EngineError(
                f"file {table.file_id} still has SliceLinks and cannot be "
                f"frozen (paper rule §III-D)"
            )
        table.frozen = True
        table.refcount = references
        self._files[table.file_id] = table
        self._space_bytes += table.data_size
        self.total_frozen_ever += 1

    def release(self, table: SSTable) -> bool:
        """Drop one reference; recycle and return True at zero."""
        if table.file_id not in self._files:
            raise EngineError(f"file {table.file_id} is not frozen")
        if table.refcount <= 0:
            raise EngineError(f"file {table.file_id} refcount underflow")
        table.refcount -= 1
        if table.refcount == 0:
            del self._files[table.file_id]
            self._space_bytes -= table.data_size
            table.frozen = False
            self.total_recycled += 1
            return True
        return False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, table: SSTable) -> bool:
        return table.file_id in self._files

    def files(self) -> Iterable[SSTable]:
        return self._files.values()

    @property
    def space_bytes(self) -> int:
        """Bytes held by frozen files not yet recycled (Fig. 15 overhead).

        The whole file is counted even when some of its slices have already
        been merged — LDC's delayed garbage collection keeps the file until
        the last slice is consumed.
        """
        return self._space_bytes

    def check_invariants(self) -> None:
        """Every frozen file must have a positive refcount and frozen flag."""
        actual = 0
        for table in self._files.values():
            if not table.frozen:
                raise EngineError(f"file {table.file_id} in region but not frozen")
            if table.refcount <= 0:
                raise EngineError(f"file {table.file_id} frozen with refcount 0")
            actual += table.data_size
        if actual != self._space_bytes:
            raise EngineError(
                f"frozen space counter {self._space_bytes} != actual {actual}"
            )
