"""Self-adaptive SliceLink threshold (§III-B.4).

The SliceLink threshold ``T_s`` trades write amplification against read
cost: a large threshold accumulates more upper-level data per merge (fewer
extra I/Os, better writes) but leaves more linked slices for reads to
check.  The paper prescribes tuning ``T_s`` to the workload's read/write
mix: small for read-dominated workloads, large for write-dominated ones,
with the 50/50 optimum at roughly the fan-out (Fig. 12a).

The controller tracks the write ratio with an exponential moving average
and maps it linearly so that:

* write ratio 0.0 (read-only)  -> ``T_s = 1`` (merge almost immediately);
* write ratio 0.5 (balanced)   -> ``T_s = fan_out`` (the paper's optimum);
* write ratio 1.0 (write-only) -> ``T_s = 2 * fan_out``.
"""

from __future__ import annotations

from ..errors import ConfigError


class AdaptiveThreshold:
    """EWMA-driven controller for LDC's SliceLink threshold ``T_s``."""

    def __init__(
        self,
        fan_out: int,
        initial_write_ratio: float = 0.5,
        smoothing: float = 0.02,
        update_every: int = 256,
    ) -> None:
        if fan_out < 2:
            raise ConfigError("fan_out must be at least 2")
        if not 0 <= initial_write_ratio <= 1:
            raise ConfigError("initial_write_ratio must lie in [0, 1]")
        if not 0 < smoothing <= 1:
            raise ConfigError("smoothing must lie in (0, 1]")
        if update_every <= 0:
            raise ConfigError("update_every must be positive")
        self._fan_out = fan_out
        self._ratio = initial_write_ratio
        self._smoothing = smoothing
        self._update_every = update_every
        self._pending_ops = 0
        self._pending_writes = 0
        self._threshold = self._map(initial_write_ratio)

    def _map(self, write_ratio: float) -> int:
        return max(1, round(2 * self._fan_out * write_ratio))

    # ------------------------------------------------------------------
    def observe(self, is_write: bool) -> None:
        """Record one user operation; refresh ``T_s`` every batch."""
        self._pending_ops += 1
        if is_write:
            self._pending_writes += 1
        if self._pending_ops >= self._update_every:
            batch_ratio = self._pending_writes / self._pending_ops
            self._ratio += self._smoothing * (batch_ratio - self._ratio)
            self._threshold = self._map(self._ratio)
            self._pending_ops = 0
            self._pending_writes = 0

    @property
    def threshold(self) -> int:
        """Current ``T_s``."""
        return self._threshold

    @property
    def write_ratio(self) -> float:
        """Smoothed estimate of the workload's write fraction."""
        return self._ratio

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AdaptiveThreshold(T_s={self._threshold}, "
            f"write_ratio={self._ratio:.3f})"
        )
