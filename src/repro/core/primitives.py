"""LDC's design-space primitives: slice-unit selection and link/absorb.

The paper's Lower-level Driven Compaction decomposes onto the
:mod:`repro.lsm.compaction.primitives` axes as

* trigger — the ordinary ``fanout`` trigger (LDC changes *how* data
  moves, not when a level is over capacity);
* selector — :class:`LDCUnitSelector` (``"ldc_unit"``): the slice
  granularity, picking either a link-free source file to freeze and
  slice (Algorithm 1's link phase) or, when every file of the level
  already holds links, the most-linked victim to merge;
* movement — :class:`LDCLinkMergeMovement` (``"ldc_link_merge"``): the
  zero-I/O link phase, the lower-level driven merge phase, the adaptive
  threshold controller and the frozen-region space cap.

All policy state (frozen region, link bookkeeping, due set, adaptive
controller) lives in the movement — it survives crash recovery with the
policy instance, exactly like the legacy monolithic ``LDCPolicy``.
The code is the legacy implementation verbatim, re-homed; the golden
and differential suites pin byte-identity.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .adaptive import AdaptiveThreshold
from .frozen import FrozenRegion
from .slice import Slice, attach_slice, detach_all_slices
from ..errors import CompactionError
from ..lsm.compaction.columnar import merge_windows
from ..lsm.compaction.primitives import (
    CandidateSelector,
    DataMovement,
    expand_level0,
    register_primitive,
)
from ..lsm.keys import key_successor
from ..lsm.sstable import SSTable
from ..obs.events import EV_LINK, EV_MERGE, EV_TRIVIAL_MOVE
from ..ssd.metrics import COMPACTION_READ

#: Tagged unit kinds the selector hands to the movement.
LINK_SOURCE = "source"
MERGE_VICTIM = "victim"


@register_primitive("selector", "ldc_unit")
class LDCUnitSelector(CandidateSelector):
    """LDC's compaction unit: a link source, or a merge victim.

    Returns ``(kind, table)`` where ``kind`` is :data:`LINK_SOURCE` for
    a link-free file chosen round-robin (oldest-first at Level 0), or
    :data:`MERGE_VICTIM` when every file of the level already holds
    SliceLinks (§III-D: linked files cannot be link sources) — the
    most-linked one merges so its outputs become link-free.
    """

    CANDIDATE = "ldc_unit"
    REQUIRES_SORTED = True

    def select(self, level: int, seed: Optional[SSTable] = None):
        source = self._pick_link_source(level)
        if source is None:
            victim = max(
                self.db.version.files(level),
                key=lambda table: len(table.slice_links),
            )
            return (MERGE_VICTIM, victim)
        return (LINK_SOURCE, source)

    def _pick_link_source(self, level: int) -> Optional[SSTable]:
        """Round-robin over the level's link-free files (None if all linked).

        Level 0 always picks the *oldest* file: Level-0 files overlap, and
        freezing strictly oldest-first guarantees that later-linked slices
        always carry newer data than earlier-linked ones, which the read
        path's newest-link-first priority relies on.
        """
        version = self.db.version
        candidates = [
            table for table in version.files(level) if not table.slice_links
        ]
        if not candidates:
            return None
        if level == 0:
            return min(candidates, key=lambda table: table.file_id)
        pointer = version.compact_pointer.get(level)
        if pointer is not None:
            for table in sorted(candidates, key=lambda t: t.min_key):
                if table.max_key > pointer:
                    return table
        return min(candidates, key=lambda table: table.min_key)


@register_primitive("movement", "ldc_link_merge")
class LDCLinkMergeMovement(DataMovement):
    """The paper's link & absorb movement (Algorithm 1).

    **Link** (lines 1-9, zero I/O): freeze the source, slice it over the
    responsibility ranges of the next level, attach the SliceLinks.
    **Merge** (lines 10-22, the actual I/O): once a lower-level table's
    links are due, read it with its slices, merge-sort, rewrite in the
    same level, release frozen references.

    Urgent rounds (due merges, frozen-space pressure) preempt the
    trigger, and ``zero_io_batching`` lets several free links batch into
    one ``compact_one`` round — together reproducing the legacy
    ``LDCPolicy.compact_one`` priority loop exactly.
    """

    PARAMS = ("threshold", "adaptive")
    ACCEPTS = ("ldc_unit",)
    REQUIRES_SORTED = True
    zero_io_batching = True

    def __init__(
        self,
        threshold: Optional[int] = None,
        adaptive: Optional[bool] = None,
    ) -> None:
        super().__init__()
        self._threshold_override = threshold
        self._adaptive_override = adaptive
        self._fixed_threshold = 0
        self._adaptive: Optional[AdaptiveThreshold] = None
        self.frozen = FrozenRegion()
        self._link_seq = 0
        #: Active lower-level tables currently holding at least one slice,
        #: keyed by file id (merge-trigger scan set).
        self._linked_tables: dict[int, SSTable] = {}
        #: Subset of linked tables already past the merge trigger, filled
        #: at link time so the per-operation check is O(1).
        self._due: dict[int, SSTable] = {}
        self._last_threshold: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle / hooks
    # ------------------------------------------------------------------
    def attach(self, policy) -> None:
        super().attach(policy)
        config = self.db.config
        self._fixed_threshold = (
            self._threshold_override
            if self._threshold_override is not None
            else config.slicelink_threshold
        )
        use_adaptive = (
            self._adaptive_override
            if self._adaptive_override is not None
            else config.adaptive_threshold
        )
        if use_adaptive:
            self._adaptive = AdaptiveThreshold(config.fan_out)
        # With a fixed threshold this movement's decisions depend only on
        # tree/frozen structure, so the engine's idle gate may cache a
        # "no maintenance due" verdict between structural changes.  The
        # adaptive controller shifts T_s with the op mix, so every
        # operation must re-arm the maintenance poll.
        self.observes_operations = self._adaptive is not None

    @property
    def threshold(self) -> int:
        """Current SliceLink threshold ``T_s``."""
        if self._adaptive is not None:
            return self._adaptive.threshold
        return self._fixed_threshold

    def on_operation(self, is_write: bool) -> None:
        if self._adaptive is not None:
            self._adaptive.observe(is_write)

    def extra_space_bytes(self) -> int:
        return self.frozen.space_bytes

    # ------------------------------------------------------------------
    # Round protocol
    # ------------------------------------------------------------------
    def urgent_round(self) -> bool:
        """Priority work ahead of the trigger: due merges, space caps."""
        if self._merge_over_threshold():
            return True
        return self._enforce_frozen_space_limit()

    def execute(self, level: int, candidate) -> bool:
        """One action against an over-capacity level.

        Returns True when the action performed I/O (a merge), False for
        zero-I/O metadata actions (a link or a trivial move).
        """
        kind, table = candidate
        if kind == MERGE_VICTIM:
            self.merge(table)
            return True
        version = self.db.version
        version.advance_compact_pointer(level, table)
        targets = version.files(level + 1)
        if not targets:
            return self._descend_into_empty_level(level, table)
        self.link(table, level)
        return False

    def due_for_merge(self, table: SSTable) -> bool:
        """Has ``table`` accumulated enough linked data to merge?

        The paper triggers the merge "when a lower-level SSTable has
        accumulated nearly the same amount of data as itself" and exposes
        the SliceLink threshold ``T_s`` as the knob, with ``T_s = fan_out``
        the balanced optimum (each slice is ~1/fan_out of a file, so
        ``fan_out`` slices equal one file).  In a simulated tree whose
        level-size ratios are not yet at steady state, slice sizes deviate
        from 1/fan_out, so we apply the *data-amount* form directly and
        scale it by the knob: merge once

            linked_bytes >= (T_s / fan_out) * file_bytes.

        At ``T_s = fan_out`` this is exactly the paper's "same amount of
        data" condition; smaller thresholds merge earlier (less slice
        accumulation, more extra I/O), larger ones later (less write
        amplification, more fragments to read) — precisely the Fig. 12a/d
        trade-off.  A slice-count backstop (4x the nominal count) bounds
        metadata growth when individual slices are tiny.
        """
        if not table.slice_links:
            return False
        ratio = self.threshold / self.db.config.fan_out
        if table.linked_bytes >= ratio * table.data_size:
            return True
        return len(table.slice_links) >= 4 * max(1, self.threshold)

    def _merge_over_threshold(self) -> bool:
        """Merge one table whose accumulated SliceLinks have reached T_s."""
        threshold = self.threshold
        if self._last_threshold is not None and threshold < self._last_threshold:
            # The adaptive controller lowered T_s: tables that were below
            # the old trigger may be due now, so refresh the due set.
            for table in self._linked_tables.values():
                if self.due_for_merge(table):
                    self._due[table.file_id] = table
        self._last_threshold = threshold
        while self._due:
            file_id, table = next(iter(self._due.items()))
            del self._due[file_id]
            # Entries can go stale if T_s rose since they were queued.
            if file_id in self._linked_tables and self.due_for_merge(table):
                self.merge(table)
                return True
        return False

    def _enforce_frozen_space_limit(self) -> bool:
        """Force a merge when the frozen region grows past its cap (§III-D)."""
        db = self.db
        limit = db.config.frozen_space_limit_ratio * max(
            1, db.version.total_data_size()
        )
        if self.frozen.space_bytes <= limit or not self._linked_tables:
            return False
        victim = max(
            self._linked_tables.values(), key=lambda table: table.linked_bytes
        )
        db.engine_stats.forced_merges += 1
        self.policy.bump("forced_merges")
        self.merge(victim)
        return True

    def _descend_into_empty_level(self, level: int, source: SSTable) -> bool:
        """Move data into an empty next level (bootstrap path).

        With nothing below there is nothing to *drive* a lower-level
        compaction, so LDC behaves like LevelDB here: trivially move the
        file when safe (zero I/O, returns False), otherwise merge the
        Level-0 overlapping set down (returns True).
        """
        policy = self.policy
        db = self.db
        version = db.version
        if level != 0 or self._alone_in_level0(source):
            version.remove_file(level, source)
            version.add_file(level + 1, source)
            db.engine_stats.trivial_moves += 1
            policy.bump("trivial_moves")
            db.tracer.emit(
                EV_TRIVIAL_MOVE, policy=policy.name, file_id=source.file_id,
                from_level=level, to_level=level + 1,
            )
            return False
        inputs = expand_level0(version, source)
        drop = policy.can_drop_tombstones(level + 1)
        outputs = policy.merge_tables(inputs, drop_deletes=drop)
        for table in inputs:
            version.remove_file(0, table)
            db.note_file_dropped(table)
        for table in outputs:
            version.add_file(1, table)
        db.engine_stats.compaction_count += 1
        policy.bump("bootstrap_compactions")
        return True

    def _alone_in_level0(self, table: SSTable) -> bool:
        overlapping = self.db.version.overlapping(
            0, table.min_key, key_successor(table.max_key)
        )
        return len(overlapping) == 1

    # ------------------------------------------------------------------
    # Phase 1: link (Algorithm 1, lines 1-9) — zero I/O
    # ------------------------------------------------------------------
    def link(self, source: SSTable, level: int) -> None:
        """Freeze ``source`` and link its slices onto level ``level+1``."""
        policy = self.policy
        db = self.db
        version = db.version
        if source.slice_links:
            raise CompactionError(
                f"file {source.file_id} holds SliceLinks and cannot be linked"
            )
        plan = self._slice_plan(source, level + 1)
        if not plan:
            raise CompactionError(
                f"no responsibility targets found for file {source.file_id}; "
                f"level {level + 1} must be non-empty to drive a link"
            )
        version.remove_file(level, source)
        self.frozen.freeze(source, references=len(plan))
        for target, lo, hi in plan:
            self._link_seq += 1
            piece = Slice(source, lo, hi, self._link_seq)
            attach_slice(target, piece)
            version.note_linked_bytes(level + 1, piece.size_bytes)
            self._linked_tables[target.file_id] = target
            if self.due_for_merge(target):
                self._due[target.file_id] = target
        db.engine_stats.link_count += 1
        policy.bump("links")
        policy.bump("slices_created", len(plan))
        policy.set_metric_gauge("threshold", self.threshold)
        policy.set_metric_gauge("frozen_space_bytes", self.frozen.space_bytes)
        db.tracer.emit(
            EV_LINK,
            source_file=source.file_id,
            from_level=level,
            to_level=level + 1,
            slices=len(plan),
            frozen_bytes=source.data_size,
        )
        # Algorithm 1 lines 8-9 trigger the merge of any target now at the
        # threshold; the round loop's urgent priority performs it on the
        # next round, which is equivalent and keeps "one I/O unit per
        # round".

    def _slice_plan(
        self, source: SSTable, target_level: int
    ) -> List[Tuple[SSTable, Optional[bytes], Optional[bytes]]]:
        """Partition ``source`` over the responsibility ranges of a level.

        Returns ``(target_file, lo, hi)`` triples (half-open ranges) for
        every lower-level file that owns at least one of the source's keys.
        The ranges tile the whole key space, so every source key is
        assigned to exactly one target.
        """
        files = self.db.version.files(target_level)
        plan: List[Tuple[SSTable, Optional[bytes], Optional[bytes]]] = []
        previous_hi: Optional[bytes] = None
        for index, target in enumerate(files):
            lo = previous_hi
            is_last = index == len(files) - 1
            hi = None if is_last else key_successor(target.max_key)
            previous_hi = hi
            if source.count_in_range(lo, hi) > 0:
                plan.append((target, lo, hi))
        return plan

    # ------------------------------------------------------------------
    # Phase 2: merge (Algorithm 1, lines 10-22) — the actual I/O
    # ------------------------------------------------------------------
    def merge(self, target: SSTable) -> None:
        """Lower-level driven merge of ``target`` with its linked slices."""
        policy = self.policy
        db = self.db
        version = db.version
        slices = list(target.slice_links)
        if not slices:
            raise CompactionError(
                f"file {target.file_id} has no SliceLinks to merge"
            )
        level = version.level_of(target)

        # Load the lower file in full and each slice's overlapping blocks.
        if db._faulty:
            # Per-read loop so CRC verification interleaves with the
            # charges, aborting before later inputs are read.
            db.device.read(target.data_size, COMPACTION_READ, sequential=True)
            db._verify_block_read(target, range(target.num_blocks))
            for piece in slices:
                db.device.read(
                    piece.read_block_bytes(), COMPACTION_READ, sequential=True
                )
                db._verify_block_read(
                    piece.source,
                    [b for b, _ in piece.source.blocks_in_range(piece.lo, piece.hi)],
                )
        else:
            run_sizes = [target.data_size]
            run_sizes.extend(piece.read_block_bytes() for piece in slices)
            db.device.read_runs(run_sizes, COMPACTION_READ, sequential=True)

        # The slices' cached index windows over their frozen sources *are*
        # the merge inputs — no re-bisect, no record materialisation.
        windows = [target.columns_window()]
        windows.extend(piece.columns_window() for piece in slices)
        drop = policy.can_drop_tombstones(level)
        merged = merge_windows(windows)
        outputs = policy.finish_merge(merged, drop_deletes=drop)

        version.remove_file(level, target)
        db.note_file_dropped(target)
        self._linked_tables.pop(target.file_id, None)
        self._due.pop(target.file_id, None)
        detach_all_slices(target)
        for table in outputs:
            version.add_file(level, table)
        for piece in slices:
            # release() reports True when the last reference drops and the
            # frozen file is recycled — only then are its blocks dead.
            if self.frozen.release(piece.source):
                db.note_file_dropped(piece.source)
        db.engine_stats.merge_count += 1
        db.engine_stats.compaction_count += 1
        policy.bump("merges")
        policy.bump("slices_merged", len(slices))
        policy.set_metric_gauge("threshold", self.threshold)
        policy.set_metric_gauge("frozen_space_bytes", self.frozen.space_bytes)
        db.tracer.emit(
            EV_MERGE,
            target_file=target.file_id,
            level=level,
            slices=len(slices),
            outputs=len(outputs),
            target_bytes=target.data_size,
        )

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Cross-check movement bookkeeping (used by tests)."""
        self.frozen.check_invariants()
        for table in self._linked_tables.values():
            if not table.slice_links:
                raise CompactionError(
                    f"table {table.file_id} tracked as linked but has no links"
                )
            if not self.db.version.contains(table):
                raise CompactionError(
                    f"linked table {table.file_id} is not in the tree"
                )
        # Every frozen file's refcount must equal its live slice count.
        live_refs: dict[int, int] = {}
        for table in self._linked_tables.values():
            for piece in table.slice_links:
                live_refs[piece.source.file_id] = (
                    live_refs.get(piece.source.file_id, 0) + 1
                )
        for frozen_file in self.frozen.files():
            expected = live_refs.get(frozen_file.file_id, 0)
            if frozen_file.refcount != expected:
                raise CompactionError(
                    f"frozen file {frozen_file.file_id} refcount "
                    f"{frozen_file.refcount} != live slices {expected}"
                )
