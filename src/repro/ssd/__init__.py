"""Simulated SSD substrate: virtual clock, device profiles, I/O accounting.

This package replaces the physical Memblaze Q520 PCIe SSD of the paper's
testbed with a deterministic virtual-time model (see DESIGN.md §1 for the
substitution argument).
"""

from .clock import SimClock
from .device import SimulatedSSD
from .flash import (
    WAL_STREAM_OWNER,
    DeviceConfig,
    FlashSpec,
    FlashTranslationLayer,
)
from .metrics import (
    ALL_CATEGORIES,
    COMPACTION_READ,
    COMPACTION_WRITE,
    FLUSH_WRITE,
    GC_READ,
    GC_WRITE,
    USER_READ,
    USER_SCAN,
    WAL_WRITE,
    CategoryStats,
    IOStats,
)
from .profile import (
    BALANCED_FLASH,
    ENTERPRISE_PCIE,
    HDD,
    PROFILES,
    SATA_SSD,
    SSDProfile,
    get_profile,
)

__all__ = [
    "SimClock",
    "SimulatedSSD",
    "IOStats",
    "CategoryStats",
    "SSDProfile",
    "get_profile",
    "PROFILES",
    "ENTERPRISE_PCIE",
    "SATA_SSD",
    "BALANCED_FLASH",
    "HDD",
    "ALL_CATEGORIES",
    "USER_READ",
    "USER_SCAN",
    "WAL_WRITE",
    "FLUSH_WRITE",
    "COMPACTION_READ",
    "COMPACTION_WRITE",
    "GC_READ",
    "GC_WRITE",
    "DeviceConfig",
    "FlashSpec",
    "FlashTranslationLayer",
    "WAL_STREAM_OWNER",
]
