"""The simulated SSD: converts engine I/O into virtual time and wear.

The engine performs *logical* I/O (real bytes move through Python data
structures); this device converts each logical transfer into a virtual-time
charge drawn from an :class:`~repro.ssd.profile.SSDProfile` and records it in
:class:`~repro.ssd.metrics.IOStats`.  This is the substitution documented in
DESIGN.md: the paper measured a Memblaze Q520, we measure a parameterised
model of one.

Service time of one request of ``n`` bytes::

    overhead * (sequential_discount if sequential else 1) + n / bandwidth

Reads and writes use their own overheads and bandwidths, preserving the
read/write asymmetry the paper's analysis builds on.

Observability: every charged transfer is recorded in the shared metrics
registry (under ``device.<direction>.<category>.*``) and, when a tracer
with sinks is attached, emitted as a ``device_read`` / ``device_write``
trace event.
"""

from __future__ import annotations

import warnings

from .clock import DeviceChannel, SimClock
from .flash import GC_WRITE, DeviceConfig, FlashSpec, FlashTranslationLayer
from .metrics import IOStats
from .profile import ENTERPRISE_PCIE, SSDProfile
from ..errors import DeviceError
from ..obs.events import EV_DEVICE_READ, EV_DEVICE_WRITE
from ..obs.registry import MetricsRegistry
from ..obs.tracer import Tracer


class SimulatedSSD:
    """A virtual-time flash device shared by one database instance.

    Fault injection: the engine is written against this interface, and
    :class:`~repro.faults.device.FaultyDevice` decorates an instance to
    inject crashes, corruption and transient errors.  The two hooks below
    (:attr:`injects_faults`, :meth:`consume_read_corruption`) exist so the
    engine's decode paths can stay fault-aware at near-zero cost when no
    faults are configured.

    Parameters
    ----------
    profile:
        Device performance parameters; defaults to the enterprise PCIe
        profile that mirrors the paper's testbed.  A
        :class:`~repro.ssd.flash.DeviceConfig` is also accepted and
        carries both the profile and an optional flash geometry — the
        form every ``profile=`` parameter up the stack forwards here.
    clock:
        The virtual clock to advance.  A fresh clock is created when omitted
        so standalone device tests need no setup.
    registry:
        The metrics registry backing the I/O counters; a private one is
        created when omitted.  The DB passes its shared registry so device
        counters appear in ``db.metrics()`` and reset with everything else.
    tracer:
        Event tracer for per-transfer ``device_read``/``device_write``
        events; an inert (sink-less) tracer is created when omitted.
    """

    #: True on devices that may inject faults (``FaultyDevice``).  The DB
    #: caches this flag so fault-free read paths skip the corruption check.
    injects_faults = False

    def __init__(
        self,
        profile: "SSDProfile | DeviceConfig" = ENTERPRISE_PCIE,
        clock: SimClock | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        flash: FlashSpec | None = None,
    ) -> None:
        if isinstance(profile, DeviceConfig):
            if flash is None:
                flash = profile.flash
            profile = profile.profile
        self.profile = profile
        self.clock = clock if clock is not None else SimClock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = IOStats(registry=self.registry)
        self.tracer = tracer if tracer is not None else Tracer(clock=self.clock)
        #: Optional flash layer (:mod:`repro.ssd.flash`); ``None`` keeps
        #: the device byte-identical to the flash-less simulator.
        self.flash: FlashTranslationLayer | None = (
            FlashTranslationLayer(flash, device=self) if flash is not None else None
        )
        #: Bandwidth arbiter attached by the compaction scheduler
        #: (:mod:`repro.sched`).  ``None`` by default: without a scheduler
        #: nothing else competes for the device and arbitration is skipped
        #: entirely, keeping the scheduler-off timing bit-identical.
        self.channel: DeviceChannel | None = None

    # ------------------------------------------------------------------
    # Cost queries (no side effects) — used by planners and the model layer.
    # ------------------------------------------------------------------
    def read_cost_us(self, nbytes: int, *, sequential: bool = False) -> float:
        """Service time of a read request without performing it."""
        self._check_size(nbytes)
        overhead = self.profile.read_overhead_us
        if sequential:
            overhead *= self.profile.sequential_discount
        return overhead + nbytes * self.profile.read_us_per_byte

    def write_cost_us(self, nbytes: int, *, sequential: bool = False) -> float:
        """Service time of a write request without performing it."""
        self._check_size(nbytes)
        overhead = self.profile.write_overhead_us
        if sequential:
            overhead *= self.profile.sequential_discount
        return overhead + nbytes * self.profile.write_us_per_byte

    # ------------------------------------------------------------------
    # Charged operations — advance the clock and update statistics.
    # ------------------------------------------------------------------
    def read(self, nbytes: int, category: str, *, sequential: bool = False) -> float:
        """Charge a read of ``nbytes`` to ``category``; return elapsed µs.

        With a :class:`~repro.ssd.clock.DeviceChannel` attached (scheduler
        on), a foreground request first waits out the channel's busy
        horizon — background compaction chunks in flight — and then
        occupies the device itself; the wait is recorded under
        ``sched.device_wait_us``.  During a clock capture the charge is
        diverted (the scheduler replays it later), so no arbitration
        happens here.
        """
        elapsed = self.read_cost_us(nbytes, sequential=sequential)
        self._charge(elapsed, nbytes)
        self.stats.record_read(category, nbytes, elapsed)
        if self.tracer.active:
            self.tracer.emit(
                EV_DEVICE_READ,
                category=category,
                nbytes=nbytes,
                elapsed_us=elapsed,
                sequential=sequential,
            )
        return elapsed

    def write(
        self,
        nbytes: int,
        category: str,
        *,
        sequential: bool = False,
        owner=None,
        stream: bool = False,
    ) -> float:
        """Charge a write of ``nbytes`` to ``category``; return elapsed µs.

        Arbitrates for the device channel exactly like :meth:`read`.

        With a flash layer attached, the write is first mapped into page
        programs tagged with ``owner`` (``stream=True`` appends into the
        owner's partial-page fill buffer — the WAL path); that mapping
        step may trigger garbage collection, whose relocation I/O is
        charged before this write's own service time.  GC's internal
        relocation writes (category ``gc_write``) skip the mapping step
        — the FTL programs those pages itself.
        """
        elapsed = self.write_cost_us(nbytes, sequential=sequential)
        flash = self.flash
        if flash is not None and category != GC_WRITE:
            flash.host_write(nbytes, category, owner=owner, stream=stream)
        self._charge(elapsed, nbytes)
        self.stats.record_write(category, nbytes, elapsed)
        if self.tracer.active:
            self.tracer.emit(
                EV_DEVICE_WRITE,
                category=category,
                nbytes=nbytes,
                elapsed_us=elapsed,
                sequential=sequential,
            )
        return elapsed

    def read_runs(
        self,
        run_sizes: "list[int]",
        category: str,
        *,
        sequential: bool = False,
    ) -> float:
        """Charge one read per block run; return the total elapsed µs.

        The batched compaction accounting path: each run is charged to the
        clock individually, in order, exactly as the equivalent sequence
        of :meth:`read` calls would be (so scheduler captures see the same
        items and the virtual timeline is bit-identical), but the metrics
        registry is updated once per batch through prebuilt keys
        (:meth:`~repro.ssd.metrics.IOStats.record_read_many`) instead of
        three dict round-trips per run.
        """
        profile = self.profile
        overhead = profile.read_overhead_us
        if sequential:
            overhead *= profile.sequential_discount
        per_byte = profile.read_us_per_byte
        charge = self._charge
        elapsed_runs: "list[float]" = []
        push = elapsed_runs.append
        for nbytes in run_sizes:
            if nbytes < 0:
                raise DeviceError(f"I/O size must be non-negative, got {nbytes}")
            elapsed = overhead + nbytes * per_byte
            charge(elapsed, nbytes)
            push(elapsed)
        self.stats.record_read_many(category, run_sizes, elapsed_runs)
        if self.tracer.active:
            for nbytes, elapsed in zip(run_sizes, elapsed_runs):
                self.tracer.emit(
                    EV_DEVICE_READ,
                    category=category,
                    nbytes=nbytes,
                    elapsed_us=elapsed,
                    sequential=sequential,
                )
        return sum(elapsed_runs)

    def _charge(self, elapsed: float, nbytes: int) -> None:
        """Advance the clock for one transfer, arbitrating when needed.

        The common (scheduler-off) case is a single ``advance_io`` call,
        identical in effect to the plain ``advance`` it replaces.
        """
        clock = self.clock
        channel = self.channel
        if channel is not None and not clock.capturing:
            wait = channel.busy_until_us - clock.now()
            if wait > 0:
                clock.advance(wait)
                self.registry.add("sched.device_wait_us", wait)
                self.registry.add("sched.device_waits", 1)
            clock.advance(elapsed)
            channel.occupy_until(clock.now())
        else:
            clock.advance_io(elapsed, nbytes)

    def trim(self, owner) -> None:
        """Invalidate every flash page tagged with ``owner``.

        The engine calls this when a tagged extent dies as a whole — an
        SSTable deleted after compaction, or the WAL reset after a
        flush.  Free on the plain (flash-less) device: dropped data
        costs nothing there, matching the pre-flash simulator exactly.
        """
        if self.flash is not None:
            self.flash.trim(owner)

    # ------------------------------------------------------------------
    # Fault-injection hooks (inert on the plain device)
    # ------------------------------------------------------------------
    def consume_read_corruption(self) -> int:
        """XOR mask the last read's bit flips applied to its block CRC.

        The plain device never corrupts, so this is always 0.  A
        :class:`~repro.faults.device.FaultyDevice` returns a non-zero mask
        exactly once per injected corruption; decode paths call this right
        after charging a read and verify the delivered checksum against
        the stored one, raising
        :class:`~repro.errors.CorruptionError` on mismatch.
        """
        return 0

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> IOStats:
        """Deprecated alias for :attr:`stats`.

        The unified entry point is ``db.metrics()``; for a live device view
        use :attr:`stats`.
        """
        warnings.warn(
            "SimulatedSSD.metrics is deprecated; use SimulatedSSD.stats "
            "for a live view or db.metrics() for a unified snapshot",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.stats

    @property
    def wear_bytes(self) -> int:
        """Total bytes physically written to flash (endurance proxy).

        With a flash layer attached this is the programmed-page total
        (host pages + GC relocations, whole-page granularity) — the
        quantity erase counts follow.  Without one it falls back to the
        host byte total, the historical proxy.
        """
        if self.flash is not None:
            return self.flash.bytes_programmed
        return self.stats.total_bytes_written

    @staticmethod
    def _check_size(nbytes: int) -> None:
        if nbytes < 0:
            raise DeviceError(f"I/O size must be non-negative, got {nbytes}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedSSD(profile={self.profile.name!r}, t={self.clock.now():.1f}us)"
