"""The simulated SSD: converts engine I/O into virtual time and wear.

The engine performs *logical* I/O (real bytes move through Python data
structures); this device converts each logical transfer into a virtual-time
charge drawn from an :class:`~repro.ssd.profile.SSDProfile` and records it in
:class:`~repro.ssd.metrics.IOStats`.  This is the substitution documented in
DESIGN.md: the paper measured a Memblaze Q520, we measure a parameterised
model of one.

Service time of one request of ``n`` bytes::

    overhead * (sequential_discount if sequential else 1) + n / bandwidth

Reads and writes use their own overheads and bandwidths, preserving the
read/write asymmetry the paper's analysis builds on.
"""

from __future__ import annotations

from .clock import SimClock
from .metrics import IOStats
from .profile import ENTERPRISE_PCIE, SSDProfile
from ..errors import DeviceError


class SimulatedSSD:
    """A virtual-time flash device shared by one database instance.

    Parameters
    ----------
    profile:
        Device performance parameters; defaults to the enterprise PCIe
        profile that mirrors the paper's testbed.
    clock:
        The virtual clock to advance.  A fresh clock is created when omitted
        so standalone device tests need no setup.
    """

    def __init__(self, profile: SSDProfile = ENTERPRISE_PCIE, clock: SimClock | None = None) -> None:
        self.profile = profile
        self.clock = clock if clock is not None else SimClock()
        self.stats = IOStats()

    # ------------------------------------------------------------------
    # Cost queries (no side effects) — used by planners and the model layer.
    # ------------------------------------------------------------------
    def read_cost_us(self, nbytes: int, *, sequential: bool = False) -> float:
        """Service time of a read request without performing it."""
        self._check_size(nbytes)
        overhead = self.profile.read_overhead_us
        if sequential:
            overhead *= self.profile.sequential_discount
        return overhead + nbytes * self.profile.read_us_per_byte

    def write_cost_us(self, nbytes: int, *, sequential: bool = False) -> float:
        """Service time of a write request without performing it."""
        self._check_size(nbytes)
        overhead = self.profile.write_overhead_us
        if sequential:
            overhead *= self.profile.sequential_discount
        return overhead + nbytes * self.profile.write_us_per_byte

    # ------------------------------------------------------------------
    # Charged operations — advance the clock and update statistics.
    # ------------------------------------------------------------------
    def read(self, nbytes: int, category: str, *, sequential: bool = False) -> float:
        """Charge a read of ``nbytes`` to ``category``; return elapsed µs."""
        elapsed = self.read_cost_us(nbytes, sequential=sequential)
        self.clock.advance(elapsed)
        self.stats.record_read(category, nbytes, elapsed)
        return elapsed

    def write(self, nbytes: int, category: str, *, sequential: bool = False) -> float:
        """Charge a write of ``nbytes`` to ``category``; return elapsed µs."""
        elapsed = self.write_cost_us(nbytes, sequential=sequential)
        self.clock.advance(elapsed)
        self.stats.record_write(category, nbytes, elapsed)
        return elapsed

    # ------------------------------------------------------------------
    @property
    def wear_bytes(self) -> int:
        """Total bytes physically written to flash (endurance proxy)."""
        return self.stats.total_bytes_written

    @staticmethod
    def _check_size(nbytes: int) -> None:
        if nbytes < 0:
            raise DeviceError(f"I/O size must be non-negative, got {nbytes}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedSSD(profile={self.profile.name!r}, t={self.clock.now():.1f}us)"
