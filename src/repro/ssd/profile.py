"""Named parameter presets for the simulated SSD.

The paper's evaluation ran on an enterprise-level PCIe SSD (Memblaze Q520)
whose defining property — shared by flash devices generally — is *asymmetric*
read/write performance: reads are roughly an order of magnitude faster than
sustained (random, GC-burdened) writes.  The device model only needs four
numbers per device: read/write bandwidth and read/write per-request overhead.

Bandwidths are expressed in MB/s.  Since 1 MB/s equals exactly 1 byte/µs,
``1.0 / bandwidth_mbps`` is the per-byte service time in microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class SSDProfile:
    """Performance parameters of a simulated storage device.

    Parameters
    ----------
    name:
        Human-readable identifier used in reports.
    read_bandwidth_mbps / write_bandwidth_mbps:
        Sustained transfer rates.  Flash devices are read-fast/write-slow;
        the paper's motivation (§I) rests on this asymmetry.
    read_overhead_us / write_overhead_us:
        Fixed per-request cost (command submission, flash access latency).
    sequential_discount:
        Multiplier applied to the per-request overhead for sequential
        accesses (large compaction reads/writes), in ``(0, 1]``.  Flash has
        far less of a sequential/random gap than disks, but large requests
        still amortise command overhead.
    """

    name: str
    read_bandwidth_mbps: float
    write_bandwidth_mbps: float
    read_overhead_us: float
    write_overhead_us: float
    sequential_discount: float = 0.2

    def __post_init__(self) -> None:
        for field_name in (
            "read_bandwidth_mbps",
            "write_bandwidth_mbps",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be positive")
        for field_name in ("read_overhead_us", "write_overhead_us"):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{field_name} must be non-negative")
        if not 0 < self.sequential_discount <= 1:
            raise ConfigError("sequential_discount must be in (0, 1]")

    @property
    def read_us_per_byte(self) -> float:
        """Transfer time per byte read, in microseconds."""
        return 1.0 / self.read_bandwidth_mbps

    @property
    def write_us_per_byte(self) -> float:
        """Transfer time per byte written, in microseconds."""
        return 1.0 / self.write_bandwidth_mbps

    @property
    def asymmetry(self) -> float:
        """Read-to-write bandwidth ratio (>1 means reads are faster)."""
        return self.read_bandwidth_mbps / self.write_bandwidth_mbps

    def scaled(self, *, write_bandwidth_mbps: float) -> "SSDProfile":
        """Return a copy with a different write bandwidth.

        Used by the device-asymmetry ablation bench, which sweeps the
        read/write ratio while holding everything else fixed.
        """
        return SSDProfile(
            name=f"{self.name}-w{write_bandwidth_mbps:g}",
            read_bandwidth_mbps=self.read_bandwidth_mbps,
            write_bandwidth_mbps=write_bandwidth_mbps,
            read_overhead_us=self.read_overhead_us,
            write_overhead_us=self.write_overhead_us,
            sequential_discount=self.sequential_discount,
        )


#: Enterprise PCIe SSD modelled after the paper's Memblaze Q520 testbed:
#: fast reads, roughly 8x slower sustained random writes.
ENTERPRISE_PCIE = SSDProfile(
    name="enterprise-pcie",
    read_bandwidth_mbps=2000.0,
    write_bandwidth_mbps=250.0,
    read_overhead_us=25.0,
    write_overhead_us=30.0,
)

#: Consumer SATA SSD: lower bandwidth, higher per-request overhead.
SATA_SSD = SSDProfile(
    name="sata-ssd",
    read_bandwidth_mbps=500.0,
    write_bandwidth_mbps=120.0,
    read_overhead_us=80.0,
    write_overhead_us=90.0,
)

#: Hypothetical device with symmetric read/write performance.  Used by the
#: asymmetry ablation: on such a device LDC's read-for-write trade buys less.
BALANCED_FLASH = SSDProfile(
    name="balanced-flash",
    read_bandwidth_mbps=500.0,
    write_bandwidth_mbps=500.0,
    read_overhead_us=50.0,
    write_overhead_us=50.0,
)

#: Spinning disk: symmetric bandwidth but enormous per-request (seek) cost,
#: mostly amortised away for sequential compaction I/O.
HDD = SSDProfile(
    name="hdd",
    read_bandwidth_mbps=150.0,
    write_bandwidth_mbps=150.0,
    read_overhead_us=8000.0,
    write_overhead_us=8000.0,
    sequential_discount=0.02,
)

PROFILES = {
    profile.name: profile
    for profile in (ENTERPRISE_PCIE, SATA_SSD, BALANCED_FLASH, HDD)
}


def get_profile(name: str) -> SSDProfile:
    """Look up a named profile, raising :class:`ConfigError` for unknowns."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ConfigError(f"unknown SSD profile {name!r}; known: {known}") from None
