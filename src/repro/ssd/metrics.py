"""I/O accounting for the simulated device.

Every read or write charged to the device carries a *category* describing
which engine activity issued it (user reads, WAL appends, memtable flushes,
compaction reads/writes, ...).  The per-category byte counts are what
regenerate the paper's compaction-efficiency results (Fig. 10c, Fig. 12d/e,
Fig. 14's I/O series) and the Table I time breakdown.

Since the observability redesign the counters live in the shared
:class:`~repro.obs.registry.MetricsRegistry` under
``device.<direction>.<category>.{ops,bytes,time_us}``;
:class:`CategoryStats` and :class:`IOStats` are thin views over that
namespace.  Their public surface is unchanged, and standalone construction
(``IOStats()``) owns a private registry so unit tests need no setup.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..obs.registry import MetricsRegistry

# Canonical I/O categories used across the engine.
USER_READ = "user_read"
USER_SCAN = "user_scan"
WAL_WRITE = "wal_write"
WAL_READ = "wal_read"
FLUSH_WRITE = "flush_write"
COMPACTION_READ = "compaction_read"
COMPACTION_WRITE = "compaction_write"
# Device-internal GC relocation traffic (flash layer only; see
# repro.ssd.flash).  Defined here so the category roster stays in one
# place; repro.ssd.flash re-exports them as its canonical names.
GC_READ = "gc_read"
GC_WRITE = "gc_write"

ALL_CATEGORIES: Tuple[str, ...] = (
    USER_READ,
    USER_SCAN,
    WAL_WRITE,
    WAL_READ,
    FLUSH_WRITE,
    COMPACTION_READ,
    COMPACTION_WRITE,
    GC_READ,
    GC_WRITE,
)

_PREFIX = "device"
_COMPACTION_READ_KEY = f"{_PREFIX}.read.{COMPACTION_READ}.bytes"
_COMPACTION_WRITE_KEY = f"{_PREFIX}.write.{COMPACTION_WRITE}.bytes"
_GC_WRITE_KEY = f"{_PREFIX}.write.{GC_WRITE}.bytes"


class CategoryStats:
    """View of one (category, direction) stream of I/O in the registry."""

    __slots__ = ("registry", "key", "_ops_key", "_bytes_key", "_time_key")

    def __init__(
        self,
        ops: int = 0,
        bytes: int = 0,
        time_us: float = 0.0,
        *,
        registry: Optional[MetricsRegistry] = None,
        key: str = "device.adhoc.uncategorized",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.key = key
        # record() runs once per simulated I/O; build the dotted counter
        # keys once instead of three f-strings per call.
        self._ops_key = f"{key}.ops"
        self._bytes_key = f"{key}.bytes"
        self._time_key = f"{key}.time_us"
        if ops:
            self.ops = ops
        if bytes:
            self.bytes = bytes
        if time_us:
            self.time_us = time_us

    @property
    def ops(self) -> int:
        return int(self.registry.counter(f"{self.key}.ops"))

    @ops.setter
    def ops(self, value: int) -> None:
        self.registry.set_counter(f"{self.key}.ops", int(value))

    @property
    def bytes(self) -> int:
        return int(self.registry.counter(f"{self.key}.bytes"))

    @bytes.setter
    def bytes(self, value: int) -> None:
        self.registry.set_counter(f"{self.key}.bytes", int(value))

    @property
    def time_us(self) -> float:
        return float(self.registry.counter(f"{self.key}.time_us"))

    @time_us.setter
    def time_us(self, value: float) -> None:
        self.registry.set_counter(f"{self.key}.time_us", float(value))

    def record(self, nbytes: int, elapsed_us: float) -> None:
        # Once per simulated I/O; bump the registry's counter dict
        # directly rather than paying three method calls (CategoryStats
        # is a designated view over the registry, see module docstring).
        counters = self.registry._counters
        counters[self._ops_key] = counters.get(self._ops_key, 0) + 1
        counters[self._bytes_key] = counters.get(self._bytes_key, 0) + nbytes
        counters[self._time_key] = counters.get(self._time_key, 0) + elapsed_us

    def record_many(
        self, run_sizes: "list[int]", elapsed_runs: "list[float]"
    ) -> None:
        """Record a batch of same-category I/Os with one counter update.

        Counter-identical to calling :meth:`record` once per run: ops and
        bytes are integer sums, and the float time counter is accumulated
        left-to-right over the individual elapsed values — replaying the
        exact (non-associative) addition order of the per-run path.
        """
        counters = self.registry._counters
        counters[self._ops_key] = counters.get(self._ops_key, 0) + len(run_sizes)
        counters[self._bytes_key] = (
            counters.get(self._bytes_key, 0) + sum(run_sizes)
        )
        time_total = counters.get(self._time_key, 0)
        for elapsed in elapsed_runs:
            time_total += elapsed
        counters[self._time_key] = time_total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CategoryStats(ops={self.ops}, bytes={self.bytes}, "
            f"time_us={self.time_us:.1f})"
        )


class IOStats:
    """Aggregated device-side statistics, split by direction and category."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.reads: Dict[str, CategoryStats] = {}
        self.writes: Dict[str, CategoryStats] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _stream(
        self, streams: Dict[str, CategoryStats], direction: str, category: str
    ) -> CategoryStats:
        stats = streams.get(category)
        if stats is None:
            stats = CategoryStats(
                registry=self.registry, key=f"{_PREFIX}.{direction}.{category}"
            )
            streams[category] = stats
        return stats

    def record_read(self, category: str, nbytes: int, elapsed_us: float) -> None:
        self._stream(self.reads, "read", category).record(nbytes, elapsed_us)

    def record_read_many(
        self, category: str, run_sizes: "list[int]", elapsed_runs: "list[float]"
    ) -> None:
        """Bulk-record a batch of reads (see CategoryStats.record_many)."""
        self._stream(self.reads, "read", category).record_many(
            run_sizes, elapsed_runs
        )

    def record_write(self, category: str, nbytes: int, elapsed_us: float) -> None:
        self._stream(self.writes, "write", category).record(nbytes, elapsed_us)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_bytes_read(self) -> int:
        return int(self.registry.sum_matching(f"{_PREFIX}.read.", ".bytes"))

    @property
    def total_bytes_written(self) -> int:
        """Total bytes physically written — the device *wear* counter.

        The paper argues LDC extends SSD lifetime by roughly halving
        compaction writes; this counter is the measured quantity.
        """
        return int(self.registry.sum_matching(f"{_PREFIX}.write.", ".bytes"))

    @property
    def total_time_us(self) -> float:
        return float(
            self.registry.sum_matching(f"{_PREFIX}.read.", ".time_us")
            + self.registry.sum_matching(f"{_PREFIX}.write.", ".time_us")
        )

    def bytes_read(self, category: str) -> int:
        return int(self.registry.counter(f"{_PREFIX}.read.{category}.bytes"))

    def bytes_written(self, category: str) -> int:
        return int(self.registry.counter(f"{_PREFIX}.write.{category}.bytes"))

    def time_us_read(self, category: str) -> float:
        return float(self.registry.counter(f"{_PREFIX}.read.{category}.time_us"))

    def time_us_written(self, category: str) -> float:
        return float(self.registry.counter(f"{_PREFIX}.write.{category}.time_us"))

    @property
    def compaction_bytes_read(self) -> int:
        # Prebuilt key: read before/after every maintenance round.
        return int(self.registry.counter(_COMPACTION_READ_KEY))

    @property
    def compaction_bytes_written(self) -> int:
        return int(self.registry.counter(_COMPACTION_WRITE_KEY))

    @property
    def compaction_bytes_total(self) -> int:
        """Total compaction traffic — the y-axis of the paper's Fig. 10c."""
        return self.compaction_bytes_read + self.compaction_bytes_written

    @property
    def host_bytes_written(self) -> int:
        """Bytes the *engine* wrote — total writes minus GC relocations.

        Identical to :attr:`total_bytes_written` on a flash-less device
        (no ``gc_write`` category ever appears); with the flash layer on
        it excludes device-internal relocation traffic so host-level WA
        keeps its historical meaning.
        """
        return self.total_bytes_written - int(self.registry.counter(_GC_WRITE_KEY))

    def write_amplification(self, user_bytes_written: int) -> float:
        """Host writes divided by logical user writes (Definition 2.6).

        This is *host* WA — device-internal GC relocations are excluded
        (they belong to device WA; end-to-end WA is the product, see
        ``MetricsSnapshot.total_write_amplification``).
        """
        if user_bytes_written <= 0:
            return 0.0
        return self.host_bytes_written / user_bytes_written

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Return a plain-dict view suitable for reports and assertions."""
        result: Dict[str, Dict[str, float]] = {}
        for direction, streams in (("read", self.reads), ("write", self.writes)):
            for category, stats in streams.items():
                result[f"{direction}:{category}"] = {
                    "ops": stats.ops,
                    "bytes": stats.bytes,
                    "time_us": stats.time_us,
                }
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mib = 1024.0 * 1024.0
        return (
            f"IOStats(read={self.total_bytes_read / mib:.1f}MiB, "
            f"written={self.total_bytes_written / mib:.1f}MiB)"
        )
