"""I/O accounting for the simulated device.

Every read or write charged to the device carries a *category* describing
which engine activity issued it (user reads, WAL appends, memtable flushes,
compaction reads/writes, ...).  The per-category byte counts are what
regenerate the paper's compaction-efficiency results (Fig. 10c, Fig. 12d/e,
Fig. 14's I/O series) and the Table I time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

# Canonical I/O categories used across the engine.
USER_READ = "user_read"
USER_SCAN = "user_scan"
WAL_WRITE = "wal_write"
FLUSH_WRITE = "flush_write"
COMPACTION_READ = "compaction_read"
COMPACTION_WRITE = "compaction_write"

ALL_CATEGORIES: Tuple[str, ...] = (
    USER_READ,
    USER_SCAN,
    WAL_WRITE,
    FLUSH_WRITE,
    COMPACTION_READ,
    COMPACTION_WRITE,
)


@dataclass
class CategoryStats:
    """Counters for one (category, direction) stream of I/O."""

    ops: int = 0
    bytes: int = 0
    time_us: float = 0.0

    def record(self, nbytes: int, elapsed_us: float) -> None:
        self.ops += 1
        self.bytes += nbytes
        self.time_us += elapsed_us


@dataclass
class IOStats:
    """Aggregated device-side statistics, split by direction and category."""

    reads: Dict[str, CategoryStats] = field(default_factory=dict)
    writes: Dict[str, CategoryStats] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_read(self, category: str, nbytes: int, elapsed_us: float) -> None:
        self.reads.setdefault(category, CategoryStats()).record(nbytes, elapsed_us)

    def record_write(self, category: str, nbytes: int, elapsed_us: float) -> None:
        self.writes.setdefault(category, CategoryStats()).record(nbytes, elapsed_us)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @staticmethod
    def _total(streams: Iterable[CategoryStats], attr: str) -> float:
        return sum(getattr(stats, attr) for stats in streams)

    @property
    def total_bytes_read(self) -> int:
        return int(self._total(self.reads.values(), "bytes"))

    @property
    def total_bytes_written(self) -> int:
        """Total bytes physically written — the device *wear* counter.

        The paper argues LDC extends SSD lifetime by roughly halving
        compaction writes; this counter is the measured quantity.
        """
        return int(self._total(self.writes.values(), "bytes"))

    @property
    def total_time_us(self) -> float:
        return self._total(self.reads.values(), "time_us") + self._total(
            self.writes.values(), "time_us"
        )

    def bytes_read(self, category: str) -> int:
        return self.reads.get(category, CategoryStats()).bytes

    def bytes_written(self, category: str) -> int:
        return self.writes.get(category, CategoryStats()).bytes

    def time_us_read(self, category: str) -> float:
        return self.reads.get(category, CategoryStats()).time_us

    def time_us_written(self, category: str) -> float:
        return self.writes.get(category, CategoryStats()).time_us

    @property
    def compaction_bytes_read(self) -> int:
        return self.bytes_read(COMPACTION_READ)

    @property
    def compaction_bytes_written(self) -> int:
        return self.bytes_written(COMPACTION_WRITE)

    @property
    def compaction_bytes_total(self) -> int:
        """Total compaction traffic — the y-axis of the paper's Fig. 10c."""
        return self.compaction_bytes_read + self.compaction_bytes_written

    def write_amplification(self, user_bytes_written: int) -> float:
        """Physical writes divided by logical user writes (Definition 2.6)."""
        if user_bytes_written <= 0:
            return 0.0
        return self.total_bytes_written / user_bytes_written

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Return a plain-dict view suitable for reports and assertions."""
        result: Dict[str, Dict[str, float]] = {}
        for direction, streams in (("read", self.reads), ("write", self.writes)):
            for category, stats in streams.items():
                result[f"{direction}:{category}"] = {
                    "ops": stats.ops,
                    "bytes": stats.bytes,
                    "time_us": stats.time_us,
                }
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mib = 1024.0 * 1024.0
        return (
            f"IOStats(read={self.total_bytes_read / mib:.1f}MiB, "
            f"written={self.total_bytes_written / mib:.1f}MiB)"
        )
