"""Virtual clock for the simulated storage stack.

The whole reproduction runs in *virtual time*: the engine never reads the
wall clock.  Instead, every I/O charged to the simulated SSD and every fixed
CPU cost advances a shared :class:`SimClock`.  Latencies and throughput are
then derived from virtual timestamps, which makes every experiment
deterministic and independent of the speed of the Python interpreter — the
substitution that lets a Python implementation reproduce the paper's
latency-oriented evaluation (see DESIGN.md §1).

Time is kept in **microseconds** as a float, matching the unit the paper
reports tail latencies in (e.g. "469.66 us").
"""

from __future__ import annotations

from ..errors import DeviceError


class SimClock:
    """A monotonically advancing virtual clock measured in microseconds.

    The clock only ever moves forward.  Components advance it by calling
    :meth:`advance`; observers read it with :meth:`now`.

    Example
    -------
    >>> clock = SimClock()
    >>> clock.advance(12.5)
    12.5
    >>> clock.now()
    12.5
    """

    __slots__ = ("_now_us",)

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise DeviceError(f"clock cannot start at negative time {start_us!r}")
        self._now_us = float(start_us)

    def now(self) -> float:
        """Return the current virtual time in microseconds."""
        return self._now_us

    def advance(self, delta_us: float) -> float:
        """Move the clock forward by ``delta_us`` and return the new time.

        Raises :class:`DeviceError` if asked to move backwards, which would
        indicate a bookkeeping bug in a caller.
        """
        if delta_us < 0:
            raise DeviceError(f"cannot advance clock by negative delta {delta_us!r}")
        self._now_us += delta_us
        return self._now_us

    def advance_to(self, timestamp_us: float) -> float:
        """Advance the clock to an absolute timestamp (no-op if in the past).

        Useful for modelling "wait until the ongoing compaction finishes":
        the waiter jumps to the completion timestamp if it is later than now.
        """
        if timestamp_us > self._now_us:
            self._now_us = timestamp_us
        return self._now_us

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now_us:.3f}us)"
