"""Virtual clock for the simulated storage stack.

The whole reproduction runs in *virtual time*: the engine never reads the
wall clock.  Instead, every I/O charged to the simulated SSD and every fixed
CPU cost advances a shared :class:`SimClock`.  Latencies and throughput are
then derived from virtual timestamps, which makes every experiment
deterministic and independent of the speed of the Python interpreter — the
substitution that lets a Python implementation reproduce the paper's
latency-oriented evaluation (see DESIGN.md §1).

Time is kept in **microseconds** as a float, matching the unit the paper
reports tail latencies in (e.g. "469.66 us").

Concurrency (``repro.sched``) builds on two additions here:

* **Capture mode** — between :meth:`SimClock.begin_capture` and
  :meth:`SimClock.end_capture` the clock freezes and every ``advance`` /
  ``advance_io`` is *diverted* into a buffer of ``(kind, duration, bytes)``
  items instead of moving time.  The scheduler runs one compaction round
  under capture: the round's logical effects (version-set mutations) apply
  immediately and atomically, while its time cost comes back as a list the
  scheduler replays later as block-granularity chunks on a background
  thread.  Outside capture both methods behave identically, so the default
  (scheduler-off) engine is bit-for-bit unchanged.
* :class:`DeviceChannel` — the arbitration point between concurrent
  requesters of the one simulated device.  It is a single ``busy_until_us``
  horizon: background chunks push it forward, and foreground I/O arriving
  before the horizon waits (the wait *is* the compaction interference the
  paper's Fig. 1 measures).
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import DeviceError

#: Capture-item kinds: device transfer time vs CPU time.  IO items occupy
#: both a background thread and the device channel when replayed; CPU items
#: occupy only the thread, so CPU work overlaps device work across threads.
CAPTURE_IO = "io"
CAPTURE_CPU = "cpu"

#: One captured time charge: ``(kind, duration_us, nbytes)`` where
#: ``nbytes`` is 0 for CPU items.
CaptureItem = Tuple[str, float, int]


class SimClock:
    """A monotonically advancing virtual clock measured in microseconds.

    The clock only ever moves forward.  Components advance it by calling
    :meth:`advance`; observers read it with :meth:`now`.

    Example
    -------
    >>> clock = SimClock()
    >>> clock.advance(12.5)
    12.5
    >>> clock.now()
    12.5
    """

    __slots__ = ("_now_us", "_capture")

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise DeviceError(f"clock cannot start at negative time {start_us!r}")
        self._now_us = float(start_us)
        self._capture: List[CaptureItem] | None = None

    def now(self) -> float:
        """Return the current virtual time in microseconds."""
        return self._now_us

    def advance(self, delta_us: float) -> float:
        """Move the clock forward by ``delta_us`` and return the new time.

        Raises :class:`DeviceError` if asked to move backwards, which would
        indicate a bookkeeping bug in a caller.

        During a capture (see :meth:`begin_capture`) the charge is diverted
        into the capture buffer as CPU time and the clock stays frozen.
        """
        if delta_us < 0:
            raise DeviceError(f"cannot advance clock by negative delta {delta_us!r}")
        if self._capture is not None:
            if delta_us:
                self._capture.append((CAPTURE_CPU, delta_us, 0))
            return self._now_us
        self._now_us += delta_us
        return self._now_us

    def advance_io(self, delta_us: float, nbytes: int) -> float:
        """Charge a device transfer of ``nbytes`` taking ``delta_us``.

        Identical to :meth:`advance` outside capture.  During capture the
        charge is tagged as IO and keeps its byte count, so the scheduler
        can split it into block-granularity chunks that contend for the
        :class:`DeviceChannel`.
        """
        if delta_us < 0:
            raise DeviceError(f"cannot advance clock by negative delta {delta_us!r}")
        if self._capture is not None:
            if delta_us:
                self._capture.append((CAPTURE_IO, delta_us, nbytes))
            return self._now_us
        self._now_us += delta_us
        return self._now_us

    def advance_to(self, timestamp_us: float) -> float:
        """Advance the clock to an absolute timestamp (no-op if in the past).

        Useful for modelling "wait until the ongoing compaction finishes":
        the waiter jumps to the completion timestamp if it is later than now.
        Meaningless (and therefore an error) during capture — deferred time
        has no absolute target.
        """
        if self._capture is not None:
            raise DeviceError("advance_to is not allowed during a clock capture")
        if timestamp_us > self._now_us:
            self._now_us = timestamp_us
        return self._now_us

    # ------------------------------------------------------------------
    # Capture mode (used by repro.sched)
    # ------------------------------------------------------------------
    @property
    def capturing(self) -> bool:
        """True while a capture is active (time charges are being diverted)."""
        return self._capture is not None

    def begin_capture(self) -> None:
        """Freeze the clock and start diverting charges into a buffer.

        Captures do not nest: a second ``begin_capture`` raises, because
        nested ownership of the diverted items would be ambiguous.
        """
        if self._capture is not None:
            raise DeviceError("clock capture already active")
        self._capture = []

    def end_capture(self) -> List[CaptureItem]:
        """Stop capturing and return the diverted ``(kind, us, bytes)`` items."""
        if self._capture is None:
            raise DeviceError("no clock capture active")
        items = self._capture
        self._capture = None
        return items

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now_us:.3f}us)"


class DeviceChannel:
    """Bandwidth arbiter of one simulated device shared by many requesters.

    The simulated SSD serves one transfer at a time; the channel records
    the virtual timestamp until which the device is occupied.  Background
    compaction chunks (``repro.sched``) extend the horizon as they replay;
    a foreground request arriving while the horizon is in the future first
    waits (``wait_us``) and then occupies the device itself.  With no
    scheduler attached the device has no channel and this class is never
    consulted — the zero-cost default.
    """

    __slots__ = ("busy_until_us",)

    def __init__(self) -> None:
        self.busy_until_us = 0.0

    def wait_us(self, now_us: float) -> float:
        """How long a request arriving at ``now_us`` must wait."""
        remaining = self.busy_until_us - now_us
        return remaining if remaining > 0 else 0.0

    def occupy_until(self, timestamp_us: float) -> None:
        """Extend the busy horizon to ``timestamp_us`` (never backwards)."""
        if timestamp_us > self.busy_until_us:
            self.busy_until_us = timestamp_us

    def release(self, now_us: float) -> None:
        """Drop any future occupancy (crash semantics: in-flight I/O dies)."""
        if self.busy_until_us > now_us:
            self.busy_until_us = now_us

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DeviceChannel(busy_until={self.busy_until_us:.3f}us)"
