"""Flash internals under the simulated device: pages, blocks, FTL, GC.

The plain :class:`~repro.ssd.device.SimulatedSSD` charges *host* traffic
only, so the repository measured host write amplification and merely
asserted the paper's device story.  This module models the layer below
the host interface — the part of a real SSD that turns "SSD-friendly"
host I/O into longer device lifetime:

* a **geometry** of pages grouped into erase blocks
  (:class:`FlashSpec`), with configurable over-provisioning;
* a page-mapping **FTL** (:class:`FlashTranslationLayer`): host writes
  are appended log-structured into the open block, the logical→physical
  table tracks every live page, and overwritten/deleted data is
  invalidated in place;
* **garbage collection** with pluggable victim selection (``greedy``
  picks the block with the most invalid pages; ``cost_benefit`` uses the
  classic age·(1−u)/2u score) that relocates live pages and erases the
  victim, charging the relocation I/O through the normal device
  accounting under the :data:`GC_READ`/:data:`GC_WRITE` categories;
* per-block **erase counts** — the endurance quantity the paper's
  lifetime argument is about.

The layer is strictly opt-in: ``DeviceConfig(flash=FlashSpec(...))``
switches it on, and with ``flash=None`` (the default) the device is
byte-identical to the flash-less simulator — pinned by the golden and
differential suites.

Ownership model
---------------
The engine's write sites do not address LBAs; they write immutable files
(SSTables) and an append-only WAL.  Writers therefore tag each write
with an *owner* (the SSTable ``file_id``, or :data:`WAL_STREAM_OWNER`
for the log) and the FTL tracks live pages per owner.  Data dies in two
ways only: a whole owner is dropped (``device.trim(owner)`` — an
SSTable deleted after compaction, or the WAL reset after a flush), or
GC relocates around it.  ``stream=True`` writes (the WAL) accumulate
sub-page appends in a per-owner fill buffer and program only whole
pages, modelling the device-side RAM buffer in front of the log; the
unprogrammed remainder is surfaced as the ``flash.stream_pending_bytes``
gauge.

Crash safety
------------
GC charges its relocation I/O through :attr:`FlashTranslationLayer.charger`
— the *outermost* device object, so a wrapping
:class:`~repro.faults.device.FaultyDevice` can crash inside a GC
relocation.  The mapping table is mutated only *after* the charges
succeed, and each relocated page's old mapping stays valid until the new
one is installed, so a crash at any charged I/O leaves the table
recoverable (verified by the crashtest oracle with flash enabled).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from .metrics import GC_READ, GC_WRITE
from .profile import ENTERPRISE_PCIE, SSDProfile
from ..errors import ConfigError, DeviceError

# GC relocation traffic is charged under the GC_READ/GC_WRITE categories
# (defined with the host categories in repro.ssd.metrics): relocations
# share the normal ``device.<dir>.<cat>.*`` accounting, and host-level
# write amplification subtracts ``gc_write`` bytes back out (see
# ``IOStats.write_amplification``).

#: Owner tag used by the WAL's streamed appends.
WAL_STREAM_OWNER = "wal-stream"

#: Owner tag for untagged writes (direct ``device.write`` calls without
#: an ``owner=``).  They are treated as live forever — fine for
#: experiments, but engine write sites always tag.
UNTAGGED_OWNER = "untagged"

# Registry keys (counters reset with the measurement window; gauges
# describe current device state and survive resets).
CTR_BYTES_PROGRAMMED = "flash.bytes_programmed"
CTR_PAGES_PROGRAMMED = "flash.pages_programmed"
CTR_HOST_PAGES = "flash.host_pages_programmed"
CTR_GC_PAGES = "flash.gc_pages_relocated"
CTR_ERASES = "flash.blocks_erased"
CTR_COLLECTIONS = "flash.gc_collections"
CTR_ERASE_TIME_US = "flash.erase_time_us"
GAUGE_MAX_ERASE = "flash.max_erase_count"
GAUGE_TOTAL_ERASE = "flash.total_erase_count"
GAUGE_STREAM_PENDING = "flash.stream_pending_bytes"
GAUGE_FREE_BLOCKS = "flash.free_blocks"
GAUGE_LIVE_PAGES = "flash.live_pages"

Owner = Hashable


@dataclass(frozen=True)
class FlashSpec:
    """Geometry and policy knobs of the simulated flash layer.

    ``logical_bytes`` is the advertised capacity; the physical array is
    ``logical_bytes * (1 + over_provisioning)`` rounded up to whole
    blocks, plus ``gc_reserve_blocks`` blocks GC may dip into when the
    free pool runs dry.  ``erase_us`` defaults to 0 so that runs without
    GC pressure charge exactly the host I/O time (pinned by the flash
    differential suite); set it to model erase latency explicitly.
    """

    page_bytes: int = 4096
    pages_per_block: int = 64
    logical_bytes: int = 64 * 1024 * 1024
    over_provisioning: float = 0.07
    gc_policy: str = "greedy"
    gc_reserve_blocks: int = 2
    erase_us: float = 0.0

    def __post_init__(self) -> None:
        if self.page_bytes <= 0:
            raise ConfigError(f"page_bytes must be positive, got {self.page_bytes}")
        if self.pages_per_block <= 0:
            raise ConfigError(
                f"pages_per_block must be positive, got {self.pages_per_block}"
            )
        if self.logical_bytes <= 0:
            raise ConfigError(
                f"logical_bytes must be positive, got {self.logical_bytes}"
            )
        if self.over_provisioning < 0:
            raise ConfigError(
                "over_provisioning must be non-negative, "
                f"got {self.over_provisioning}"
            )
        if self.gc_reserve_blocks < 1:
            raise ConfigError(
                f"gc_reserve_blocks must be >= 1, got {self.gc_reserve_blocks}"
            )
        if self.erase_us < 0:
            raise ConfigError(f"erase_us must be non-negative, got {self.erase_us}")
        if self.gc_policy not in ("greedy", "cost_benefit"):
            raise ConfigError(
                "gc_policy must be 'greedy' or 'cost_benefit', "
                f"got {self.gc_policy!r}"
            )

    # Derived geometry ---------------------------------------------------
    @property
    def block_bytes(self) -> int:
        return self.page_bytes * self.pages_per_block

    @property
    def logical_pages(self) -> int:
        return -(-self.logical_bytes // self.page_bytes)

    @property
    def total_blocks(self) -> int:
        provisioned_pages = math.ceil(
            self.logical_pages * (1.0 + self.over_provisioning)
        )
        data_blocks = -(-provisioned_pages // self.pages_per_block)
        return data_blocks + self.gc_reserve_blocks

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def physical_bytes(self) -> int:
        return self.total_pages * self.page_bytes


@dataclass(frozen=True)
class DeviceConfig:
    """Bundle of device parameters accepted everywhere a profile is.

    Every ``profile=`` parameter in the stack (``DB``, ``ShardedDB``,
    ``run_workload``, grid/shard tasks, the crashtest harness) accepts
    either a bare :class:`~repro.ssd.profile.SSDProfile` or a
    ``DeviceConfig``; the device normalises the two forms, so the flash
    layer threads through the whole harness without new plumbing.
    Frozen (hence picklable) so grid and shard tasks can carry it across
    process boundaries.
    """

    profile: SSDProfile = ENTERPRISE_PCIE
    flash: Optional[FlashSpec] = None

    @property
    def name(self) -> str:
        """Label used by reports; marks flash-enabled configurations."""
        if self.flash is None:
            return self.profile.name
        return f"{self.profile.name}+flash"


class FlashTranslationLayer:
    """Page-mapping FTL with log-structured allocation and GC.

    One instance lives behind a flash-enabled
    :class:`~repro.ssd.device.SimulatedSSD` (``device.flash``).  Pages
    are identified by physical page number (``ppn``); ``ppn //
    pages_per_block`` is the owning block.  Per-owner live pages are the
    logical side of the mapping (``owner_pages[owner][i]`` is the
    physical page holding the owner's *i*-th page), ``page_owner`` is
    the reverse map, and per-block counters drive victim selection.
    """

    def __init__(self, spec: FlashSpec, device) -> None:
        self.spec = spec
        self.device = device
        #: The outermost device object GC relocation I/O is charged
        #: through.  Defaults to the bare device; a wrapping
        #: ``FaultyDevice`` re-points it at itself so crash points land
        #: inside GC relocations too.
        self.charger = device
        nblocks = spec.total_blocks
        self._nblocks = nblocks
        self._ppb = spec.pages_per_block
        #: Reverse map: ppn -> (owner, index) for live pages, None for
        #: free or invalid pages.
        self.page_owner: List[Optional[Tuple[Owner, int]]] = (
            [None] * spec.total_pages
        )
        #: Forward map: owner -> list of ppns, one per live logical page.
        self.owner_pages: Dict[Owner, List[int]] = {}
        self._valid: List[int] = [0] * nblocks
        self._written: List[int] = [0] * nblocks
        self.erase_counts: List[int] = [0] * nblocks
        self._stamp: List[int] = [0] * nblocks
        self._free: Deque[int] = deque(range(nblocks))
        self._host_block: Optional[int] = None
        self._host_used = 0
        self._gc_block: Optional[int] = None
        self._gc_used = 0
        self._program_counter = 0
        self._stream_pending: Dict[Owner, int] = {}
        #: Absolute programmed-byte total (never reset; the wear proxy
        #: behind ``device.wear_bytes`` — the registry counter of the
        #: same name is window-scoped).
        self.bytes_programmed = 0
        self.blocks_erased = 0

    # ------------------------------------------------------------------
    # Host interface (called by SimulatedSSD.write)
    # ------------------------------------------------------------------
    def host_write(
        self,
        nbytes: int,
        category: str,
        *,
        owner: Optional[Owner] = None,
        stream: bool = False,
    ) -> None:
        """Map one host write of ``nbytes`` into page programs.

        Whole-page writes round up (``ceil(nbytes / page_bytes)``
        pages); ``stream=True`` writes accumulate in the owner's fill
        buffer and program only completed pages.  May trigger GC (and
        hence charge relocation I/O through :attr:`charger`) when the
        free-block pool drops to the reserve.
        """
        if nbytes == 0:
            return
        if owner is None:
            owner = UNTAGGED_OWNER
        page_bytes = self.spec.page_bytes
        if stream:
            pending = self._stream_pending.get(owner, 0) + nbytes
            npages, remainder = divmod(pending, page_bytes)
            if npages:
                self._program_owner(owner, npages)
            self._stream_pending[owner] = remainder
            self.device.registry.set_gauge(
                GAUGE_STREAM_PENDING, sum(self._stream_pending.values())
            )
        else:
            npages = -(-nbytes // page_bytes)
            self._program_owner(owner, npages)

    def trim(self, owner: Owner) -> None:
        """Invalidate every page of ``owner`` (file delete / WAL reset)."""
        pending = self._stream_pending.pop(owner, None)
        if pending is not None:
            self.device.registry.set_gauge(
                GAUGE_STREAM_PENDING, sum(self._stream_pending.values())
            )
        pages = self.owner_pages.pop(owner, None)
        if pages is None:
            return
        page_owner = self.page_owner
        valid = self._valid
        ppb = self._ppb
        for ppn in pages:
            page_owner[ppn] = None
            valid[ppn // ppb] -= 1
        self.device.registry.set_gauge(GAUGE_LIVE_PAGES, self.live_pages)

    # ------------------------------------------------------------------
    # Programming and allocation
    # ------------------------------------------------------------------
    def _program_owner(self, owner: Owner, npages: int) -> None:
        pages = self.owner_pages.get(owner)
        if pages is None:
            pages = self.owner_pages[owner] = []
        page_owner = self.page_owner
        valid = self._valid
        ppb = self._ppb
        for _ in range(npages):
            ppn = self._next_page(for_gc=False)
            page_owner[ppn] = (owner, len(pages))
            pages.append(ppn)
            valid[ppn // ppb] += 1
        nbytes = npages * self.spec.page_bytes
        self.bytes_programmed += nbytes
        registry = self.device.registry
        registry.add_many(
            [
                (CTR_PAGES_PROGRAMMED, npages),
                (CTR_HOST_PAGES, npages),
                (CTR_BYTES_PROGRAMMED, nbytes),
            ]
        )
        registry.set_gauge(GAUGE_LIVE_PAGES, self.live_pages)

    def _next_page(self, *, for_gc: bool) -> int:
        ppb = self._ppb
        if for_gc:
            if self._gc_block is None:
                self._gc_block = self._take_free_block(for_gc=True)
                self._gc_used = 0
            block, used = self._gc_block, self._gc_used
            self._gc_used = used + 1
            if self._gc_used >= ppb:
                self._gc_block = None
        else:
            if self._host_block is None:
                self._host_block = self._take_free_block(for_gc=False)
                self._host_used = 0
            block, used = self._host_block, self._host_used
            self._host_used = used + 1
            if self._host_used >= ppb:
                self._host_block = None
        self._written[block] += 1
        self._stamp[block] = self._program_counter
        self._program_counter += 1
        return block * ppb + used

    def _take_free_block(self, *, for_gc: bool) -> int:
        free = self._free
        if for_gc:
            # GC may dip into the reserve; an empty pool here means the
            # geometry cannot make progress at all.
            if not free:
                raise DeviceError(
                    "flash device full: GC needs a free block and the "
                    "reserve is exhausted (live data exceeds capacity?)"
                )
        else:
            reserve = self.spec.gc_reserve_blocks
            guard = 0
            while len(free) <= reserve:
                self._collect_one()
                guard += 1
                if guard > 2 * self._nblocks:
                    raise DeviceError(
                        "flash GC made no net progress after "
                        f"{guard} collections (spec {self.spec})"
                    )
        block = free.popleft()
        self.device.registry.set_gauge(GAUGE_FREE_BLOCKS, len(free))
        return block

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def _collect_one(self) -> None:
        """Relocate one victim block's live pages and erase it.

        The relocation I/O is charged *before* any mapping mutation: if
        the charger injects a crash during the GC read or write, the
        table is untouched and every old mapping is still valid.  During
        the install loop each page's old slot is cleared only after its
        new slot is filled.
        """
        victim = self._pick_victim()
        ppb = self._ppb
        base = victim * ppb
        page_owner = self.page_owner
        live = [
            ppn
            for ppn in range(base, base + self._written[victim])
            if page_owner[ppn] is not None
        ]
        registry = self.device.registry
        registry.add(CTR_COLLECTIONS)
        if live:
            nbytes = len(live) * self.spec.page_bytes
            charger = self.charger
            charger.read(nbytes, GC_READ, sequential=True)
            charger.write(nbytes, GC_WRITE, sequential=True)
            valid = self._valid
            owner_pages = self.owner_pages
            for ppn in live:
                owner, index = page_owner[ppn]
                new_ppn = self._next_page(for_gc=True)
                page_owner[new_ppn] = (owner, index)
                owner_pages[owner][index] = new_ppn
                valid[new_ppn // ppb] += 1
                page_owner[ppn] = None
                valid[victim] -= 1
            self.bytes_programmed += nbytes
            registry.add_many(
                [
                    (CTR_PAGES_PROGRAMMED, len(live)),
                    (CTR_GC_PAGES, len(live)),
                    (CTR_BYTES_PROGRAMMED, nbytes),
                ]
            )
        self._erase(victim)

    def _erase(self, block: int) -> None:
        self._written[block] = 0
        self._valid[block] = 0
        self.erase_counts[block] += 1
        self.blocks_erased += 1
        self._free.append(block)
        registry = self.device.registry
        registry.add(CTR_ERASES)
        registry.set_gauge(GAUGE_FREE_BLOCKS, len(self._free))
        registry.set_gauge(GAUGE_TOTAL_ERASE, self.blocks_erased)
        if self.erase_counts[block] > registry.gauge(GAUGE_MAX_ERASE, 0):
            registry.set_gauge(GAUGE_MAX_ERASE, self.erase_counts[block])
        if self.spec.erase_us:
            self.device.clock.advance(self.spec.erase_us)
            registry.add(CTR_ERASE_TIME_US, self.spec.erase_us)

    def _pick_victim(self) -> int:
        """Choose the block to collect; raise when nothing is reclaimable."""
        written = self._written
        valid = self._valid
        stamp = self._stamp
        ppb = self._ppb
        now = self._program_counter
        greedy = self.spec.gc_policy == "greedy"
        best = -1
        best_score = 0.0
        for block in range(self._nblocks):
            w = written[block]
            # Skip free blocks (written == 0) and the open blocks still
            # accepting programs.
            if w == 0 or block == self._host_block or block == self._gc_block:
                continue
            invalid = w - valid[block]
            if invalid <= 0:
                continue
            if greedy:
                score = float(invalid)
            elif valid[block] == 0:
                # Fully-stale block: infinite benefit, zero cost.
                score = float("inf")
            else:
                u = valid[block] / ppb
                score = (now - stamp[block]) * (1.0 - u) / (2.0 * u)
            # Strict > with ascending iteration keeps ties deterministic
            # (lowest block id wins).
            if best < 0 or score > best_score:
                best = block
                best_score = score
        if best < 0:
            raise DeviceError(
                "flash device full: no block has invalid pages to reclaim "
                "(live data exceeds physical capacity)"
            )
        return best

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_pages(self) -> int:
        return sum(len(pages) for pages in self.owner_pages.values())

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def max_erase_count(self) -> int:
        return max(self.erase_counts)

    @property
    def stream_pending_bytes(self) -> int:
        return sum(self._stream_pending.values())

    def check_invariants(self) -> None:
        """Verify the mapping table; raise :class:`DeviceError` on damage.

        Called by ``DB.check_invariants`` after crash recovery (and by
        the property suite directly): the forward and reverse maps must
        agree page-for-page, per-block counters must match a recount,
        valid + invalid + free pages must tile the geometry exactly, and
        the free pool must hold only fully-erased, unique blocks.
        """
        ppb = self._ppb
        page_owner = self.page_owner
        live_total = 0
        for owner, pages in self.owner_pages.items():
            for index, ppn in enumerate(pages):
                entry = page_owner[ppn]
                if entry != (owner, index):
                    raise DeviceError(
                        f"FTL mapping damaged: owner {owner!r} page "
                        f"{index} points at ppn {ppn} whose reverse "
                        f"entry is {entry!r}"
                    )
            live_total += len(pages)
        reverse_live = sum(1 for entry in page_owner if entry is not None)
        if reverse_live != live_total:
            raise DeviceError(
                f"FTL mapping damaged: {reverse_live} live reverse "
                f"entries vs {live_total} forward pages"
            )
        total_written = 0
        for block in range(self._nblocks):
            base = block * ppb
            recount = sum(
                1 for ppn in range(base, base + ppb) if page_owner[ppn] is not None
            )
            if recount != self._valid[block]:
                raise DeviceError(
                    f"block {block}: valid counter {self._valid[block]} "
                    f"!= recount {recount}"
                )
            if not 0 <= self._valid[block] <= self._written[block] <= ppb:
                raise DeviceError(
                    f"block {block}: counters out of range "
                    f"(valid={self._valid[block]}, "
                    f"written={self._written[block]}, ppb={ppb})"
                )
            if self.erase_counts[block] < 0:
                raise DeviceError(f"block {block}: negative erase count")
            total_written += self._written[block]
        # valid + invalid + free == capacity (written = valid + invalid).
        free_pages = self.spec.total_pages - total_written
        if free_pages < 0:
            raise DeviceError("written pages exceed geometry capacity")
        free_set = set(self._free)
        if len(free_set) != len(self._free):
            raise DeviceError("free pool contains duplicate blocks")
        for block in free_set:
            if self._written[block] or self._valid[block]:
                raise DeviceError(f"free block {block} is not erased")
        for open_block in (self._host_block, self._gc_block):
            if open_block is not None and open_block in free_set:
                raise DeviceError(f"open block {open_block} is in the free pool")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlashTranslationLayer(blocks={self._nblocks}, "
            f"free={len(self._free)}, live_pages={self.live_pages}, "
            f"erased={self.blocks_erased})"
        )
