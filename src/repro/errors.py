"""Exception hierarchy for the LDC reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  The hierarchy mirrors the subsystems: configuration
problems, engine (LSM) violations, device-model misuse, and workload
specification errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DeviceError(ReproError):
    """The simulated storage device was used incorrectly."""


class EngineError(ReproError):
    """An LSM engine invariant was violated or misused."""


class ClosedError(EngineError):
    """An operation was issued against a closed database."""


class CompactionError(EngineError):
    """A compaction policy produced an inconsistent plan or result."""


class WorkloadError(ReproError):
    """A workload specification is malformed."""
