"""Exception hierarchy for the LDC reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  The hierarchy mirrors the subsystems: configuration
problems, engine (LSM) violations, device-model misuse, and workload
specification errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DeviceError(ReproError):
    """The simulated storage device was used incorrectly."""


class EngineError(ReproError):
    """An LSM engine invariant was violated or misused."""


class RecoveryError(EngineError):
    """Crash recovery cannot proceed (e.g. the WAL is disabled)."""


class CorruptionError(EngineError):
    """A block failed CRC verification on a decode path.

    Raised instead of returning silently wrong data when the (simulated)
    device delivered flipped bits — the contract the fault-injection
    corruption tests assert.
    """


class TransientIOError(DeviceError):
    """One transient device failure, absorbed by the retry layer.

    Never escapes :class:`~repro.faults.device.FaultyDevice` — it exists
    so tests can name the internal failure mode; callers only ever see
    :class:`PersistentIOError` once the bounded retry budget is spent.
    """


class PersistentIOError(DeviceError):
    """A device request kept failing beyond the bounded retry policy."""


class SimulatedCrash(ReproError):
    """Control-flow signal for an injected crash point.

    Raised by :class:`~repro.faults.device.FaultyDevice` when the armed
    crash point is reached: the in-flight I/O aborts and the process is
    considered dead.  Not an engine bug — harnesses catch it and drive
    :meth:`~repro.lsm.db.DB.crash_and_recover`.

    Attributes
    ----------
    io_index:
        1-based global index of the aborted I/O.
    category:
        Device category of the aborted I/O (e.g. ``wal_write``).
    torn_bytes:
        How many bytes of the aborted write reached the media before the
        crash (0 for a clean abort; only meaningful for writes).
    """

    def __init__(self, io_index: int, category: str, torn_bytes: int = 0) -> None:
        super().__init__(
            f"simulated crash at I/O #{io_index} ({category}, "
            f"{torn_bytes} bytes torn onto media)"
        )
        self.io_index = io_index
        self.category = category
        self.torn_bytes = torn_bytes


class ClosedError(EngineError):
    """An operation was issued against a closed database."""


class CompactionError(EngineError):
    """A compaction policy produced an inconsistent plan or result."""


class UnknownPolicyError(ConfigError):
    """A compaction policy name was not found in the policy registry.

    Raised by :func:`repro.lsm.compaction.spec.get_spec` (and every
    consumer that resolves policy names through it — CLI, harness,
    crashtest, sharding) so one typed error carries both the offending
    name and the full list of valid names.

    Attributes
    ----------
    name:
        The unknown policy name as supplied by the caller.
    known:
        Sorted tuple of every registered policy name.
    """

    def __init__(self, name: str, known: tuple) -> None:
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown compaction policy {name!r}; "
            f"known policies: {', '.join(self.known)}"
        )


class UnknownBenchmarkError(ConfigError):
    """A benchmark name was not found in the benchmark registry.

    Raised by :func:`repro.harness.bench.run_bench` when ``--only`` names
    a benchmark that is neither in the default suite nor in the tier-2
    (paper-scale) set.  Mirrors :class:`UnknownPolicyError`: one typed
    error carrying both the offending names and the full list of valid
    names, so the CLI can print a helpful message instead of a traceback.

    Attributes
    ----------
    name:
        The first unknown benchmark name as supplied by the caller.
    unknown:
        Every unknown name from the request, in request order.
    known:
        Sorted tuple of every runnable benchmark name.
    """

    def __init__(self, unknown: "list[str]", known: tuple) -> None:
        self.unknown = tuple(unknown)
        self.name = self.unknown[0] if self.unknown else ""
        self.known = tuple(sorted(known))
        super().__init__(
            f"unknown benchmark(s) {', '.join(repr(n) for n in self.unknown)}; "
            f"known benchmarks: {', '.join(self.known)}"
        )


class WorkloadError(ReproError):
    """A workload specification is malformed."""


class AdmissionError(ReproError):
    """A request was refused at the serving layer's admission gate.

    Base class for the open-loop front-end's typed rejections
    (:mod:`repro.serve`): callers that need the distinction catch the
    subclasses, callers that only care about "was it admitted" catch
    this.

    Attributes
    ----------
    tenant:
        Name of the tenant whose request was refused.
    depth:
        Queue depth observed at the admission decision.
    """

    def __init__(self, message: str, tenant: str = "", depth: int = 0) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.depth = depth


class QueueFullError(AdmissionError):
    """The bounded request queue was at capacity when the request arrived."""


class BackpressureError(AdmissionError):
    """A write was refused because the engine signalled L0 back-pressure.

    Raised by the serving layer when the store's Level-0 file count has
    crossed the stop trigger (:meth:`repro.lsm.db.DB.throttle_state`):
    instead of letting the request stall inside the engine and inflate
    every queued request behind it, the front-end sheds it at admission.
    """
