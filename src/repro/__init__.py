"""Reproduction of *LDC: A Lower-Level Driven Compaction Method to Optimize
SSD-Oriented Key-Value Stores* (ICDE 2019).

The library provides:

* :class:`~repro.lsm.db.DB` — a complete LSM-tree key-value store (the
  LevelDB-analogue substrate) running over a simulated SSD in virtual time;
* :class:`~repro.core.ldc.LDCPolicy` — the paper's lower-level driven
  compaction (link & merge), alongside the UDC baseline
  (:class:`~repro.lsm.compaction.leveled.LeveledCompaction`) and a
  size-tiered lazy baseline;
* :mod:`repro.workload` — a YCSB-like workload generator covering the
  paper's Table III workloads;
* :mod:`repro.model` — the analytical performance model of §II–III;
* :mod:`repro.harness` — virtual-time measurement (latency percentiles,
  throughput, compaction I/O) and per-figure experiment entry points;
* :mod:`repro.shard` — the sharded multi-store engine:
  :class:`~repro.shard.db.ShardedDB` partitions the keyspace across N
  independent stores (hash or range) behind the single-store API, and
  :func:`~repro.shard.runner.run_sharded_workload` executes workloads
  shard-parallel with bit-identical deterministic aggregation;
* :mod:`repro.sched` — the deterministic virtual-time compaction
  scheduler: with ``LSMConfig(bg_threads=N)`` compaction rounds become
  chunked background work units sharing device bandwidth with the
  foreground, and writes observe LevelDB-style L0 slowdown/stop
  throttling (docs/SCHEDULING.md);
* :mod:`repro.ssd.flash` — an opt-in page/block flash device model
  (FTL mapping, log-structured allocation, garbage collection, wear
  tracking): ``DB(profile=DeviceConfig(flash=FlashSpec(...)))`` makes
  device-level write amplification and erase counts measurable end to
  end (docs/DEVICE.md);
* :mod:`repro.serve` — the open-loop serving layer: deterministic
  arrival processes (Poisson / bursty MMPP / diurnal), multi-tenant rate
  aggregation, a bounded admission-controlled request queue wired to the
  engine's L0 back-pressure, and queueing-aware tail-latency reports
  (queue wait and service time measured separately — docs/SERVING.md);
* :mod:`repro.obs` — the observability layer: structured event tracing
  (:class:`~repro.obs.tracer.Tracer` with ring-buffer and JSON-lines
  sinks), the metrics registry behind every counter, frozen diffable
  :class:`~repro.obs.snapshot.MetricsSnapshot`\\ s from ``db.metrics()``,
  and streaming log-bucketed
  :class:`~repro.obs.histogram.LatencyHistogram`\\ s.

Quickstart
----------
>>> from repro import DB, LDCPolicy
>>> db = DB(policy=LDCPolicy())
>>> db.put(b"user1", b"hello")
>>> db.get(b"user1")
b'hello'
"""

from .core import AdaptiveThreshold, FrozenRegion, LDCPolicy, Slice
from .errors import (
    AdmissionError,
    BackpressureError,
    ClosedError,
    CompactionError,
    ConfigError,
    DeviceError,
    EngineError,
    QueueFullError,
    ReproError,
    UnknownPolicyError,
    WorkloadError,
)
from .lsm import (
    DB,
    WriteBatch,
    ComposedPolicy,
    CostModel,
    DelayedCompaction,
    LeveledCompaction,
    LSMConfig,
    PolicySpec,
    SpecFactory,
    TieredCompaction,
    available_policies,
    get_spec,
    make_policy,
    register_policy,
    resolve_factory,
)
from .obs import (
    JsonLinesSink,
    LatencyHistogram,
    MetricsRegistry,
    MetricsSnapshot,
    RingBufferSink,
    TraceEvent,
    Tracer,
)
from .sched import CompactionScheduler, DeviceChannel
from .serve import (
    RequestQueue,
    ServeResult,
    ServeSpec,
    Tenant,
    run_sharded_serve,
    serve_workload,
)
from .shard import (
    HashPartitioner,
    RangePartitioner,
    ShardedDB,
    ShardedSnapshot,
    run_sharded_workload,
)
from .ssd import (
    BALANCED_FLASH,
    ENTERPRISE_PCIE,
    HDD,
    SATA_SSD,
    DeviceConfig,
    FlashSpec,
    FlashTranslationLayer,
    SimClock,
    SimulatedSSD,
    SSDProfile,
    get_profile,
)

__version__ = "1.0.0"

__all__ = [
    "DB",
    "WriteBatch",
    "LSMConfig",
    "CostModel",
    "LDCPolicy",
    "LeveledCompaction",
    "TieredCompaction",
    "DelayedCompaction",
    "PolicySpec",
    "SpecFactory",
    "ComposedPolicy",
    "available_policies",
    "get_spec",
    "make_policy",
    "register_policy",
    "resolve_factory",
    "ShardedDB",
    "ShardedSnapshot",
    "HashPartitioner",
    "RangePartitioner",
    "run_sharded_workload",
    "Tenant",
    "ServeSpec",
    "ServeResult",
    "RequestQueue",
    "serve_workload",
    "run_sharded_serve",
    "Slice",
    "FrozenRegion",
    "AdaptiveThreshold",
    "CompactionScheduler",
    "DeviceChannel",
    "SimClock",
    "SimulatedSSD",
    "SSDProfile",
    "DeviceConfig",
    "FlashSpec",
    "FlashTranslationLayer",
    "get_profile",
    "ENTERPRISE_PCIE",
    "SATA_SSD",
    "BALANCED_FLASH",
    "HDD",
    "Tracer",
    "TraceEvent",
    "RingBufferSink",
    "JsonLinesSink",
    "MetricsRegistry",
    "MetricsSnapshot",
    "LatencyHistogram",
    "ReproError",
    "AdmissionError",
    "QueueFullError",
    "BackpressureError",
    "ConfigError",
    "DeviceError",
    "EngineError",
    "ClosedError",
    "CompactionError",
    "UnknownPolicyError",
    "WorkloadError",
    "__version__",
]
