"""Frozen, diffable snapshots of the whole metrics registry.

``db.metrics()`` is the single entry point unifying what used to require
four different accessors: engine counters (``EngineStats``), device I/O
categories (``IOStats``), the block cache's hit ratio, and policy-internal
counters.  It returns a :class:`MetricsSnapshot` — an immutable copy of
every counter and gauge at one instant of virtual time — and two
snapshots subtract: ``after.delta(before)`` isolates exactly what one
phase of a benchmark did, which is how the harness separates load-phase
from measured-phase I/O without resetting anything.

Key naming follows the registry convention (``component.name``):

========================  =====================================================
``engine.*``              engine counters (puts, flush_count, link_count, ...)
``engine.activity.*``     virtual time per activity (Table I breakdown)
``device.read.<cat>.*``   per-category read ``ops`` / ``bytes`` / ``time_us``
``device.write.<cat>.*``  per-category write ``ops`` / ``bytes`` / ``time_us``
``cache.hits/misses``     block-cache probe outcomes
``policy.<name>.*``       compaction-policy counters (links, merges, ...)
``flash.*``               flash/FTL layer (pages programmed, GC, erases)
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover
    from .registry import MetricsRegistry

Number = Union[int, float]


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable view of every metric at one virtual-time instant."""

    t_us: float
    counters: Mapping[str, Number] = field(default_factory=dict)
    gauges: Mapping[str, Number] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze the mappings so a snapshot can never drift after capture.
        object.__setattr__(self, "counters", MappingProxyType(dict(self.counters)))
        object.__setattr__(self, "gauges", MappingProxyType(dict(self.gauges)))

    def __reduce__(self):
        # MappingProxyType cannot be pickled; rebuild from plain dicts so
        # snapshots survive the trip back from worker processes (the
        # parallel experiment grid ships whole RunResults across).
        return (
            self.__class__,
            (self.t_us, dict(self.counters), dict(self.gauges)),
        )

    @classmethod
    def capture(cls, registry: "MetricsRegistry", t_us: float) -> "MetricsSnapshot":
        """Snapshot ``registry`` at virtual time ``t_us``."""
        return cls(t_us=t_us, counters=registry.counters(), gauges=registry.gauges())

    # ------------------------------------------------------------------
    # Mapping-ish access
    # ------------------------------------------------------------------
    def get(self, key: str, default: Number = 0) -> Number:
        """Counter value (falling back to gauges, then ``default``)."""
        if key in self.counters:
            return self.counters[key]
        return self.gauges.get(key, default)

    def __getitem__(self, key: str) -> Number:
        if key in self.counters:
            return self.counters[key]
        return self.gauges[key]

    def __contains__(self, key: str) -> bool:
        return key in self.counters or key in self.gauges

    def __iter__(self) -> Iterator[Tuple[str, Number]]:
        return iter(self.counters.items())

    def component(self, prefix: str) -> Dict[str, Number]:
        """Counters under ``prefix.``, keyed by the remainder of the key."""
        lead = prefix + "."
        return {
            key[len(lead):]: value
            for key, value in self.counters.items()
            if key.startswith(lead)
        }

    def _sum(self, prefix: str, suffix: str) -> Number:
        return sum(
            value
            for key, value in self.counters.items()
            if key.startswith(prefix) and key.endswith(suffix)
        )

    # ------------------------------------------------------------------
    # Diffing
    # ------------------------------------------------------------------
    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counter-wise difference ``self - earlier``.

        Gauges are point-in-time values, so the later snapshot's gauges are
        kept as-is.  ``delta`` of a snapshot with itself is all-zero, and
        ``earlier.delta(earlier).delta(...)`` chains freely since the
        result is itself a snapshot.
        """
        keys = set(self.counters) | set(earlier.counters)
        diff = {
            key: self.counters.get(key, 0) - earlier.counters.get(key, 0)
            for key in sorted(keys)
        }
        return MetricsSnapshot(
            t_us=self.t_us - earlier.t_us, counters=diff, gauges=dict(self.gauges)
        )

    # ------------------------------------------------------------------
    # Unified headline quantities
    # ------------------------------------------------------------------
    @property
    def total_bytes_read(self) -> int:
        return int(self._sum("device.read.", ".bytes"))

    @property
    def total_bytes_written(self) -> int:
        return int(self._sum("device.write.", ".bytes"))

    @property
    def compaction_bytes_read(self) -> int:
        return int(self.get("device.read.compaction_read.bytes"))

    @property
    def compaction_bytes_written(self) -> int:
        return int(self.get("device.write.compaction_write.bytes"))

    @property
    def compaction_bytes_total(self) -> int:
        """Total compaction traffic (the paper's Fig. 10c quantity)."""
        return self.compaction_bytes_read + self.compaction_bytes_written

    @property
    def user_bytes_written(self) -> int:
        return int(self.get("engine.user_bytes_written"))

    @property
    def gc_write_bytes(self) -> int:
        """Device-internal GC relocation writes (0 without a flash layer)."""
        return int(self.get("device.write.gc_write.bytes"))

    @property
    def host_bytes_written(self) -> int:
        """Engine-issued write bytes: total writes minus GC relocations."""
        return self.total_bytes_written - self.gc_write_bytes

    @property
    def write_amplification(self) -> float:
        """Host writes over logical user writes (Definition 2.6).

        GC relocation traffic (flash layer on) is excluded: it belongs
        to :attr:`device_write_amplification`, and end-to-end WA is the
        product (:attr:`total_write_amplification`).  Identical to the
        historical all-device-writes ratio when the flash layer is off.
        """
        user = self.user_bytes_written
        if user <= 0:
            return 0.0
        return self.host_bytes_written / user

    @property
    def flash_bytes_programmed(self) -> int:
        """Bytes programmed into flash pages, host + GC (0 without flash)."""
        return int(self.get("flash.bytes_programmed"))

    @property
    def blocks_erased(self) -> int:
        return int(self.get("flash.blocks_erased"))

    @property
    def max_erase_count(self) -> int:
        """Highest per-block erase count (wear hot spot; gauge)."""
        return int(self.gauges.get("flash.max_erase_count", 0))

    @property
    def device_write_amplification(self) -> float:
        """Programmed flash bytes over host write bytes (1.0 without flash).

        The numerator counts whole programmed pages plus the WAL
        stream's not-yet-programmed fill remainder, so page-granularity
        rounding can never push the ratio below 1.
        """
        programmed = self.flash_bytes_programmed
        if programmed <= 0:
            return 1.0
        pending = self.gauges.get("flash.stream_pending_bytes", 0)
        host = self.host_bytes_written
        if host <= 0:
            return 1.0
        return (programmed + pending) / host

    @property
    def total_write_amplification(self) -> float:
        """End-to-end WA: host WA × device WA (the paper's lifetime story)."""
        return self.write_amplification * self.device_write_amplification

    @property
    def cache_hit_ratio(self) -> float:
        """Block-cache hit ratio over the snapshot's window (0 when unused)."""
        hits = self.get("cache.hits")
        total = hits + self.get("cache.misses")
        return hits / total if total else 0.0

    def activity_share(self) -> Dict[str, float]:
        """Fraction of accounted engine time per activity (Table I)."""
        times = self.component("engine.activity")
        total = sum(times.values())
        if total <= 0:
            return {}
        return {name: value / total for name, value in sorted(times.items())}

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready export of the full snapshot."""
        return {
            "t_us": self.t_us,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsSnapshot(t={self.t_us / 1e6:.3f}s, "
            f"{len(self.counters)} counters, wa={self.write_amplification:.2f})"
        )
