"""Cross-shard metric aggregation: N registries, one report.

A sharded engine runs one :class:`~repro.obs.registry.MetricsRegistry`
per shard — each shard owns its own simulated device and virtual clock,
so its counters are bit-exact regardless of which process executed it.
This module folds those per-shard snapshots into the two views the
sharded report exposes:

* the **aggregate** view: counter-wise sums under the original key names,
  so ``engine.puts`` over the aggregate equals the sum over shards and
  every downstream consumer (write amplification, activity share, cache
  hit ratio) works unchanged;
* the **namespaced** view: every shard's full snapshot re-keyed under
  ``shard.<i>.`` so nothing is lost in the fold — per-shard skew stays
  inspectable after the fact.

Aggregation is pure, deterministic and order-independent in value (sums
commute) but key-sorted in layout, which is what lets the shard runner
promise byte-identical output for serial and parallel execution.
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

from ..errors import ReproError
from .snapshot import MetricsSnapshot

Number = Union[int, float]

#: Key prefix for per-shard namespaced metrics (``shard.3.engine.puts``).
SHARD_PREFIX = "shard"

#: Key prefix for per-tenant serving metrics (``tenant.gold.completed``).
TENANT_PREFIX = "tenant"


def prefix_snapshot(snapshot: MetricsSnapshot, prefix: str) -> MetricsSnapshot:
    """Re-key every metric under ``<prefix>.`` (counters and gauges).

    The generic namespacing primitive behind both the per-shard
    (``shard.<i>.``) and per-tenant (``tenant.<name>.``) views: one
    snapshot folds into a larger one without key collisions, and
    ``MetricsSnapshot.component(prefix)`` recovers it.
    """
    if not prefix:
        raise ReproError("snapshot prefix must be non-empty")
    lead = prefix + "."
    return MetricsSnapshot(
        t_us=snapshot.t_us,
        counters={lead + key: value for key, value in snapshot.counters.items()},
        gauges={lead + key: value for key, value in snapshot.gauges.items()},
    )


def namespace_snapshot(snapshot: MetricsSnapshot, shard_index: int) -> MetricsSnapshot:
    """Re-key every metric under ``shard.<index>.`` (counters and gauges)."""
    if shard_index < 0:
        raise ReproError("shard index must be non-negative")
    return prefix_snapshot(snapshot, f"{SHARD_PREFIX}.{shard_index}")


def _keywise_sum(mappings: Sequence) -> Dict[str, Number]:
    totals: Dict[str, Number] = {}
    for mapping in mappings:
        for key, value in mapping.items():
            totals[key] = totals.get(key, 0) + value
    return {key: totals[key] for key in sorted(totals)}


def aggregate_snapshots(snapshots: Sequence[MetricsSnapshot]) -> MetricsSnapshot:
    """Counter-wise sum of per-shard snapshots under the original keys.

    ``t_us`` is the **maximum** shard virtual time: shards advance their
    own clocks independently, and the aggregate run is finished when its
    slowest shard is — the parallel-execution semantics the wall-clock
    speedup comes from.  Gauges sum too (they are sizes/occupancies here,
    e.g. cache bytes, where the fleet total is the meaningful figure).
    """
    if not snapshots:
        raise ReproError("cannot aggregate zero snapshots")
    return MetricsSnapshot(
        t_us=max(snapshot.t_us for snapshot in snapshots),
        counters=_keywise_sum([snapshot.counters for snapshot in snapshots]),
        gauges=_keywise_sum([snapshot.gauges for snapshot in snapshots]),
    )


def combined_view(snapshots: Sequence[MetricsSnapshot]) -> MetricsSnapshot:
    """Aggregate sums plus every per-shard metric under ``shard.<i>.``.

    One snapshot answering both "what did the fleet do" (plain keys) and
    "what did shard 3 do" (``shard.3.`` keys); ``component("shard.3")``
    recovers a shard's full counter set.
    """
    aggregate = aggregate_snapshots(snapshots)
    counters: Dict[str, Number] = dict(aggregate.counters)
    gauges: Dict[str, Number] = dict(aggregate.gauges)
    for index, snapshot in enumerate(snapshots):
        scoped = namespace_snapshot(snapshot, index)
        counters.update(scoped.counters)
        gauges.update(scoped.gauges)
    return MetricsSnapshot(t_us=aggregate.t_us, counters=counters, gauges=gauges)
