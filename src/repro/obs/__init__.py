"""Unified observability layer: tracing, metrics and latency histograms.

Three pieces, one import::

    from repro.obs import Tracer, RingBufferSink, JsonLinesSink   # events
    from repro.obs import MetricsRegistry, MetricsSnapshot        # metrics
    from repro.obs import LatencyHistogram                        # latency

* The **event tracer** records typed, virtual-clock-timestamped events
  (flush, compaction round, LDC link/merge, stall, cache hit/miss, device
  I/O) through pluggable sinks.
* The **metrics registry** is the single home of every counter and gauge;
  the legacy ``EngineStats`` / ``IOStats`` objects are thin views over it,
  and ``db.metrics()`` captures it as a frozen, diffable
  :class:`MetricsSnapshot`.
* **Latency histograms** stream log-bucketed samples into
  p50/p90/p99/p99.9/max without storing every value.
"""

from .aggregate import (
    SHARD_PREFIX,
    TENANT_PREFIX,
    aggregate_snapshots,
    combined_view,
    namespace_snapshot,
    prefix_snapshot,
)
from .events import (
    ALL_EVENT_KINDS,
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_COMPACTION_ROUND,
    EV_DEVICE_READ,
    EV_DEVICE_WRITE,
    EV_FAULT_CORRUPTION,
    EV_FAULT_CRASH,
    EV_FAULT_TRANSIENT,
    EV_FLUSH,
    EV_LINK,
    EV_MERGE,
    EV_RECOVERY,
    EV_SCHED_TASK,
    EV_SCHED_TASK_DONE,
    EV_STALL,
    EV_TRIVIAL_MOVE,
    TraceEvent,
)
from .histogram import DEFAULT_PERCENTILES, LatencyHistogram
from .registry import MetricsRegistry
from .snapshot import MetricsSnapshot
from .tracer import (
    JsonLinesSink,
    RingBufferSink,
    Tracer,
    TraceSink,
    summarize_events,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "TraceSink",
    "RingBufferSink",
    "JsonLinesSink",
    "summarize_events",
    "MetricsRegistry",
    "MetricsSnapshot",
    "aggregate_snapshots",
    "combined_view",
    "namespace_snapshot",
    "prefix_snapshot",
    "SHARD_PREFIX",
    "TENANT_PREFIX",
    "LatencyHistogram",
    "DEFAULT_PERCENTILES",
    "ALL_EVENT_KINDS",
    "EV_FLUSH",
    "EV_COMPACTION_ROUND",
    "EV_LINK",
    "EV_MERGE",
    "EV_TRIVIAL_MOVE",
    "EV_STALL",
    "EV_CACHE_HIT",
    "EV_CACHE_MISS",
    "EV_DEVICE_READ",
    "EV_DEVICE_WRITE",
    "EV_RECOVERY",
    "EV_FAULT_CRASH",
    "EV_FAULT_TRANSIENT",
    "EV_FAULT_CORRUPTION",
    "EV_SCHED_TASK",
    "EV_SCHED_TASK_DONE",
]
