"""The event tracer: structured engine events through pluggable sinks.

A :class:`Tracer` timestamps :class:`~repro.obs.events.TraceEvent`s on the
virtual clock and fans them out to any number of sinks.  Two sinks ship
with the library:

* :class:`RingBufferSink` — a bounded in-memory buffer for tests and
  interactive inspection;
* :class:`JsonLinesSink` — one JSON object per line to a file, the
  ``repro trace <workload> --trace-out`` format.

A tracer with no sinks is inert: :meth:`Tracer.emit` returns immediately,
so instrumentation hooks stay in place permanently at negligible cost and
tracing is enabled simply by attaching a sink.
"""

from __future__ import annotations

import json
from collections import deque
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Union,
)

from .events import TraceEvent
from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..ssd.clock import SimClock


class TraceSink:
    """Interface for trace-event consumers."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further emits are undefined."""


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity <= 0:
            raise ReproError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def events_of(self, *kinds: str) -> List[TraceEvent]:
        """The buffered events whose kind is in ``kinds``, oldest first."""
        wanted = set(kinds)
        return [event for event in self._events if event.kind in wanted]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class JsonLinesSink(TraceSink):
    """Writes each event as one JSON object per line (JSON-lines).

    Accepts a filesystem path (opened and owned by the sink) or an
    already-open text stream (flushed but not closed by :meth:`close`).
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._closed = False
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        if self._closed:
            raise ReproError("JsonLinesSink is closed")
        self._stream.write(json.dumps(event.to_dict(), sort_keys=True))
        self._stream.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class Tracer:
    """Emits timestamped trace events to the attached sinks.

    Parameters
    ----------
    sinks:
        Initial sinks; more can be attached with :meth:`add_sink`.
    clock:
        The virtual clock supplying timestamps.  ``DB`` binds its own
        clock to an unbound tracer at attach time, so
        ``DB(tracer=Tracer([RingBufferSink()]))`` just works.
    kinds:
        Optional whitelist of event kinds; ``None`` records everything.
        High-volume kinds (``device_read``/``device_write``,
        ``cache_hit``/``cache_miss``) can be filtered out this way for
        long runs.
    """

    def __init__(
        self,
        sinks: Iterable[TraceSink] = (),
        clock: Optional["SimClock"] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        self._sinks: List[TraceSink] = list(sinks)
        self.clock = clock
        self._kinds = None if kinds is None else frozenset(kinds)
        self.events_emitted = 0

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when at least one sink will receive events."""
        return bool(self._sinks)

    def add_sink(self, sink: TraceSink) -> TraceSink:
        """Attach ``sink`` and return it (handy for inline construction)."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        self._sinks.remove(sink)

    def wants(self, kind: str) -> bool:
        """Would an event of ``kind`` currently be recorded?"""
        if not self._sinks:
            return False
        return self._kinds is None or kind in self._kinds

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> Optional[TraceEvent]:
        """Record one event; returns it, or None when not recorded."""
        if not self.wants(kind):
            return None
        t_us = self.clock.now() if self.clock is not None else 0.0
        event = TraceEvent(kind=kind, t_us=t_us, fields=fields)
        for sink in self._sinks:
            sink.emit(event)
        self.events_emitted += 1
        return event

    def close(self) -> None:
        """Close every sink (flushes file sinks)."""
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tracer({len(self._sinks)} sinks, "
            f"{self.events_emitted} events emitted)"
        )


def summarize_events(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Event count per kind — the quick shape of a trace."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return dict(sorted(counts.items()))
