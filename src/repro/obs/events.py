"""Typed trace events: the vocabulary of the engine's execution timeline.

Every interesting engine action — a flush, one compaction round, an LDC
link or merge, a write stall, a block-cache probe, a device transfer —
emits one :class:`TraceEvent` through the attached
:class:`~repro.obs.tracer.Tracer`.  Events carry the virtual-clock
timestamp and a flat field mapping, so a JSON-lines trace file is a
complete, replayable account of what maintenance did and when — the raw
material behind the paper's Table I, Fig. 1, Fig. 8 and Fig. 10c/12
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

# Canonical event kinds.
EV_FLUSH = "flush"  # memtable dumped to Level-0 SSTables
EV_COMPACTION_ROUND = "compaction_round"  # one I/O-bearing maintenance round
EV_LINK = "link"  # LDC link phase (zero-I/O metadata action)
EV_MERGE = "merge"  # LDC lower-level driven merge
EV_TRIVIAL_MOVE = "trivial_move"  # file re-parented without I/O
EV_STALL = "stall"  # write stalled on Level-0 back-pressure
EV_CACHE_HIT = "cache_hit"  # block served from the block cache
EV_CACHE_MISS = "cache_miss"  # block fetched from the device
EV_DEVICE_READ = "device_read"  # one device read transfer
EV_DEVICE_WRITE = "device_write"  # one device write transfer
EV_RECOVERY = "recovery"  # crash recovery: WAL replayed into a fresh memtable
EV_FAULT_CRASH = "fault_crash"  # injected crash point fired
EV_FAULT_TRANSIENT = "fault_transient"  # injected transient I/O error (retried)
EV_FAULT_CORRUPTION = "fault_corruption"  # injected read corruption delivered
EV_SCHED_TASK = "sched_task"  # compaction round captured as a background task
EV_SCHED_TASK_DONE = "sched_task_done"  # background task paid off its last chunk

ALL_EVENT_KINDS: Tuple[str, ...] = (
    EV_FLUSH,
    EV_COMPACTION_ROUND,
    EV_LINK,
    EV_MERGE,
    EV_TRIVIAL_MOVE,
    EV_STALL,
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_DEVICE_READ,
    EV_DEVICE_WRITE,
    EV_RECOVERY,
    EV_FAULT_CRASH,
    EV_FAULT_TRANSIENT,
    EV_FAULT_CORRUPTION,
    EV_SCHED_TASK,
    EV_SCHED_TASK_DONE,
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped engine event.

    Attributes
    ----------
    kind:
        One of the ``EV_*`` constants (free-form kinds are allowed for
        extensions, but sinks and tools assume the canonical set).
    t_us:
        Virtual-clock timestamp at emission, in microseconds.
    fields:
        Flat, JSON-serialisable payload (byte counts, file ids, levels,
        durations).
    """

    kind: str
    t_us: float
    fields: Mapping[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def __getitem__(self, name: str) -> Any:
        return self.fields[name]

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to one JSON-ready dict (the JSON-lines wire format)."""
        out: Dict[str, Any] = {"kind": self.kind, "t_us": self.t_us}
        out.update(self.fields)
        return out
