"""The metrics registry: one namespace for every counter in the system.

Before this subsystem existed, measurements lived in ad-hoc attributes
scattered across ``EngineStats``, the device's ``IOStats`` and the block
cache, and resetting them meant replacing whole objects — which silently
skipped policy-internal counters.  The registry centralises all of that:

* every metric is a **counter** (monotonic within a measurement window,
  zeroed by :meth:`MetricsRegistry.reset`) or a **gauge** (a "current
  value" such as LDC's adaptive threshold, untouched by resets);
* metrics are addressed by dotted string keys, ``component.name`` by
  convention (``engine.puts``, ``device.read.user_read.bytes``,
  ``cache.hits``, ``policy.ldc.links``);
* the legacy stats objects (:class:`~repro.lsm.stats.EngineStats`,
  :class:`~repro.ssd.metrics.IOStats`) are thin *views* over one shared
  registry, so ``db.reset_measurements()`` is a single
  :meth:`MetricsRegistry.reset` call that zeroes engine, device, cache
  and policy metrics consistently.

Auxiliary measurement state that is not a plain number (e.g. the
per-round compaction size list) registers a reset hook via
:meth:`MetricsRegistry.on_reset` so it is cleared by the same call.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple, Union

Number = Union[int, float]


class MetricsRegistry:
    """Named counters and gauges shared by one database instance."""

    __slots__ = ("_counters", "_gauges", "_reset_hooks")

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}
        self._reset_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def add(self, key: str, amount: Number = 1) -> None:
        """Increment counter ``key`` by ``amount`` (creating it at zero)."""
        counters = self._counters
        counters[key] = counters.get(key, 0) + amount

    def add_many(self, items: "list[tuple[str, Number]]") -> None:
        """Bulk-increment counters from ``(key, amount)`` pairs.

        One call for a batch of prebuilt-key increments (the batched
        device accounting path); identical to calling :meth:`add` per
        pair, including the left-to-right accumulation order for float
        counters.
        """
        counters = self._counters
        get = counters.get
        for key, amount in items:
            counters[key] = get(key, 0) + amount

    def set_counter(self, key: str, value: Number) -> None:
        """Overwrite counter ``key`` (used by the legacy-view setters)."""
        self._counters[key] = value

    def counter(self, key: str, default: Number = 0) -> Number:
        """Current value of counter ``key``."""
        return self._counters.get(key, default)

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def set_gauge(self, key: str, value: Number) -> None:
        """Record the current value of gauge ``key``."""
        self._gauges[key] = value

    def gauge(self, key: str, default: Number = 0) -> Number:
        """Current value of gauge ``key``."""
        return self._gauges.get(key, default)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, Number]:
        """A copy of every counter."""
        return dict(self._counters)

    def gauges(self) -> Dict[str, Number]:
        """A copy of every gauge."""
        return dict(self._gauges)

    def component(self, prefix: str) -> Dict[str, Number]:
        """Counters under ``prefix.``, keyed by the remainder of the key.

        ``registry.component("engine.activity")`` returns
        ``{"compaction": ..., "flush": ...}``.
        """
        lead = prefix + "."
        return {
            key[len(lead):]: value
            for key, value in self._counters.items()
            if key.startswith(lead)
        }

    def sum_matching(self, prefix: str, suffix: str) -> Number:
        """Sum counters that start with ``prefix`` and end with ``suffix``.

        Used for roll-ups such as "all device write bytes":
        ``registry.sum_matching("device.write.", ".bytes")``.
        """
        return sum(
            value
            for key, value in self._counters.items()
            if key.startswith(prefix) and key.endswith(suffix)
        )

    def __iter__(self) -> Iterator[Tuple[str, Number]]:
        return iter(self._counters.items())

    def __contains__(self, key: str) -> bool:
        return key in self._counters or key in self._gauges

    def __len__(self) -> int:
        return len(self._counters)

    # ------------------------------------------------------------------
    # Reset
    # ------------------------------------------------------------------
    def on_reset(self, hook: Callable[[], None]) -> None:
        """Register a callable run by :meth:`reset` (clear auxiliary state)."""
        self._reset_hooks.append(hook)

    def reset(self) -> None:
        """Zero every counter and run the registered reset hooks.

        Keys survive (zeroed, preserving int/float-ness) so live views keep
        reading consistently; gauges are left alone — they describe current
        state (a threshold, a space level), not accumulated measurement.
        """
        for key, value in self._counters.items():
            self._counters[key] = type(value)()
        for hook in self._reset_hooks:
            hook()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges)"
        )
