"""Streaming latency histograms: percentiles without storing every sample.

The harness's original percentile path kept every latency in a Python list
and sorted it on demand — O(n) memory and O(n log n) per query, which is
fine for 10^5-operation reproductions but not for the production-scale
runs the roadmap targets.  :class:`LatencyHistogram` is the streaming
replacement: log-spaced buckets whose width grows geometrically, so a
fixed few-hundred-entry table covers nanoseconds to hours with bounded
relative error, and p50/p90/p99/p99.9/max fall out of one cumulative walk.

The guarantee is the classic HdrHistogram-style one: a reported percentile
lies within one bucket of the exact sample percentile, i.e. within a
relative error of ``growth - 1`` (5% at the default growth of 1.05).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ReproError

#: The percentile set the observability layer reports by default.
DEFAULT_PERCENTILES: Tuple[float, ...] = (50.0, 90.0, 99.0, 99.9)


class LatencyHistogram:
    """A log-bucketed streaming histogram of non-negative values.

    Parameters
    ----------
    growth:
        Geometric bucket-width ratio; the relative error bound of every
        reported percentile is ``growth - 1``.
    min_value_us:
        Values at or below this fall into the first bucket; it anchors the
        log scale (sub-``min_value_us`` resolution is not preserved).
    """

    __slots__ = ("growth", "min_value_us", "_log_growth", "_buckets",
                 "count", "total", "_min", "_max", "_index_cache")

    #: Bound on the value->bucket-index memo (distinct latencies in a
    #: simulated run are few — costs are fixed constants — but arbitrary
    #: callers must not grow it without limit).
    _INDEX_CACHE_MAX = 4096

    def __init__(self, growth: float = 1.05, min_value_us: float = 0.5) -> None:
        if growth <= 1.0:
            raise ReproError("histogram growth factor must exceed 1")
        if min_value_us <= 0:
            raise ReproError("histogram min_value_us must be positive")
        self.growth = growth
        self.min_value_us = min_value_us
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._index_cache: Dict[float, int] = {}
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """Index of the bucket holding ``value``.

        Bucket 0 is ``[0, min_value_us]``; bucket ``i >= 1`` is
        ``(min_value_us * growth**(i-1), min_value_us * growth**i]``.
        """
        if value < 0:
            raise ReproError(f"negative latency {value!r}")
        if value <= self.min_value_us:
            return 0
        ratio = math.log(value / self.min_value_us) / self._log_growth
        # Guard against float error putting an exact boundary one bucket up.
        return max(1, int(math.ceil(ratio - 1e-9)))

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """``(low, high]`` bounds of bucket ``index`` (bucket 0 is [0, min])."""
        if index <= 0:
            return (0.0, self.min_value_us)
        return (
            self.min_value_us * self.growth ** (index - 1),
            self.min_value_us * self.growth ** index,
        )

    def record(self, value: float) -> None:
        """Add one sample."""
        # bucket_index inlined and memoised: this runs once per simulated
        # operation, and a simulation's latencies are sums of a few fixed
        # cost constants, so distinct values are rare.
        index = self._index_cache.get(value)
        if index is None:
            if value <= self.min_value_us:
                if value < 0:
                    raise ReproError(f"negative latency {value!r}")
                index = 0
            else:
                ratio = math.log(value / self.min_value_us) / self._log_growth
                index = max(1, int(math.ceil(ratio - 1e-9)))
            if len(self._index_cache) < self._INDEX_CACHE_MAX:
                self._index_cache[value] = index
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def record_many(self, values: Iterable[float]) -> None:
        """Bulk :meth:`record` — same state transitions, hoisted loop.

        Runs once per measurement chunk; the per-value work is the exact
        body of :meth:`record` with attribute lookups lifted out of the
        loop.  ``total`` accumulates left-to-right over ``values`` just
        like repeated ``record`` calls, so the float sum is bit-identical.
        """
        cache = self._index_cache
        cache_get = cache.get
        cache_max = self._INDEX_CACHE_MAX
        buckets = self._buckets
        buckets_get = buckets.get
        min_value = self.min_value_us
        log_growth = self._log_growth
        log = math.log
        ceil = math.ceil
        total = self.total
        vmin = self._min
        vmax = self._max
        added = 0
        for value in values:
            index = cache_get(value)
            if index is None:
                if value <= min_value:
                    if value < 0:
                        raise ReproError(f"negative latency {value!r}")
                    index = 0
                else:
                    ratio = log(value / min_value) / log_growth
                    index = max(1, int(ceil(ratio - 1e-9)))
                if len(cache) < cache_max:
                    cache[value] = index
            buckets[index] = buckets_get(index, 0) + 1
            added += 1
            total += value
            if value < vmin:
                vmin = value
            if value > vmax:
                vmax = value
        self.count += added
        self.total = total
        self._min = vmin
        self._max = vmax

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def _require_samples(self) -> None:
        if self.count == 0:
            raise ReproError("no samples recorded")

    @property
    def max(self) -> float:
        self._require_samples()
        return self._max

    @property
    def min(self) -> float:
        self._require_samples()
        return self._min

    def mean(self) -> float:
        self._require_samples()
        return self.total / self.count

    def percentile(self, pct: float) -> float:
        """Approximate percentile (0 < pct <= 100), within one bucket width.

        Returns the upper bound of the bucket containing the sample of
        rank ``ceil(pct/100 * count)``, clamped to the observed min/max so
        extreme percentiles stay inside the sampled range.
        """
        if not 0 < pct <= 100:
            raise ReproError("percentile must lie in (0, 100]")
        self._require_samples()
        rank = max(1, int(math.ceil(pct / 100.0 * self.count)))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                _, high = self.bucket_bounds(index)
                return min(max(high, self._min), self._max)
        return self._max  # pragma: no cover - unreachable

    def percentiles(
        self, pcts: Sequence[float] = DEFAULT_PERCENTILES
    ) -> Dict[float, float]:
        return {pct: self.percentile(pct) for pct in pcts}

    def summary(self) -> Dict[str, float]:
        """The headline quantiles: p50/p90/p99/p99.9/max (ISSUE set)."""
        self._require_samples()
        return {
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "p99.9": self.percentile(99.9),
            "max": self._max,
        }

    # ------------------------------------------------------------------
    # Composition / export
    # ------------------------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram (same geometry)."""
        if (other.growth, other.min_value_us) != (self.growth, self.min_value_us):
            raise ReproError("cannot merge histograms with different geometry")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def nonempty_buckets(self) -> List[Tuple[float, float, int]]:
        """``(low, high, count)`` for every occupied bucket, ascending."""
        return [
            (*self.bucket_bounds(index), self._buckets[index])
            for index in sorted(self._buckets)
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready export (geometry, totals, occupied buckets)."""
        return {
            "growth": self.growth,
            "min_value_us": self.min_value_us,
            "count": self.count,
            "total_us": self.total,
            "min_us": self._min if self.count else None,
            "max_us": self._max if self.count else None,
            "buckets": {str(i): n for i, n in sorted(self._buckets.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.count:
            return "LatencyHistogram(empty)"
        return (
            f"LatencyHistogram(n={self.count}, mean={self.mean():.1f}us, "
            f"p99={self.percentile(99.0):.1f}us, max={self._max:.1f}us)"
        )
