"""A seeded, deterministic skip list used as the memtable's ordered index.

LevelDB's memtable is a skip list; we implement the same structure rather
than leaning on a sorted container so the substrate matches the system the
paper modified.  Heights are drawn from a seeded RNG, making every run
reproducible.

The list maps ``bytes`` keys to arbitrary values, supports ordered
iteration, and seek-to-first-key-at-or-after for range scans.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

MAX_HEIGHT = 12
_BRANCHING = 4  # P(level promotion) = 1/4, as in LevelDB.


class _Node:
    __slots__ = ("key", "value", "next")

    def __init__(self, key: Optional[bytes], value: object, height: int) -> None:
        self.key = key
        self.value = value
        self.next: List[Optional["_Node"]] = [None] * height


class SkipList:
    """Ordered mapping from bytes keys to values.

    Example
    -------
    >>> sl = SkipList(seed=7)
    >>> sl.insert(b"b", 2); sl.insert(b"a", 1)
    >>> [key for key, _ in sl]
    [b'a', b'b']
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._head = _Node(None, None, MAX_HEIGHT)
        self._height = 1
        self._size = 0
        # Scratch predecessor buffer reused across inserts.  Safe because
        # _find_greater_or_equal fills every level < _height and insert
        # overwrites the levels being promoted into; stale entries above
        # the current height are never read.
        self._prev: List[_Node] = [self._head] * MAX_HEIGHT

    def __len__(self) -> int:
        return self._size

    def _random_height(self) -> int:
        height = 1
        while height < MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_greater_or_equal(
        self, key: bytes, prev_out: Optional[List[_Node]] = None
    ) -> Optional[_Node]:
        """Return the first node with ``node.key >= key``.

        When ``prev_out`` is given, fill it with the predecessor at every
        level (used by insert).
        """
        node = self._head
        level = self._height - 1
        while True:
            nxt = node.next[level]
            if nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
            else:
                if prev_out is not None:
                    prev_out[level] = node
                if level == 0:
                    return nxt
                level -= 1

    def _put(self, key: bytes, value: object) -> Tuple[bool, Optional[object]]:
        """Insert or overwrite in one traversal.

        Returns ``(was_new, previous_value)`` — the pair both public
        entry points need, so neither pays a second top-down search.
        """
        prev = self._prev
        found = self._find_greater_or_equal(key, prev)
        if found is not None and found.key == key:
            old = found.value
            found.value = value
            return False, old
        height = self._random_height()
        if height > self._height:
            for level in range(self._height, height):
                prev[level] = self._head
            self._height = height
        node = _Node(key, value, height)
        node_next = node.next
        for level in range(height):
            level_prev = prev[level]
            node_next[level] = level_prev.next[level]
            level_prev.next[level] = node
        self._size += 1
        return True, None

    def insert(self, key: bytes, value: object) -> bool:
        """Insert or overwrite; return True if the key was new."""
        return self._put(key, value)[0]

    def upsert(self, key: bytes, value: object) -> Optional[object]:
        """Insert or overwrite; return the replaced value (None if new).

        Indistinguishable outcomes when ``None`` is stored as a value —
        callers that store ``None`` should use :meth:`insert` instead.
        """
        return self._put(key, value)[1]

    def extend_sorted(self, pairs: Iterator[Tuple[bytes, object]]) -> int:
        """Append pairs whose keys strictly increase past the current tail.

        Bulk-load fast path (WAL recovery, tests): each pair is linked at
        the tail through per-level finger pointers — O(1) amortised, no
        top-down search.  Heights are drawn from the same seeded RNG as
        :meth:`insert`, so bulk loads are just as deterministic.  Raises
        ``ValueError`` if a key is not strictly greater than its
        predecessor (including the pre-existing last key).
        """
        tails: List[_Node] = [self._head] * MAX_HEIGHT
        node = self._head
        for level in reversed(range(MAX_HEIGHT)):
            nxt = node.next[level]
            while nxt is not None:
                node = nxt
                nxt = node.next[level]
            tails[level] = node
        last_key = node.key
        random_height = self._random_height
        count = 0
        for key, value in pairs:
            if last_key is not None and key <= last_key:
                raise ValueError(
                    f"extend_sorted requires strictly increasing keys: "
                    f"{key!r} after {last_key!r}"
                )
            height = random_height()
            if height > self._height:
                self._height = height
            node = _Node(key, value, height)
            for level in range(height):
                tails[level].next[level] = node
                tails[level] = node
            last_key = key
            count += 1
        self._size += count
        return count

    def get(self, key: bytes) -> Optional[object]:
        """Return the value stored under ``key``, or None."""
        node = self._find_greater_or_equal(key)
        if node is not None and node.key == key:
            return node.value
        return None

    def __contains__(self, key: bytes) -> bool:
        node = self._find_greater_or_equal(key)
        return node is not None and node.key == key

    def __iter__(self) -> Iterator[Tuple[bytes, object]]:
        node = self._head.next[0]
        while node is not None:
            yield node.key, node.value  # type: ignore[misc]
            node = node.next[0]

    def iter_from(self, key: bytes) -> Iterator[Tuple[bytes, object]]:
        """Iterate pairs in key order starting at the first key >= ``key``."""
        node = self._find_greater_or_equal(key)
        while node is not None:
            yield node.key, node.value  # type: ignore[misc]
            node = node.next[0]

    def first_key(self) -> Optional[bytes]:
        node = self._head.next[0]
        return None if node is None else node.key

    def last_key(self) -> Optional[bytes]:
        """Return the largest key (O(log n) walk along top levels)."""
        node = self._head
        for level in reversed(range(self._height)):
            while node.next[level] is not None:
                node = node.next[level]  # type: ignore[assignment]
        return node.key
