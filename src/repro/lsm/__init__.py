"""The LSM-tree engine substrate (a LevelDB-analogue in Python).

Exposes the database facade, configuration, and the building blocks the
paper's LDC policy plugs into.
"""

from .bloom import BloomFilter, theoretical_fpr
from .builder import SSTableBuilder, build_tables
from .cache import BlockCache
from .config import KIB, MIB, CostModel, LSMConfig
from .db import DB, WriteBatch
from .iterators import live_records, merge_records
from .keys import clamp_range, in_range, key_successor, ranges_overlap
from .memtable import MemTable
from .record import (
    KIND_DELETE,
    KIND_PUT,
    KVRecord,
    delete_record,
    drop_tombstones,
    newest_wins,
    put_record,
    visible_value,
)
from .skiplist import SkipList
from .sstable import SSTable
from .stats import EngineStats
from .version import VersionSet
from .wal import WriteAheadLog
from .compaction import (
    CompactionPolicy,
    ComposedPolicy,
    DelayedCompaction,
    LeveledCompaction,
    PolicySpec,
    SpecFactory,
    TieredCompaction,
    available_policies,
    get_spec,
    make_policy,
    register_policy,
    resolve_factory,
)

__all__ = [
    "DB",
    "WriteBatch",
    "LSMConfig",
    "CostModel",
    "KIB",
    "MIB",
    "MemTable",
    "SkipList",
    "SSTable",
    "SSTableBuilder",
    "build_tables",
    "BloomFilter",
    "BlockCache",
    "theoretical_fpr",
    "VersionSet",
    "WriteAheadLog",
    "EngineStats",
    "KVRecord",
    "KIND_PUT",
    "KIND_DELETE",
    "put_record",
    "delete_record",
    "newest_wins",
    "drop_tombstones",
    "visible_value",
    "merge_records",
    "live_records",
    "key_successor",
    "in_range",
    "ranges_overlap",
    "clamp_range",
    "CompactionPolicy",
    "ComposedPolicy",
    "PolicySpec",
    "SpecFactory",
    "available_policies",
    "get_spec",
    "make_policy",
    "register_policy",
    "resolve_factory",
    "LeveledCompaction",
    "TieredCompaction",
    "DelayedCompaction",
]
