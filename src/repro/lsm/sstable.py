"""SSTables: immutable sorted runs of records (Definition 2.3).

An :class:`SSTable` models one on-device file: a key-sorted sequence of
records laid out in fixed-size *data blocks*, plus in-memory metadata — the
key range, a per-block index, and a Bloom filter.  The engine holds the
records in Python lists (the data is real and checkable) while the *cost*
of touching them is expressed in blocks: a point lookup reads one data
block, a range read touches the blocks overlapping the range.  The device
model converts those block counts into virtual time.

Under LDC an SSTable can additionally carry:

* ``slice_links`` — slices of frozen upper-level files linked onto this
  (lower-level) file, waiting for the merge trigger (§III-B.1);
* ``frozen`` / ``refcount`` — state for files moved to the frozen region,
  recycled when their last linked slice has been merged (§III-B.2).
"""

from __future__ import annotations

import zlib
from bisect import bisect_left, bisect_right
from operator import attrgetter, itemgetter
from typing import List, Optional, Sequence, TYPE_CHECKING

from itertools import accumulate, islice

_record_key = itemgetter(0)
_record_seq = itemgetter(1)
_slice_link_seq = attrgetter("link_seq")

from .bloom import BloomFilter
from .config import LSMConfig
from .record import KVRecord, RECORD_OVERHEAD_BYTES
from ..errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..core.slice import Slice


class RecordView(Sequence[KVRecord]):
    """A zero-copy ``[start, stop)`` window over an SSTable's record list.

    ``records_in_range`` used to return a list slice — a fresh list per
    call, O(range length) even when the caller (a scan's streaming merge)
    consumes only the first few records.  This view keeps ``(backing,
    start, stop)`` instead: iteration walks the backing list lazily via
    ``islice`` (C-level), so a scan over a large tail pays only for the
    records it actually merges.  The backing list is immutable for the
    file's lifetime, which is what makes sharing it safe.
    """

    __slots__ = ("_backing", "_start", "_stop")

    def __init__(self, backing: List[KVRecord], start: int, stop: int) -> None:
        self._backing = backing
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __iter__(self):
        return islice(self._backing, self._start, self._stop)

    def __getitem__(self, index):
        length = self._stop - self._start
        if isinstance(index, slice):
            start, stop, step = index.indices(length)
            return self._backing[self._start + start:self._start + stop:step]
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("RecordView index out of range")
        return self._backing[self._start + index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RecordView({len(self)} records)"


class SSTable:
    """One immutable sorted file.

    Use :meth:`from_records` (or :class:`~repro.lsm.builder.SSTableBuilder`)
    to construct; records must be strictly increasing in key with exactly
    one version per key.
    """

    __slots__ = (
        "file_id",
        "_keys",
        "_records",
        "_seqs",
        "_sizes",
        "_size_prefix",
        "data_size",
        "_bloom",
        "_bloom_bits_per_key",
        "_block_starts",
        "_block_bytes",
        "slice_links",
        "_links_newest",
        "linked_bytes",
        "frozen",
        "refcount",
        "allowed_seeks",
        "min_key",
        "max_key",
        "max_seq",
        "_block_crcs",
    )

    def __init__(
        self,
        file_id: int,
        records: Sequence[KVRecord],
        block_bytes: int,
        bloom_bits_per_key: int,
        *,
        presorted: bool = False,
        sizes: Optional[List[int]] = None,
        keys: Optional[List[bytes]] = None,
        seqs: Optional[List[int]] = None,
    ) -> None:
        """Build a file over ``records``.

        ``presorted=True`` promises the records are already strictly
        key-sorted with one version per key (true for every compaction or
        flush output, which came out of a sorted merge) and, when
        ``records`` is a list, transfers ownership of it — the caller must
        not mutate it afterwards.  Sort validation is skipped on that path;
        it is one of the hottest loops in the simulator.

        ``sizes`` optionally supplies the per-record encoded sizes
        (``len(key) + len(value) + RECORD_OVERHEAD_BYTES``, in record
        order).  Builders already computed them to decide file cuts, so
        passing them through skips a recompute in this constructor — also
        a hot path, running once per flushed or compacted file.

        ``keys`` and ``seqs`` optionally supply the corresponding record
        columns (the columnar merge emits them alongside the records), with
        the same ownership transfer as ``records``.  They let the
        constructor skip the per-record column extraction entirely.
        """
        if not records:
            raise EngineError("an SSTable must contain at least one record")
        self.file_id = file_id
        if presorted and type(records) is list:
            self._records = records
        else:
            self._records = list(records)
        records_list = self._records
        if keys is None:
            keys = list(map(_record_key, records_list))
        self._keys = keys
        if not presorted:
            for left, right in zip(keys, keys[1:]):
                if left >= right:
                    raise EngineError(
                        f"SSTable records must be strictly key-sorted; "
                        f"{left!r} !< {right!r}"
                    )
        # Per-record encoded sizes, computed once (len(key) + len(value) +
        # overhead, inlined from KVRecord.encoded_size) and reused for the
        # prefix sums, the block layout and as a merge-input column.
        # _size_prefix[i] is the total size of records[0:i], making
        # bytes_in_range O(log n).
        if sizes is None:
            sizes = [
                len(record.key) + len(record.value) + RECORD_OVERHEAD_BYTES
                for record in records_list
            ]
        self._sizes = sizes
        self._size_prefix = list(accumulate(sizes, initial=0))
        self.data_size = self._size_prefix[-1]
        # Plain attributes, not properties: the key range is immutable and
        # covers_key / version routing read these millions of times.
        self.min_key = keys[0]
        self.max_key = keys[-1]
        # Bloom filter, built lazily on first probe: the bits are a pure
        # function of (keys, bits_per_key) so deferral is unobservable,
        # construction carries no virtual-time charge, and write-heavy
        # runs create thousands of short-lived files whose filters are
        # never consulted before compaction consumes them.
        self._bloom: Optional[BloomFilter] = None
        self._bloom_bits_per_key = bloom_bits_per_key
        self._block_starts, self._block_bytes = self._build_blocks(block_bytes)
        # LevelDB's seek-compaction budget: after this many unproductive
        # probes the file becomes a compaction candidate (a file probed
        # often but rarely hit is cheaper merged than repeatedly seeked).
        # LevelDB uses size/16KB clamped to >= 100.
        self.allowed_seeks = max(100, self.data_size // (16 * 1024))
        # LDC state (inert under UDC/tiered policies).  ``linked_bytes``
        # caches the byte total of ``slice_links``: once linked, upper-level
        # data counts toward *this* file's level for compaction scoring
        # (§III-A).  Maintained by attach_slice / the merge phase.
        self.slice_links: List["Slice"] = []
        self._links_newest: Optional[List["Slice"]] = None
        self.linked_bytes = 0
        self.frozen = False
        self.refcount = 0
        # Highest sequence number stored in this file.  Recovery rebuilds
        # the engine's next-sequence counter from the max over live files
        # (plus replayed WAL records), so acknowledged seqs never repeat.
        self._seqs = seqs
        self.max_seq = (
            max(seqs) if seqs is not None else max(map(_record_seq, records_list))
        )
        # Per-block CRCs, computed lazily: fault-free runs never pay for
        # them, decode paths under fault injection verify against the
        # device's delivered (possibly bit-flipped) copy.
        self._block_crcs: Optional[List[Optional[int]]] = None

    @classmethod
    def from_records(
        cls,
        file_id: int,
        records: Sequence[KVRecord],
        config: LSMConfig,
        *,
        presorted: bool = False,
        sizes: Optional[List[int]] = None,
        keys: Optional[List[bytes]] = None,
        seqs: Optional[List[int]] = None,
    ) -> "SSTable":
        """Build an SSTable using the config's block and Bloom settings."""
        return cls(
            file_id,
            records,
            config.block_bytes,
            config.bloom_bits_per_key,
            presorted=presorted,
            sizes=sizes,
            keys=keys,
            seqs=seqs,
        )

    def _build_blocks(self, block_bytes: int) -> tuple[List[int], List[int]]:
        """Partition the record array into blocks of ~``block_bytes`` each.

        Greedy layout: a block closes with the first record that pushes its
        cumulative size to ``block_bytes``.  Record sizes are strictly
        positive, so the size prefix is strictly increasing and each cut
        point is a single ``bisect`` instead of a per-record Python loop —
        same blocks, O(blocks log n).
        """
        prefix = self._size_prefix
        starts: List[int] = []
        sizes: List[int] = []
        push_start = starts.append
        push_size = sizes.append
        n = len(prefix) - 1
        index = 0
        while index < n:
            push_start(index)
            threshold = prefix[index] + block_bytes
            stop = bisect_left(prefix, threshold, index + 1)
            if stop > n:
                stop = n
            push_size(prefix[stop] - prefix[index])
            index = stop
        return starts, sizes

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def bloom(self) -> BloomFilter:
        """The file's Bloom filter, constructed on first access."""
        built = self._bloom
        if built is None:
            built = self._bloom = BloomFilter(
                self._keys, self._bloom_bits_per_key
            )
        return built

    @property
    def num_records(self) -> int:
        return len(self._records)

    @property
    def num_blocks(self) -> int:
        return len(self._block_starts)

    @property
    def records(self) -> Sequence[KVRecord]:
        """Read-only view of all records (test and merge helper)."""
        return self._records

    @property
    def seqs(self) -> List[int]:
        """The sequence-number column, materialised on first use.

        Compaction and flush outputs arrive with the column prebuilt (the
        columnar merge emits it); only files built from raw record lists
        (tests, recovery) pay the one-off extraction here.
        """
        column = self._seqs
        if column is None:
            column = self._seqs = list(map(_record_seq, self._records))
        return column

    def columns_window(self) -> tuple:
        """The whole file as a columnar merge window.

        Returns ``(keys, records, seqs, sizes, start, stop)`` — the
        parallel column arrays plus the half-open index window — the input
        representation of :func:`repro.lsm.compaction.columnar.
        merge_windows`.  The arrays are the file's own immutable columns;
        callers must not mutate them.
        """
        records = self._records
        return (self._keys, records, self.seqs, self._sizes, 0, len(records))

    def covers_key(self, key: bytes) -> bool:
        return self.min_key <= key <= self.max_key

    def links_newest_first(self) -> List["Slice"]:
        """Slice links in read-priority order (latest ``link_seq`` first).

        Cached between link mutations: every point lookup touching a
        linked file consults this order, while links change only at LDC
        link/merge rounds (``attach_slice`` / ``detach_all_slices``
        invalidate the cache).  Callers must not mutate the result.
        """
        cached = self._links_newest
        if cached is None:
            cached = sorted(
                self.slice_links, key=_slice_link_seq, reverse=True
            )
            self._links_newest = cached
        return cached

    # ------------------------------------------------------------------
    # Point lookups
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[KVRecord]:
        """Return the record stored under ``key`` (tombstones included)."""
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return self._records[index]
        return None

    def block_for_key(self, key: bytes) -> Optional[tuple[int, int]]:
        """The ``(block_index, nbytes)`` a point lookup of ``key`` reads.

        Returns None when ``key`` falls outside this file's range.
        """
        if not self.covers_key(key):
            return None
        index = bisect_left(self._keys, key)
        if index == len(self._keys):
            index -= 1
        block = bisect_right(self._block_starts, index) - 1
        return block, self._block_bytes[block]

    def block_bytes_for_key(self, key: bytes) -> int:
        """Device bytes a point lookup of ``key`` must read (one block)."""
        located = self.block_for_key(key)
        return 0 if located is None else located[1]

    def blocks_in_range(
        self, lo: Optional[bytes], hi: Optional[bytes]
    ) -> List[tuple[int, int]]:
        """All ``(block_index, nbytes)`` pairs touched by ``[lo, hi)``."""
        start, stop = self._index_range(lo, hi)
        if stop <= start:
            return []
        first_block = bisect_right(self._block_starts, start) - 1
        last_block = bisect_right(self._block_starts, stop - 1) - 1
        return [
            (block, self._block_bytes[block])
            for block in range(first_block, last_block + 1)
        ]

    # ------------------------------------------------------------------
    # Range queries (half-open [lo, hi), None = unbounded)
    # ------------------------------------------------------------------
    def _index_range(self, lo: Optional[bytes], hi: Optional[bytes]) -> tuple[int, int]:
        start = 0 if lo is None else bisect_left(self._keys, lo)
        stop = len(self._keys) if hi is None else bisect_left(self._keys, hi)
        return start, stop

    def records_in_range(
        self, lo: Optional[bytes], hi: Optional[bytes]
    ) -> Sequence[KVRecord]:
        """All records with keys in ``[lo, hi)`` (a zero-copy key-sorted view)."""
        start, stop = self._index_range(lo, hi)
        return RecordView(self._records, start, stop)

    def count_in_range(self, lo: Optional[bytes], hi: Optional[bytes]) -> int:
        start, stop = self._index_range(lo, hi)
        return max(0, stop - start)

    def bytes_in_range(self, lo: Optional[bytes], hi: Optional[bytes]) -> int:
        """Encoded size of the records in ``[lo, hi)`` (slice sizing)."""
        start, stop = self._index_range(lo, hi)
        if stop <= start:
            return 0
        return self._size_prefix[stop] - self._size_prefix[start]

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def block_crc(self, block: int) -> int:
        """CRC32 of one data block's records (computed lazily, cached).

        Decode paths under fault injection compare this *stored* checksum
        against the one delivered by the device (stored XOR the injected
        bit-flip mask) and raise
        :class:`~repro.errors.CorruptionError` on mismatch.
        """
        crcs = self._block_crcs
        if crcs is None:
            crcs = self._block_crcs = [None] * len(self._block_starts)
        cached = crcs[block]
        if cached is not None:
            return cached
        start = self._block_starts[block]
        stop = (
            self._block_starts[block + 1]
            if block + 1 < len(self._block_starts)
            else len(self._records)
        )
        crc = 0
        for record in self._records[start:stop]:
            crc = zlib.crc32(record.key, crc)
            crc = zlib.crc32(record.value, crc)
            crc = zlib.crc32(record.seq.to_bytes(8, "big"), crc)
        crcs[block] = crc
        return crc

    def block_bytes_in_range(self, lo: Optional[bytes], hi: Optional[bytes]) -> int:
        """Device bytes needed to read every record in ``[lo, hi)``.

        Whole blocks are the unit of I/O, so a range touching part of a
        block pays for the full block — this is exactly the extra cost LDC
        accepts when it reads a *slice* of a frozen file instead of the
        whole file.
        """
        return sum(nbytes for _, nbytes in self.blocks_in_range(lo, hi))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "frozen" if self.frozen else "active"
        return (
            f"SSTable(id={self.file_id}, {state}, n={self.num_records}, "
            f"range=[{self.min_key!r}..{self.max_key!r}], "
            f"links={len(self.slice_links)})"
        )
