"""Record types: user keys, sequence numbers, and tombstones.

Every mutation (put or delete) receives a globally increasing *sequence
number*.  Compactions — and in particular LDC's out-of-order merges, which
may consume slices frozen at different times — resolve duplicate user keys
by keeping the record with the highest sequence number.  Deletes are
*tombstones*: records with ``kind == KIND_DELETE`` that shadow older puts
until a compaction into the bottom-most data drops them.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional

# Record kinds.  Values chosen so that a tombstone is falsy-looking but the
# comparisons below never rely on that; explicit checks only.
KIND_PUT = 1
KIND_DELETE = 0

#: Fixed per-record metadata overhead used when estimating on-device size:
#: 8-byte sequence number + 1-byte kind + two 2-byte length prefixes.
RECORD_OVERHEAD_BYTES = 13


class KVRecord(NamedTuple):
    """One versioned key-value record.

    Sorting a list of ``KVRecord`` tuples orders by ``(key, seq, ...)``;
    merge code that wants newest-first per key sorts by ``(key, -seq)``
    explicitly rather than relying on tuple order.
    """

    key: bytes
    seq: int
    kind: int
    value: bytes

    @property
    def is_tombstone(self) -> bool:
        return self.kind == KIND_DELETE

    @property
    def encoded_size(self) -> int:
        """Approximate on-device footprint of this record in bytes."""
        return len(self.key) + len(self.value) + RECORD_OVERHEAD_BYTES


def put_record(key: bytes, value: bytes, seq: int) -> KVRecord:
    """Build a PUT record."""
    return KVRecord(key, seq, KIND_PUT, value)


def delete_record(key: bytes, seq: int) -> KVRecord:
    """Build a DELETE tombstone record."""
    return KVRecord(key, seq, KIND_DELETE, b"")


def newest_wins(records: Iterable[KVRecord]) -> List[KVRecord]:
    """Collapse a key-sorted record stream to one record per user key.

    Input must be sorted by key (ties in any seq order); output is sorted by
    key with only the highest-sequence record retained per key.  This is the
    deduplication step of every compaction merge.
    """
    result: List[KVRecord] = []
    for record in records:
        if result and result[-1].key == record.key:
            if record.seq > result[-1].seq:
                result[-1] = record
        else:
            result.append(record)
    return result


def drop_tombstones(records: Iterable[KVRecord]) -> List[KVRecord]:
    """Remove tombstones from a deduplicated stream.

    Only safe when the output lands in the bottom-most data for its key
    range — otherwise an older PUT in a deeper level would resurface.
    """
    return [record for record in records if not record.is_tombstone]


def visible_value(record: Optional[KVRecord]) -> Optional[bytes]:
    """Map a located record to the user-visible value (None if deleted)."""
    if record is None or record.is_tombstone:
        return None
    return record.value
