"""Columnar k-way merge: the compaction fast path.

Compaction inputs are immutable SSTables (or LDC slices of them) whose
records are already strictly key-sorted with one version per key.  The
legacy merge pooled every input record into one list, sorted it, and
deduplicated through a dict — O(total log total) with a per-record Python
object touch for every input record, including the vast majority that
pass through a merge untouched.

This module merges the inputs *columnar*: each input is a ``(keys,
records, seqs, sizes, start, stop)`` window over an SSTable's parallel
column arrays (see :meth:`~repro.lsm.sstable.SSTable.columns_window`).
The merge keeps a heap of stream heads, but instead of advancing one
record at a time it *gallops*: while the smallest stream's keys stay
below every other stream's head key, the whole run is located with one
``bisect`` and bulk-copied into the output columns with C-level
``extend`` — ``heapreplace`` happens only at run boundaries.  Equal head
keys (the only place versions can collide, since keys are unique within
a file) are resolved explicitly: the highest sequence number wins,
exactly the newest-wins semantics of the legacy sort-and-dedup merge.

Galloping pays off when streams cover mostly disjoint key runs (LDC
slice merges, partitioned lower levels); under uniformly random keys the
runs collapse to a record or two and the per-boundary Python work loses
to one C-level Timsort of the pooled records.  The merge is therefore
*adaptive*: it gallops, but after a fixed number of heap rounds checks
the realised run length and, when the streams turn out to be finely
interleaved, finishes the remainder with the pooled sort-and-dedup path
(every remaining key is strictly greater than everything emitted, so the
two phases concatenate exactly).

The output is again columns — ``(keys, records, seqs, sizes)`` — which
feed :func:`~repro.lsm.builder.build_balanced_columns` and the columnar
:class:`~repro.lsm.sstable.SSTable` constructor without ever
re-extracting a per-record field.  Byte-identity with the legacy merge
is pinned by the golden/differential suites and by the randomized
equivalence test in ``tests/test_columnar_merge.py``.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heapify, heappop, heappush, heapreplace
from operator import itemgetter
from typing import List, Sequence, Tuple

from ..record import RECORD_OVERHEAD_BYTES

#: Merged output columns: (keys, records, seqs, sizes).
MergedColumns = Tuple[List[bytes], List[tuple], List[int], List[int]]

#: One merge input: (keys, records, seqs, sizes, start, stop).
Window = Tuple[Sequence, Sequence, Sequence, Sequence, int, int]

_record_key = itemgetter(0)
_record_seq = itemgetter(1)

#: Heap rounds to sample before judging the interleaving, and the
#: minimum emitted-records-per-round below which the pooled sort wins.
_ADAPT_CHECK_ROUNDS = 24
_ADAPT_MIN_RUN = 4


def merge_windows(windows: Sequence[Window]) -> MergedColumns:
    """Merge columnar windows, newest version per key, key-ascending.

    Equivalent to pooling every window's records, sorting by ``(key,
    seq)`` and keeping the highest-sequence record per key — sequence
    numbers are store-unique, so the winner is well defined.  Tombstones
    are preserved (dropping them is the caller's decision).
    """
    sources: List[list] = []
    heap: List[Tuple[bytes, int]] = []
    for keys, records, seqs, sizes, start, stop in windows:
        if start < stop:
            heap.append((keys[start], len(sources)))
            sources.append([keys, records, seqs, sizes, start, stop])

    out_keys: List[bytes] = []
    out_records: List[tuple] = []
    out_seqs: List[int] = []
    out_sizes: List[int] = []
    if not heap:
        return out_keys, out_records, out_seqs, out_sizes

    extend_keys = out_keys.extend
    extend_records = out_records.extend
    extend_seqs = out_seqs.extend
    extend_sizes = out_sizes.extend
    append_key = out_keys.append
    append_record = out_records.append
    append_seq = out_seqs.append
    append_size = out_sizes.append

    heapify(heap)
    rounds = 0
    check_at = _ADAPT_CHECK_ROUNDS
    while heap:
        if len(heap) == 1:
            # Last live stream: its remaining run cannot collide with
            # anything — bulk-copy the tail and finish.
            keys, records, seqs, sizes, pos, stop = sources[heap[0][1]]
            extend_keys(keys[pos:stop])
            extend_records(records[pos:stop])
            extend_seqs(seqs[pos:stop])
            extend_sizes(sizes[pos:stop])
            break
        rounds += 1
        if rounds == check_at:
            if len(out_keys) < rounds * _ADAPT_MIN_RUN:
                # Finely interleaved streams: galloping degenerates to
                # record-at-a-time heap churn.  Hand the remainder to the
                # C-level pooled sort — every remaining key is strictly
                # greater than everything emitted so far.
                _pooled_remainder(
                    sources, heap, extend_keys, extend_records,
                    extend_seqs, extend_sizes,
                )
                break
            check_at = 0  # committed to galloping; never re-check
        head_key, index = heap[0]
        # The second-smallest head key bounds the current stream's safe
        # run; in a binary heap it is one of the root's two children.
        if len(heap) == 2:
            boundary = heap[1][0]
        else:
            left = heap[1][0]
            right = heap[2][0]
            boundary = left if left <= right else right
        source = sources[index]
        keys, records, seqs, sizes, pos, stop = source
        if head_key != boundary:
            # Every key in [pos, cut) is < boundary, hence unique to this
            # stream: one bisect finds the run, C-level copies emit it.
            cut = bisect_left(keys, boundary, pos + 1, stop)
            if cut - pos == 1:
                append_key(head_key)
                append_record(records[pos])
                append_seq(seqs[pos])
                append_size(sizes[pos])
            else:
                extend_keys(keys[pos:cut])
                extend_records(records[pos:cut])
                extend_seqs(seqs[pos:cut])
                extend_sizes(sizes[pos:cut])
            if cut < stop:
                source[4] = cut
                heapreplace(heap, (keys[cut], index))
            else:
                heappop(heap)
            continue
        # Run boundary with a key collision: two or more streams hold the
        # same head key.  The highest sequence number is the newest
        # version and survives; every tied stream advances one record.
        tied = [heappop(heap)]
        while heap and heap[0][0] == head_key:
            tied.append(heappop(heap))
        best = None
        best_seq = -1
        for _, tied_index in tied:
            tied_source = sources[tied_index]
            tied_seq = tied_source[2][tied_source[4]]
            if tied_seq > best_seq:
                best_seq = tied_seq
                best = tied_source
        best_pos = best[4]
        append_key(head_key)
        append_record(best[1][best_pos])
        append_seq(best_seq)
        append_size(best[3][best_pos])
        for _, tied_index in tied:
            tied_source = sources[tied_index]
            advanced = tied_source[4] + 1
            if advanced < tied_source[5]:
                tied_source[4] = advanced
                heappush(heap, (tied_source[0][advanced], tied_index))
    return out_keys, out_records, out_seqs, out_sizes


def _pooled_remainder(
    sources, heap, extend_keys, extend_records, extend_seqs, extend_sizes
):
    """Finish a merge with the legacy pooled sort, emitting columns.

    Pools the unconsumed ``[pos, stop)`` tail of every stream still on
    the heap, sorts once (``KVRecord`` tuples order by ``(key, seq)``)
    and deduplicates through a dict — last insertion per key wins, which
    in ascending ``(key, seq)`` order is the highest sequence number.
    The sort and the dict run at C speed; only the output-side column
    extraction touches Python per record, and only for survivors.
    """
    pooled: List[tuple] = []
    pool = pooled.extend
    for _, index in heap:
        _, records, _, _, pos, stop = sources[index]
        pool(records[pos:stop])
    pooled.sort()
    newest = {record[0]: record for record in pooled}
    merged = list(newest.values())
    extend_records(merged)
    extend_keys(map(_record_key, merged))
    extend_seqs(map(_record_seq, merged))
    extend_sizes(
        [
            len(record[0]) + len(record[3]) + RECORD_OVERHEAD_BYTES
            for record in merged
        ]
    )
