"""Orthogonal compaction primitives: trigger × selector × movement × layout.

Sarkar et al. ("Constructing and Analyzing the LSM Compaction Design
Space", PAPERS.md) observe that every LSM compaction policy decomposes
into four orthogonal decisions:

* **Trigger** — *when* to compact (level fanout breach, tier/run count,
  L0 file count, seek-driven probes, a delayed batching threshold);
* **CandidateSelector** — *what granularity* participates (one file, a
  whole level, all runs of a tier, LDC's lower-level-driven slice unit);
* **DataMovement** — *how* data moves (full merge down, tiered run
  stacking, absorbing merges into a leveled floor, LDC link/absorb,
  trivial moves);
* **Layout** — *what shape* levels take (sorted-and-disjoint leveled
  runs vs overlapping tiered runs).

Each axis has its own registry; :class:`~repro.lsm.compaction.spec.
PolicySpec` names one primitive per axis (plus parameters) and
:class:`~repro.lsm.compaction.composed.ComposedPolicy` runs the
composition.  The four legacy policies (UDC / LDC / tiered / delayed)
are byte-identical compositions of the primitives in this module plus
the LDC movement in :mod:`repro.core.primitives` — pinned by the golden
and differential suites — and new points in the design space (lazy
leveling, partial leveled, tiered+leveled hybrids) are new
compositions, not new classes.
"""

from __future__ import annotations

from typing import (
    ClassVar,
    Dict,
    List,
    NamedTuple,
    Optional,
    Tuple,
    Type,
)

from ..keys import key_successor
from ..sstable import SSTable
from ...errors import ConfigError
from ...obs.events import EV_TRIVIAL_MOVE

# ----------------------------------------------------------------------
# Per-axis registries
# ----------------------------------------------------------------------
TRIGGERS: Dict[str, Type["Trigger"]] = {}
SELECTORS: Dict[str, Type["CandidateSelector"]] = {}
MOVEMENTS: Dict[str, Type["DataMovement"]] = {}
LAYOUTS: Dict[str, Type["Layout"]] = {}

_KIND_REGISTRIES: Dict[str, Dict[str, type]] = {
    "trigger": TRIGGERS,
    "selector": SELECTORS,
    "movement": MOVEMENTS,
    "layout": LAYOUTS,
}


def register_primitive(kind: str, name: str):
    """Class decorator registering a primitive under ``kind``/``name``."""
    registry = _KIND_REGISTRIES[kind]

    def decorator(cls: type) -> type:
        if name in registry:
            raise ConfigError(f"{kind} primitive {name!r} already registered")
        cls.kind = kind
        cls.primitive_name = name
        registry[name] = cls
        return cls

    return decorator


def primitive_class(kind: str, name: str) -> type:
    """Resolve one primitive class; raises ``KeyError`` on a miss."""
    return _KIND_REGISTRIES[kind][name]


def known_primitives(kind: str) -> Tuple[str, ...]:
    return tuple(sorted(_KIND_REGISTRIES[kind]))


def resolve_leveled_boundary(num_levels: int, value: Optional[int]) -> int:
    """Resolve a ``leveled_from_level`` knob against the tree's depth.

    ``None`` means "no leveled floor" (pure tiering), negative values
    count from the bottom (``-1`` = only the last level is leveled), and
    the result is clamped so Level 0 — whose files always overlap —
    can never be declared leveled.
    """
    if value is None:
        return num_levels
    if value < 0:
        return max(1, num_levels + value)
    return max(1, value)


class TriggerDecision(NamedTuple):
    """A trigger's verdict: compact ``level``, optionally seeded."""

    level: int
    seed: Optional[SSTable] = None


# ----------------------------------------------------------------------
# Axis base classes
# ----------------------------------------------------------------------
class Primitive:
    """Base for all four axes: attached to its owning composed policy."""

    #: Parameter names this primitive accepts from ``PolicySpec.params``.
    PARAMS: ClassVar[Tuple[str, ...]] = ()
    #: Layout requirement: True = needs sorted levels, False = needs
    #: overlapping (tiered) levels, None = works with either.
    REQUIRES_SORTED: ClassVar[Optional[bool]] = None
    kind: ClassVar[str] = "primitive"
    primitive_name: ClassVar[str] = "abstract"

    def __init__(self) -> None:
        self.policy = None
        #: The owning DB, bound at :meth:`attach`.  A plain attribute, not
        #: a property: primitives consult it on every maintenance pass
        #: (once per user operation), so the resolution through
        #: ``policy._db`` is paid once at attach time.
        self.db = None

    def attach(self, policy) -> None:
        """Bind to the owning :class:`ComposedPolicy` (after DB attach)."""
        self.policy = policy
        self.db = policy._db

    def describe(self) -> str:
        return f"{self.kind}:{self.primitive_name}"


class Trigger(Primitive):
    """Decides *when* (and against which level) to compact."""

    kind = "trigger"

    def fire(self) -> Optional[TriggerDecision]:
        """Return the level to compact now, or None if the tree is fine."""
        raise NotImplementedError

    def note_seek_exhausted(self, table: SSTable) -> None:
        """A file's unproductive-probe budget ran out; default: ignore."""


class CandidateSelector(Primitive):
    """Decides *what granularity* of data participates in a round."""

    kind = "selector"
    #: What the selector hands to the movement: "files" (a flat SSTable
    #: list), "runs" (a list of runs), or "ldc_unit" (a tagged table).
    CANDIDATE: ClassVar[str] = "files"

    def select(self, level: int, seed: Optional[SSTable] = None):
        raise NotImplementedError


class DataMovement(Primitive):
    """Decides *how* the selected data physically moves."""

    kind = "movement"
    #: Candidate shapes this movement can execute (must include the
    #: composed selector's ``CANDIDATE``).
    ACCEPTS: ClassVar[Tuple[str, ...]] = ("files",)
    #: True for movements with zero-I/O metadata actions (LDC links):
    #: the composed loop batches free actions until one bears I/O.
    zero_io_batching: ClassVar[bool] = False
    #: True when ``urgent_round`` / the composed decision depend only on
    #: tree structure and movement state mutated by rounds or operation
    #: notifications.  The engine then caches a "no maintenance due"
    #: verdict between structural changes instead of re-polling the
    #: policy on every user operation.  Set False for movements whose
    #: decisions read ambient state (e.g. the clock) that moves without
    #: a structural change.
    IDLE_STABLE: ClassVar[bool] = True

    def urgent_round(self) -> bool:
        """Movement-internal debt that preempts the trigger (LDC merges)."""
        return False

    def execute(self, level: int, candidate) -> bool:
        """Execute one round; True when the round performed I/O."""
        raise NotImplementedError

    def on_operation(self, is_write: bool) -> None:
        """Observe one user operation (adaptive controllers)."""

    def extra_space_bytes(self) -> int:
        """Movement-held space outside the tree (LDC's frozen region)."""
        return 0

    def check_invariants(self) -> None:
        """Verify movement-internal bookkeeping; raise on violation."""


class Layout(Primitive):
    """Decides the shape of levels: sorted-disjoint or overlapping runs."""

    kind = "layout"
    sorted_levels: ClassVar[bool] = True


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def expand_level0(version, seed: SSTable) -> List[SSTable]:
    """Grow a Level-0 input set to all transitively overlapping files.

    Level-0 files overlap each other, so a compaction must take every
    file whose range touches the seed's (transitively), or newer
    versions of a key could be left behind while older ones descend.
    """
    chosen = {seed.file_id: seed}
    lo, hi = seed.min_key, key_successor(seed.max_key)
    changed = True
    while changed:
        changed = False
        for table in version.overlapping(0, lo, hi):
            if table.file_id not in chosen:
                chosen[table.file_id] = table
                lo = min(lo, table.min_key)
                hi = max(hi, key_successor(table.max_key))
                changed = True
    return sorted(chosen.values(), key=lambda table: table.file_id)


# ----------------------------------------------------------------------
# Triggers
# ----------------------------------------------------------------------
@register_primitive("trigger", "fanout")
class FanoutTrigger(Trigger):
    """LevelDB's size trigger: the most over-capacity level compacts.

    Covers the L0 file-count trigger too (``pick_compaction_level``
    scores Level 0 by file count) and, with ``honor_seeks``, LevelDB's
    seek-driven compaction of over-probed files.
    """

    PARAMS = ("honor_seeks",)

    def __init__(self, honor_seeks: bool = False) -> None:
        super().__init__()
        self.honor_seeks = bool(honor_seeks)
        # Files whose unproductive-probe budget ran out, awaiting a
        # seek-triggered compaction (only populated when both this
        # trigger and the config enable seek compaction).
        self._seek_candidates: List[SSTable] = []

    def note_seek_exhausted(self, table: SSTable) -> None:
        if self.honor_seeks and self.db.config.seek_compaction_enabled:
            self._seek_candidates.append(table)

    def fire(self) -> Optional[TriggerDecision]:
        decision = self._seek_decision()
        if decision is not None:
            return decision
        level = self.db.version.pick_compaction_level()
        if level is None:
            return None
        return TriggerDecision(level)

    def _seek_decision(self) -> Optional[TriggerDecision]:
        """LevelDB's seek compaction: merge an over-probed file down."""
        version = self.db.version
        while self._seek_candidates:
            table = self._seek_candidates.pop()
            if not version.contains(table):
                continue  # already compacted away by a size trigger
            level = version.level_of(table)
            if level >= version.num_levels - 1:
                continue  # nothing below to merge into
            self.policy.bump("seek_compactions")
            return TriggerDecision(level, seed=table)
        return None


@register_primitive("trigger", "l0_count")
class L0CountTrigger(Trigger):
    """Fires only on the Level-0 file-count trigger; deeper levels never
    compact.  A degenerate corner of the design space, useful for
    isolating flush pressure in experiments."""

    def fire(self) -> Optional[TriggerDecision]:
        version = self.db.version
        if len(version.files(0)) >= self.db.config.l0_compaction_trigger:
            return TriggerDecision(0)
        return None


@register_primitive("trigger", "delayed")
class DelayedTrigger(Trigger):
    """dCompaction's delayed trigger: a level must overflow its capacity
    by ``delay_factor`` before it compacts (Level 0 keeps the ordinary
    trigger — letting L0 grow by the delay factor would collide with the
    slowdown/stop stalls and measure the stall model rather than the
    compaction schedule)."""

    PARAMS = ("delay_factor",)

    def __init__(self, delay_factor: float = 3.0) -> None:
        super().__init__()
        if delay_factor < 1.0:
            raise ConfigError("delay_factor must be at least 1")
        self.delay_factor = delay_factor

    def fire(self) -> Optional[TriggerDecision]:
        version = self.db.version
        if len(version.files(0)) >= self.db.config.l0_compaction_trigger:
            return TriggerDecision(0)
        best_level: Optional[int] = None
        best_score = self.delay_factor
        for level in range(1, version.num_levels - 1):
            score = version.level_score(level)
            if score >= best_score:
                best_score = score
                best_level = level
        if best_level is None:
            return None
        return TriggerDecision(best_level)


@register_primitive("trigger", "tier_count")
class TierCountTrigger(Trigger):
    """Tiered trigger: a level compacts when it holds ``fan_out`` runs.

    Level 0 uses the LevelDB file-count trigger so flush pressure behaves
    the same across policies.  With ``leveled_from_level`` set, levels at
    or past the boundary are leveled (single sorted run, kept there by an
    absorbing movement) and trigger on their *size score* instead — run
    count would sit at one forever and the level would grow unboundedly.
    This is the trigger half of lazy leveling and tiered+leveled hybrids.
    """

    PARAMS = ("leveled_from_level",)
    REQUIRES_SORTED = False

    def __init__(self, leveled_from_level: Optional[int] = None) -> None:
        super().__init__()
        self.leveled_from_level = leveled_from_level

    def fire(self) -> Optional[TriggerDecision]:
        version = self.db.version
        if len(version.files(0)) >= self.db.config.l0_compaction_trigger:
            return TriggerDecision(0)
        boundary = resolve_leveled_boundary(
            version.num_levels, self.leveled_from_level
        )
        fan_out = self.db.config.fan_out
        for level in range(1, version.num_levels - 1):
            if level < boundary:
                if len(self.policy.layout.level_runs(level)) >= fan_out:
                    return TriggerDecision(level)
            elif version.level_score(level) >= 1.0:
                return TriggerDecision(level)
        return None


# ----------------------------------------------------------------------
# Candidate selectors
# ----------------------------------------------------------------------
@register_primitive("selector", "file")
class RoundRobinFileSelector(CandidateSelector):
    """One file, round-robin over the key space (LevelDB's pick).

    At Level 0 the single file grows to its transitive overlap closure —
    the minimum sound L0 input set.  A trigger-provided seed (seek
    compaction) replaces the round-robin pick.
    """

    CANDIDATE = "files"

    def select(self, level: int, seed: Optional[SSTable] = None):
        version = self.db.version
        if seed is None:
            seed = version.pick_file_round_robin(level)
        if level == 0:
            return expand_level0(version, seed)
        return [seed]


@register_primitive("selector", "level")
class WholeLevelSelector(CandidateSelector):
    """Every file of the triggered level at once (dCompaction's batch)."""

    CANDIDATE = "files"

    def select(self, level: int, seed: Optional[SSTable] = None):
        return list(self.db.version.files(level))


@register_primitive("selector", "runs")
class RunSelector(CandidateSelector):
    """All sorted runs of the triggered level (tiered granularity)."""

    CANDIDATE = "runs"
    REQUIRES_SORTED = False

    def select(self, level: int, seed: Optional[SSTable] = None):
        return self.policy.layout.level_runs(level)


# ----------------------------------------------------------------------
# Data movements
# ----------------------------------------------------------------------
@register_primitive("movement", "merge_down")
class MergeDownMovement(DataMovement):
    """Classic merge-down: inputs merge with every overlapping file one
    level deeper; a lone input with no overlaps is trivially re-parented.

    The counter/bookkeeping knobs exist because UDC and dCompaction
    account the *same* physical movement differently (UDC advances the
    round-robin pointer, emits trivial-move trace events and counts
    ``compactions``; the delayed batcher does none of those) — the
    goldens pin those differences.
    """

    PARAMS = (
        "advance_pointer",
        "strict_l0_move",
        "emit_trivial_event",
        "round_counter",
        "input_counter",
    )
    ACCEPTS = ("files",)
    REQUIRES_SORTED = True

    def __init__(
        self,
        advance_pointer: bool = True,
        strict_l0_move: bool = True,
        emit_trivial_event: bool = True,
        round_counter: str = "compactions",
        input_counter: str = "input_files",
    ) -> None:
        super().__init__()
        self.advance_pointer = bool(advance_pointer)
        self.strict_l0_move = bool(strict_l0_move)
        self.emit_trivial_event = bool(emit_trivial_event)
        self.round_counter = round_counter
        self.input_counter = input_counter

    def execute(self, level: int, inputs: List[SSTable]) -> bool:
        policy = self.policy
        db = self.db
        version = db.version
        lo = min(table.min_key for table in inputs)
        hi = key_successor(max(table.max_key for table in inputs))
        overlaps = version.overlapping(level + 1, lo, hi)

        if self.advance_pointer:
            version.advance_compact_pointer(level, inputs[-1])

        if (
            not overlaps
            and len(inputs) == 1
            and self._safe_to_move(level, inputs[0])
        ):
            # Trivial move: no data to merge with, so just re-parent the
            # file.  No I/O is performed.
            seed = inputs[0]
            version.remove_file(level, seed)
            version.add_file(level + 1, seed)
            db.engine_stats.trivial_moves += 1
            policy.bump("trivial_moves")
            if self.emit_trivial_event:
                db.tracer.emit(
                    EV_TRIVIAL_MOVE, policy=policy.name, file_id=seed.file_id,
                    from_level=level, to_level=level + 1,
                )
            return False

        drop = policy.can_drop_tombstones(level + 1)
        outputs = policy.merge_tables([*inputs, *overlaps], drop_deletes=drop)
        for table in inputs:
            version.remove_file(level, table)
            db.note_file_dropped(table)
        for table in overlaps:
            version.remove_file(level + 1, table)
            db.note_file_dropped(table)
        for table in outputs:
            version.add_file(level + 1, table)
        db.engine_stats.compaction_count += 1
        policy.bump(self.round_counter)
        policy.bump(self.input_counter, len(inputs) + len(overlaps))
        return True

    def _safe_to_move(self, level: int, table: SSTable) -> bool:
        """A trivial move must not let newer data leapfrog older data.

        Within sorted levels files are disjoint, so moving is always
        safe; in Level 0 a file may only move if no sibling overlaps it.
        Whole-level selectors skip the check (``strict_l0_move=False``):
        a lone L0 input *is* the whole level, so it has no siblings.
        """
        if not self.strict_l0_move or level != 0:
            return True
        siblings = self.db.version.overlapping(
            level, table.min_key, key_successor(table.max_key)
        )
        return len(siblings) == 1


@register_primitive("movement", "tiered_merge")
class TieredMergeMovement(DataMovement):
    """Tiered stacking: merge all runs of a level into one new run below.

    With ``leveled_from_level`` set, levels at or past the boundary form
    a leveled floor: data arriving at such a level is merged *with* the
    level's existing contents (an absorbing merge) so it stays one
    sorted run — the movement half of lazy leveling and hybrids.
    """

    PARAMS = ("leveled_from_level",)
    ACCEPTS = ("runs",)
    REQUIRES_SORTED = False

    def __init__(self, leveled_from_level: Optional[int] = None) -> None:
        super().__init__()
        self.leveled_from_level = leveled_from_level

    def execute(self, level: int, runs: List[List[SSTable]]) -> bool:
        policy = self.policy
        db = self.db
        version = db.version
        layout = policy.layout
        inputs = [table for run in runs for table in run]
        target = level + 1
        boundary = resolve_leveled_boundary(
            version.num_levels, self.leveled_from_level
        )
        existing = list(version.files(target))
        if target >= boundary and existing:
            # Absorbing merge: the target is leveled, so rewrite it in
            # place together with the incoming data (one sorted run out).
            target_runs = len(layout.level_runs(target))
            drop = policy.can_drop_tombstones(target)
            outputs = policy.merge_tables(
                [*inputs, *existing], drop_deletes=drop
            )
            for table in inputs:
                version.remove_file(level, table)
                db.note_file_dropped(table)
            for table in existing:
                version.remove_file(target, table)
                db.note_file_dropped(table)
            if level != 0:
                layout.clear_runs(level)
            layout.set_runs(target, [list(outputs)] if outputs else [])
            for table in outputs:
                version.add_file(target, table)
            db.engine_stats.compaction_count += 1
            policy.bump("level_merges")
            policy.bump("runs_merged", len(runs) + target_runs)
            policy.bump("absorbing_merges")
            return True

        drop = policy.can_drop_tombstones(target) and not version.files(target)
        outputs = policy.merge_tables(inputs, drop_deletes=drop)
        for table in inputs:
            version.remove_file(level, table)
            db.note_file_dropped(table)
        if level != 0:
            layout.clear_runs(level)
        for table in outputs:
            version.add_file(target, table)
        if outputs:
            layout.add_run(target, list(outputs))
        db.engine_stats.compaction_count += 1
        policy.bump("level_merges")
        policy.bump("runs_merged", len(runs))
        return True


# ----------------------------------------------------------------------
# Layouts
# ----------------------------------------------------------------------
@register_primitive("layout", "leveled")
class LeveledLayout(Layout):
    """Sorted levels: each level is one run of disjoint files."""

    sorted_levels = True


@register_primitive("layout", "tiered")
class TieredLayout(Layout):
    """Overlapping levels holding stacked sorted runs.

    Run membership is policy (not version) state, exactly like the
    legacy :class:`TieredCompaction` bookkeeping — it survives crash
    recovery with the policy instance.  Level 0 is synthesized from the
    version: each flushed file is its own run.
    """

    sorted_levels = False

    def __init__(self) -> None:
        super().__init__()
        self._runs: Dict[int, List[List[SSTable]]] = {}

    def level_runs(self, level: int) -> List[List[SSTable]]:
        if level == 0:
            return [[table] for table in self.db.version.files(0)]
        return self._runs.setdefault(level, [])

    def clear_runs(self, level: int) -> None:
        # Reassign (not ``.clear()``): callers hold the previous list.
        self._runs[level] = []

    def set_runs(self, level: int, runs: List[List[SSTable]]) -> None:
        self._runs[level] = runs

    def add_run(self, level: int, run: List[SSTable]) -> None:
        self._runs.setdefault(level, []).append(run)
