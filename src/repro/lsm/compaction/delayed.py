"""Delayed (dCompaction-style) leveled compaction.

dCompaction [Pan et al., JCST 2017] delays real compactions by creating
*virtual* merges: a triggered compaction only records metadata, and the
actual I/O runs once several virtual compactions have accumulated — so
each physical round merges several upper files at once.  The paper's
introduction credits this with saving I/O but charges it with "more data
[per] round ... executed in longer time, leading to serious performance
fluctuations".

We model the schedule rather than the metadata plumbing: a level must
overflow its capacity by ``delay_factor`` before it compacts, and the
round then takes *every* file of the level (the accumulated batch) plus
all their lower-level overlaps.  Relative to UDC this

* amortises the lower-level rewrite over ``delay_factor`` upper files
  (the I/O saving), and
* multiplies the round granularity by roughly the same factor (the tail
  latency cost),

which is exactly the trade-off the paper attributes to lazy schemes.
"""

from __future__ import annotations

from typing import Optional

from .base import CompactionPolicy
from ..keys import key_successor
from ...errors import ConfigError


class DelayedCompaction(CompactionPolicy):
    """Leveled compaction with dCompaction-style batched rounds."""

    name = "delayed"

    def __init__(self, delay_factor: float = 3.0) -> None:
        super().__init__()
        if delay_factor < 1.0:
            raise ConfigError("delay_factor must be at least 1")
        self.delay_factor = delay_factor

    def _pick_delayed_level(self) -> Optional[int]:
        """The most overfull level, but only past the delay threshold.

        Level 0 keeps the ordinary trigger — letting L0 grow by the delay
        factor would collide with the slowdown/stop stalls and measure the
        stall model rather than the compaction schedule.
        """
        version = self._db.version
        if len(version.files(0)) >= self._db.config.l0_compaction_trigger:
            return 0
        best_level: Optional[int] = None
        best_score = self.delay_factor
        for level in range(1, version.num_levels - 1):
            score = version.level_score(level)
            if score >= best_score:
                best_score = score
                best_level = level
        return best_level

    def compact_one(self) -> bool:
        level = self._pick_delayed_level()
        if level is None:
            return False
        self._compact_batch(level)
        return True

    def _compact_batch(self, level: int) -> None:
        """Merge the whole accumulated level into the next one."""
        db = self._db
        version = db.version
        inputs = list(version.files(level))
        lo = min(table.min_key for table in inputs)
        hi = key_successor(max(table.max_key for table in inputs))
        overlaps = version.overlapping(level + 1, lo, hi)
        if not overlaps and len(inputs) == 1:
            version.remove_file(level, inputs[0])
            version.add_file(level + 1, inputs[0])
            db.engine_stats.trivial_moves += 1
            self.bump("trivial_moves")
            return
        drop = self.can_drop_tombstones(level + 1)
        outputs = self.merge_tables([*inputs, *overlaps], drop_deletes=drop)
        for table in inputs:
            version.remove_file(level, table)
            db.note_file_dropped(table)
        for table in overlaps:
            version.remove_file(level + 1, table)
            db.note_file_dropped(table)
        for table in outputs:
            version.add_file(level + 1, table)
        db.engine_stats.compaction_count += 1
        self.bump("batched_rounds")
        self.bump("batched_input_files", len(inputs) + len(overlaps))
