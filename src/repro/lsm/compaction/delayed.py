"""Delayed (dCompaction-style) leveled compaction.

dCompaction [Pan et al., JCST 2017] delays real compactions by creating
*virtual* merges: a triggered compaction only records metadata, and the
actual I/O runs once several virtual compactions have accumulated — so
each physical round merges several upper files at once.  The paper's
introduction credits this with saving I/O but charges it with "more data
[per] round ... executed in longer time, leading to serious performance
fluctuations".

We model the schedule rather than the metadata plumbing: a level must
overflow its capacity by ``delay_factor`` before it compacts, and the
round then takes *every* file of the level (the accumulated batch) plus
all their lower-level overlaps.  Relative to UDC this

* amortises the lower-level rewrite over ``delay_factor`` upper files
  (the I/O saving), and
* multiplies the round granularity by roughly the same factor (the tail
  latency cost),

which is exactly the trade-off the paper attributes to lazy schemes.

.. deprecated::
    The implementation now lives in the design-space primitives:
    delayed is the registered composition ``delayed`` = delayed trigger
    × whole-level selector × merge-down movement × leveled layout.
    This class remains as a byte-identical shim; build new code from
    the registry (``DB(policy="delayed")``) or derive a spec with a
    custom factor: ``get_spec("delayed").derive(delay_factor=4.0)``.
"""

from __future__ import annotations

from .composed import ComposedPolicy, warn_legacy_class
from .spec import get_spec


class DelayedCompaction(ComposedPolicy):
    """Leveled compaction with dCompaction-style batched rounds."""

    def __init__(self, delay_factor: float = 3.0) -> None:
        warn_legacy_class("DelayedCompaction", "delayed")
        super().__init__(get_spec("delayed").derive(delay_factor=delay_factor))

    @property
    def delay_factor(self) -> float:
        return self.trigger.delay_factor
