"""UDC: the traditional Upper-level Driven Compaction of LevelDB.

This is the paper's baseline (§II, Fig. 2a).  When level ``i`` exceeds its
capacity, one SSTable ``s_u`` is selected (round-robin over the key space)
and merged with *every* overlapping SSTable in level ``i+1``.  Because
level ``i+1`` is ``fan_out`` times larger, each round drags in O(fan_out)
lower-level files — the write amplification of Theorem 2.1 and the large
compaction granularity behind the tail latency of equation (3).
"""

from __future__ import annotations

from typing import List

from .base import CompactionPolicy
from ..keys import key_successor
from ..sstable import SSTable
from ...obs.events import EV_TRIVIAL_MOVE


class LeveledCompaction(CompactionPolicy):
    """LevelDB-style leveled compaction (the paper's UDC baseline)."""

    name = "udc"

    def __init__(self) -> None:
        super().__init__()
        # Files whose unproductive-probe budget ran out, awaiting a
        # seek-triggered compaction (only populated when the config
        # enables seek compaction).
        self._seek_candidates: List[SSTable] = []

    def note_seek_exhausted(self, table: SSTable) -> None:
        if self._db.config.seek_compaction_enabled:
            self._seek_candidates.append(table)

    def compact_one(self) -> bool:
        if self._compact_seek_candidate():
            return True
        level = self._db.version.pick_compaction_level()
        if level is None:
            return False
        self._compact_once(level)
        return True

    def _compact_seek_candidate(self) -> bool:
        """LevelDB's seek compaction: merge an over-probed file down."""
        version = self._db.version
        while self._seek_candidates:
            table = self._seek_candidates.pop()
            if not version.contains(table):
                continue  # already compacted away by a size trigger
            level = version.level_of(table)
            if level >= version.num_levels - 1:
                continue  # nothing below to merge into
            self.bump("seek_compactions")
            self._compact_once(level, seed=table)
            return True
        return False

    # ------------------------------------------------------------------
    def _compact_once(self, level: int, seed: SSTable | None = None) -> None:
        db = self._db
        version = db.version
        if seed is None:
            seed = version.pick_file_round_robin(level)
        inputs = self._expand_level0(level, seed) if level == 0 else [seed]
        lo = min(table.min_key for table in inputs)
        hi = key_successor(max(table.max_key for table in inputs))
        overlaps = version.overlapping(level + 1, lo, hi)

        version.advance_compact_pointer(level, inputs[-1])

        if not overlaps and len(inputs) == 1 and self._safe_to_move(level, seed):
            # Trivial move: no data to merge with, so just re-parent the
            # file.  No I/O is performed.
            version.remove_file(level, seed)
            version.add_file(level + 1, seed)
            db.engine_stats.trivial_moves += 1
            self.bump("trivial_moves")
            db.tracer.emit(
                EV_TRIVIAL_MOVE, policy=self.name, file_id=seed.file_id,
                from_level=level, to_level=level + 1,
            )
            return

        drop = self.can_drop_tombstones(level + 1)
        outputs = self.merge_tables([*inputs, *overlaps], drop_deletes=drop)
        for table in inputs:
            version.remove_file(level, table)
            db.note_file_dropped(table)
        for table in overlaps:
            version.remove_file(level + 1, table)
            db.note_file_dropped(table)
        for table in outputs:
            version.add_file(level + 1, table)
        db.engine_stats.compaction_count += 1
        self.bump("compactions")
        self.bump("input_files", len(inputs) + len(overlaps))

    def _expand_level0(self, level: int, seed: SSTable) -> List[SSTable]:
        """Grow a Level-0 input set to all transitively overlapping files.

        Level-0 files overlap each other, so a compaction must take every
        file whose range touches the seed's (transitively), or newer
        versions of a key could be left behind while older ones descend.
        """
        version = self._db.version
        chosen = {seed.file_id: seed}
        changed = True
        lo, hi = seed.min_key, key_successor(seed.max_key)
        while changed:
            changed = False
            for table in version.overlapping(level, lo, hi):
                if table.file_id not in chosen:
                    chosen[table.file_id] = table
                    lo = min(lo, table.min_key)
                    hi = max(hi, key_successor(table.max_key))
                    changed = True
        return sorted(chosen.values(), key=lambda table: table.file_id)

    def _safe_to_move(self, level: int, table: SSTable) -> bool:
        """A trivial move must not let newer data leapfrog older data.

        Within sorted levels files are disjoint, so moving is always safe;
        in Level 0 a file may only move if no sibling overlaps it (an
        overlapping older sibling would be left holding stale versions
        above the moved data — harmless — but an overlapping *newer*
        sibling left behind would later descend below the moved file's
        versions, so we simply require exclusivity).
        """
        if level != 0:
            return True
        siblings = self._db.version.overlapping(
            level, table.min_key, key_successor(table.max_key)
        )
        return len(siblings) == 1
