"""UDC: the traditional Upper-level Driven Compaction of LevelDB.

This is the paper's baseline (§II, Fig. 2a).  When level ``i`` exceeds its
capacity, one SSTable ``s_u`` is selected (round-robin over the key space)
and merged with *every* overlapping SSTable in level ``i+1``.  Because
level ``i+1`` is ``fan_out`` times larger, each round drags in O(fan_out)
lower-level files — the write amplification of Theorem 2.1 and the large
compaction granularity behind the tail latency of equation (3).

.. deprecated::
    The implementation now lives in the design-space primitives
    (:mod:`repro.lsm.compaction.primitives`): UDC is the registered
    composition ``udc`` = fanout trigger × file selector × merge-down
    movement × leveled layout.  This class remains as a byte-identical
    shim; build new code from the registry (``DB(policy="udc")`` or
    ``get_spec("udc").build()``).
"""

from __future__ import annotations

from .composed import ComposedPolicy, warn_legacy_class
from .spec import get_spec


class LeveledCompaction(ComposedPolicy):
    """LevelDB-style leveled compaction (the paper's UDC baseline)."""

    def __init__(self) -> None:
        warn_legacy_class("LeveledCompaction", "udc")
        super().__init__(get_spec("udc"))
