"""ComposedPolicy: runs a trigger × selector × movement × layout tuple.

One engine executes every point of the compaction design space.  The
composition is described by a :class:`~repro.lsm.compaction.spec.
PolicySpec`; this class builds the four primitives, validates that they
fit together (candidate shapes, layout requirements), and drives the
round loop the legacy monolithic policies used to hard-code:

* non-batching movements (merge-down, tiered stacking): one trigger
  decision → one selection → one executed round per ``compact_one``;
* zero-I/O-batching movements (LDC): free metadata actions (links,
  trivial moves) batch within a round until one action bears I/O, with
  the movement's *urgent* debt (due merges, frozen-space pressure)
  checked first — exactly the legacy ``LDCPolicy.compact_one`` loop.

The legacy classes (``LeveledCompaction``, ``LDCPolicy``,
``TieredCompaction``, ``DelayedCompaction``) are deprecated thin
subclasses of this engine with their historical specs.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from .base import CompactionPolicy, guard_rounds
from .primitives import DataMovement
from ...errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from .spec import PolicySpec


class ComposedPolicy(CompactionPolicy):
    """A compaction policy assembled from a declarative spec."""

    def __init__(self, spec: "PolicySpec") -> None:
        super().__init__()
        self.spec = spec
        trigger, selector, movement, layout = spec.build_primitives()
        self.trigger = trigger
        self.selector = selector
        self.movement = movement
        self.layout = layout
        #: Reports, counters and trace events all carry the spec's name.
        self.name = spec.name
        #: Read by ``DB.__init__`` *before* ``attach`` to shape the tree.
        self.requires_sorted_levels = layout.sorted_levels
        self._check_composition()

    def _check_composition(self) -> None:
        if self.selector.CANDIDATE not in self.movement.ACCEPTS:
            raise ConfigError(
                f"policy {self.name!r}: movement "
                f"{self.movement.primitive_name!r} accepts "
                f"{self.movement.ACCEPTS} candidates, but selector "
                f"{self.selector.primitive_name!r} produces "
                f"{self.selector.CANDIDATE!r}"
            )
        for primitive in (self.trigger, self.selector, self.movement):
            required = primitive.REQUIRES_SORTED
            if required is not None and required != self.layout.sorted_levels:
                shape = "sorted (leveled)" if required else "tiered"
                raise ConfigError(
                    f"policy {self.name!r}: {primitive.describe()} requires "
                    f"a {shape} layout, got "
                    f"layout:{self.layout.primitive_name}"
                )
        needs_runs = (
            self.selector.CANDIDATE == "runs"
            or getattr(self.trigger, "leveled_from_level", "absent") != "absent"
        )
        if needs_runs and not hasattr(self.layout, "level_runs"):
            raise ConfigError(
                f"policy {self.name!r}: {self.selector.describe()} / "
                f"{self.trigger.describe()} need run bookkeeping, but "
                f"layout:{self.layout.primitive_name} tracks no runs"
            )

    # ------------------------------------------------------------------
    # Lifecycle / hooks (forwarded to the owning primitive)
    # ------------------------------------------------------------------
    def attach(self, db) -> None:  # type: ignore[override]
        super().attach(db)
        for primitive in (self.layout, self.trigger, self.selector,
                          self.movement):
            primitive.attach(self)
        # Idle-gate wiring (see DB._maintenance_step): a composed decision
        # reads the tree plus movement state, so between structural
        # changes a "no work due" verdict can be cached.  A movement that
        # observes operations (LDC's adaptive controller) re-arms the
        # poll on every op; movements may opt out of the gate entirely
        # with IDLE_STABLE = False.
        movement = self.movement
        observes = getattr(movement, "observes_operations", None)
        if observes is None:
            observes = (
                type(movement).on_operation is not DataMovement.on_operation
            )
        self._movement_observes = observes
        self._idle_stable = movement.IDLE_STABLE

    def compact_one(self) -> bool:
        movement = self.movement
        if not movement.zero_io_batching:
            if movement.urgent_round():
                return True
            decision = self.trigger.fire()
            if decision is None:
                return False
            candidate = self.selector.select(decision.level, seed=decision.seed)
            movement.execute(decision.level, candidate)
            return True
        # Zero-I/O batching (LDC): free actions accumulate within the
        # round until one bears I/O or the tree is within its limits.
        did_work = False
        rounds = 0
        while True:
            rounds += 1
            guard_rounds(rounds)
            if movement.urgent_round():
                return True
            decision = self.trigger.fire()
            if decision is None:
                return did_work
            candidate = self.selector.select(decision.level, seed=decision.seed)
            if movement.execute(decision.level, candidate):
                return True
            # A link or trivial move happened: free, keep going.
            did_work = True

    def on_operation(self, is_write: bool) -> None:
        if self._movement_observes:
            self.movement.on_operation(is_write)
            self._maintenance_idle = False

    def note_seek_exhausted(self, table) -> None:
        self._maintenance_idle = False
        self.trigger.note_seek_exhausted(table)

    def extra_space_bytes(self) -> int:
        return self.movement.extra_space_bytes()

    def check_invariants(self) -> None:
        self.movement.check_invariants()

    @property
    def threshold(self):
        """The movement's live threshold knob (LDC's ``T_s``).

        Raises ``AttributeError`` for compositions without one, so
        ``getattr(policy, "threshold", None)`` keeps its legacy meaning
        in the harness.
        """
        value = getattr(self.movement, "threshold", None)
        if value is None:
            raise AttributeError(
                f"policy {self.name!r} has no threshold knob"
            )
        return value

    def describe(self) -> str:
        return self.spec.describe()


def warn_legacy_class(class_name: str, policy_name: str) -> None:
    """Deprecation warning for direct instantiation of a legacy class."""
    warnings.warn(
        f"{class_name}() is deprecated; build the policy from the spec "
        f"registry instead: repro.get_spec({policy_name!r}).build(), "
        f"DB(policy={policy_name!r}), or a custom repro.PolicySpec",
        DeprecationWarning,
        stacklevel=3,
    )
