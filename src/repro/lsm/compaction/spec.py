"""PolicySpec: declarative, picklable compaction-policy descriptions.

A spec names one primitive per design-space axis — trigger, candidate
selector, data movement, level layout — plus a flat parameter mapping
distributed to whichever primitives declare each key.  Specs are frozen
dataclasses: hashable, picklable (they cross ``ProcessPoolExecutor``
boundaries inside grid and shard tasks), and round-trippable through
``to_dict``/``from_dict`` for reports and CLI plumbing.

The module also hosts the **central policy registry** — the single
source of truth for policy names.  ``DB(policy="ldc")``, the CLI's
``--policy`` flags, the experiment grid, the crash-test harness and
``ShardedDB`` all resolve names here, and an unknown name raises one
typed :class:`~repro.errors.UnknownPolicyError` carrying the valid-name
list.

Standard catalogue (registered at import):

===================  ====================================================
``udc``              LevelDB leveled (fanout trigger + seeks, one file,
                     merge down) — the paper's baseline.
``ldc``              The paper's Lower-level Driven Compaction (link &
                     absorb with slice granularity).
``tiered``           Cassandra-style size tiering (run-count trigger,
                     whole-level runs, stacking merge).
``delayed``          dCompaction-style batching (delayed trigger, whole
                     level, merge down).
``lazy_leveling``    Dayan-style lazy leveling: tiered everywhere except
                     a leveled last level (absorbing merges).
``partial_leveled``  Leveled movement at single-file granularity driven
                     by a delayed trigger — small batched rounds.
``hybrid``           Tiered top of the tree (L0-L1), leveled from L2.
===================  ====================================================
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ...errors import ConfigError, UnknownPolicyError

_AXES = ("trigger", "selector", "movement", "layout")
_DICT_KEYS = ("name",) + _AXES + ("params",)

#: Policy used when a DB is built without one (LevelDB's behaviour).
DEFAULT_POLICY = "udc"


def _primitive_class(kind: str, name: str) -> type:
    """Resolve one primitive, loading the optional LDC module on a miss.

    The core (LDC) primitives live in :mod:`repro.core.primitives`,
    which imports back into this package — so they register lazily, on
    the first lookup that needs them, keeping import order acyclic.
    """
    from . import primitives

    try:
        return primitives.primitive_class(kind, name)
    except KeyError:
        importlib.import_module("repro.core.primitives")
        try:
            return primitives.primitive_class(kind, name)
        except KeyError:
            known = ", ".join(primitives.known_primitives(kind))
            raise ConfigError(
                f"unknown {kind} primitive {name!r}; known: {known}"
            ) from None


@dataclass(frozen=True)
class PolicySpec:
    """One point in the compaction design space, by name.

    ``params`` is stored as a key-sorted tuple of ``(key, value)`` pairs
    (a dict is accepted and normalized) so specs hash, compare and
    pickle deterministically.
    """

    name: str
    trigger: str = "fanout"
    selector: str = "file"
    movement: str = "merge_down"
    layout: str = "leveled"
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError("PolicySpec.name must be a non-empty string")
        for axis in _AXES:
            value = getattr(self, axis)
            if not value or not isinstance(value, str):
                raise ConfigError(
                    f"PolicySpec.{axis} must be a non-empty string"
                )
        params = self.params
        if isinstance(params, Mapping):
            items = params.items()
        else:
            items = tuple(params)
        normalized = tuple(
            sorted(((str(key), value) for key, value in items),
                   key=lambda pair: pair[0])
        )
        object.__setattr__(self, "params", normalized)

    # ------------------------------------------------------------------
    # Introspection / derivation
    # ------------------------------------------------------------------
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def derive(self, name: Optional[str] = None, **params: Any) -> "PolicySpec":
        """A new spec with updated params (and optionally a new name)."""
        merged = self.param_dict()
        merged.update(params)
        return replace(
            self, name=name if name is not None else self.name, params=merged
        )

    def describe(self) -> str:
        knobs = ", ".join(f"{key}={value!r}" for key, value in self.params)
        return (
            f"{self.name}: trigger={self.trigger} selector={self.selector} "
            f"movement={self.movement} layout={self.layout}"
            + (f" [{knobs}]" if knobs else "")
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trigger": self.trigger,
            "selector": self.selector,
            "movement": self.movement,
            "layout": self.layout,
            "params": self.param_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        unknown = set(data) - set(_DICT_KEYS)
        if unknown:
            raise ConfigError(
                f"unknown PolicySpec keys: {sorted(unknown)}; "
                f"valid keys: {list(_DICT_KEYS)}"
            )
        if "name" not in data:
            raise ConfigError("PolicySpec dict requires a 'name' key")
        return cls(
            name=data["name"],
            trigger=data.get("trigger", "fanout"),
            selector=data.get("selector", "file"),
            movement=data.get("movement", "merge_down"),
            layout=data.get("layout", "leveled"),
            params=data.get("params", ()),
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build_primitives(self) -> tuple:
        """Instantiate (trigger, selector, movement, layout).

        Params are distributed by declaration: each primitive receives
        the subset of ``params`` its ``PARAMS`` tuple names.  A key no
        primitive accepts is a :class:`ConfigError` — specs cannot carry
        silently-dead knobs.
        """
        classes = [
            (axis, _primitive_class(axis, getattr(self, axis)))
            for axis in _AXES
        ]
        params = self.param_dict()
        accepted: set = set()
        built = []
        for axis, cls in classes:
            kwargs = {
                key: params[key] for key in cls.PARAMS if key in params
            }
            accepted.update(cls.PARAMS)
            built.append(cls(**kwargs))
        unknown = set(params) - accepted
        if unknown:
            raise ConfigError(
                f"policy {self.name!r}: params {sorted(unknown)} are "
                f"accepted by none of its primitives "
                f"({', '.join(f'{axis}:{cls.primitive_name}' for axis, cls in classes)})"
            )
        return tuple(built)

    def build(self):
        """Instantiate a runnable policy for this spec."""
        from .composed import ComposedPolicy

        return ComposedPolicy(self)


@dataclass(frozen=True)
class SpecFactory:
    """Picklable zero-arg factory: grid/shard tasks ship specs, not
    policy instances (policies are stateful and per-engine)."""

    spec: PolicySpec

    def __call__(self):
        return self.spec.build()


# ----------------------------------------------------------------------
# The central policy registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec, replace_existing: bool = False) -> PolicySpec:
    """Register ``spec`` under its name; returns the spec for chaining."""
    if not replace_existing and spec.name in _REGISTRY:
        raise ConfigError(f"policy {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def available_policies() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def get_spec(name: str) -> PolicySpec:
    """Look a policy name up; unknown names raise UnknownPolicyError."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownPolicyError(name, available_policies()) from None


def make_policy(policy: Any = None):
    """Coerce any accepted policy designator into a policy instance.

    ``None`` builds the default (``udc``), a string resolves through the
    registry, a :class:`PolicySpec` builds directly, and anything else
    is assumed to already be a policy instance and passes through — the
    backward-compatible ``DB(policy=<instance>)`` path.
    """
    if policy is None:
        return get_spec(DEFAULT_POLICY).build()
    if isinstance(policy, str):
        return get_spec(policy).build()
    if isinstance(policy, PolicySpec):
        return policy.build()
    return policy


def resolve_factory(policy: Any = None):
    """Coerce a policy designator into a picklable zero-arg factory.

    Strings and specs become :class:`SpecFactory`; callables (legacy
    factories, policy classes) pass through untouched.
    """
    if policy is None:
        return SpecFactory(get_spec(DEFAULT_POLICY))
    if isinstance(policy, str):
        return SpecFactory(get_spec(policy))
    if isinstance(policy, PolicySpec):
        return SpecFactory(policy)
    if callable(policy):
        return policy
    raise ConfigError(
        f"cannot build a policy factory from {type(policy).__name__!r}; "
        f"pass a name, a PolicySpec, or a zero-arg callable"
    )


# ----------------------------------------------------------------------
# Standard catalogue
# ----------------------------------------------------------------------
#: The paper's baseline: LevelDB leveled compaction.
register_policy(PolicySpec(
    name="udc",
    trigger="fanout", selector="file", movement="merge_down",
    layout="leveled",
    params={"honor_seeks": True},
))

#: The paper's contribution: lower-level driven link & absorb.
register_policy(PolicySpec(
    name="ldc",
    trigger="fanout", selector="ldc_unit", movement="ldc_link_merge",
    layout="leveled",
))

#: Size-tiered lazy baseline (related-work ablations).
register_policy(PolicySpec(
    name="tiered",
    trigger="tier_count", selector="runs", movement="tiered_merge",
    layout="tiered",
))

#: dCompaction-style delayed batching.
register_policy(PolicySpec(
    name="delayed",
    trigger="delayed", selector="level", movement="merge_down",
    layout="leveled",
    params={
        "delay_factor": 3.0,
        "advance_pointer": False,
        "strict_l0_move": False,
        "emit_trivial_event": False,
        "round_counter": "batched_rounds",
        "input_counter": "batched_input_files",
    },
))

#: Lazy leveling: tiered upper tree, leveled (absorbing) last level.
#: Impossible before the decomposition — tiering and leveling lived in
#: separate monolithic classes.
register_policy(PolicySpec(
    name="lazy_leveling",
    trigger="tier_count", selector="runs", movement="tiered_merge",
    layout="tiered",
    params={"leveled_from_level": -1},
))

#: Partial leveled: single-file merge-down rounds behind a delayed
#: trigger — dCompaction's schedule without its whole-level granularity.
register_policy(PolicySpec(
    name="partial_leveled",
    trigger="delayed", selector="file", movement="merge_down",
    layout="leveled",
    params={
        "delay_factor": 2.0,
        "advance_pointer": True,
        "strict_l0_move": True,
        "emit_trivial_event": False,
        "round_counter": "partial_rounds",
        "input_counter": "partial_input_files",
    },
))

#: Tiered + leveled hybrid: run stacking in the write-hot top of the
#: tree (L0-L1), score-triggered absorbing merges from L2 down.
register_policy(PolicySpec(
    name="hybrid",
    trigger="tier_count", selector="runs", movement="tiered_merge",
    layout="tiered",
    params={"leveled_from_level": 2},
))
