"""Size-tiered compaction: the lazy baseline of the related work (§V).

Cassandra-style tiering accumulates up to ``fan_out`` sorted *runs* per
level and, when full, merges them all into a single new run in the next
level — never reading existing lower-level data.  Per-round write
amplification is therefore ~1 (the lazy schemes' selling point), but each
merge is huge (all runs of a level at once), which is exactly the enlarged
compaction granularity / tail-latency problem the paper's Fig. 8 argument
attributes to lazy schemes.  We implement it to *measure* that trade-off
(ablation benches), since the paper excludes lazy schemes from its latency
comparison for this reason.

Levels are overlapping under this policy: construct the DB with
``sorted_levels=False`` (handled automatically by ``DB`` when given a
:class:`TieredCompaction` policy).
"""

from __future__ import annotations

from typing import Dict, List

from .base import CompactionPolicy
from ..sstable import SSTable


class TieredCompaction(CompactionPolicy):
    """Size-tiered (universal-style) lazy compaction baseline."""

    name = "tiered"

    #: Levels hold overlapping runs; the DB must not enforce sorted levels.
    requires_sorted_levels = False

    def __init__(self) -> None:
        super().__init__()
        # Runs per level.  Level 0: each flushed file is its own run.
        self._runs: Dict[int, List[List[SSTable]]] = {}

    # ------------------------------------------------------------------
    def compact_one(self) -> bool:
        level = self._pick_full_level(self._db.config.fan_out)
        if level is None:
            return False
        self._merge_level(level)
        return True

    def _pick_full_level(self, fan_out: int) -> int | None:
        version = self._db.version
        # Level 0 uses the LevelDB trigger so flush pressure behaves the
        # same across policies; deeper levels trigger on run count.
        if len(version.files(0)) >= self._db.config.l0_compaction_trigger:
            return 0
        for level in range(1, version.num_levels - 1):
            if len(self._level_runs(level)) >= fan_out:
                return level
        return None

    def _level_runs(self, level: int) -> List[List[SSTable]]:
        if level == 0:
            return [[table] for table in self._db.version.files(0)]
        return self._runs.setdefault(level, [])

    # ------------------------------------------------------------------
    def _merge_level(self, level: int) -> None:
        """Merge every run of ``level`` into one new run at ``level + 1``."""
        db = self._db
        version = db.version
        runs = self._level_runs(level)
        inputs = [table for run in runs for table in run]
        target = level + 1
        drop = self.can_drop_tombstones(target) and not version.files(target)
        outputs = self.merge_tables(inputs, drop_deletes=drop)
        for table in inputs:
            version.remove_file(level, table)
            db.note_file_dropped(table)
        if level != 0:
            self._runs[level] = []
        for table in outputs:
            version.add_file(target, table)
        if outputs:
            self._runs.setdefault(target, []).append(list(outputs))
        db.engine_stats.compaction_count += 1
        self.bump("level_merges")
        self.bump("runs_merged", len(runs))
