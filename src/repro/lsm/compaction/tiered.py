"""Size-tiered compaction: the lazy baseline of the related work (§V).

Cassandra-style tiering accumulates up to ``fan_out`` sorted *runs* per
level and, when full, merges them all into a single new run in the next
level — never reading existing lower-level data.  Per-round write
amplification is therefore ~1 (the lazy schemes' selling point), but each
merge is huge (all runs of a level at once), which is exactly the enlarged
compaction granularity / tail-latency problem the paper's Fig. 8 argument
attributes to lazy schemes.  We implement it to *measure* that trade-off
(ablation benches), since the paper excludes lazy schemes from its latency
comparison for this reason.

.. deprecated::
    The implementation now lives in the design-space primitives: tiered
    is the registered composition ``tiered`` = tier-count trigger × run
    selector × tiered-merge movement × tiered layout.  This class
    remains as a byte-identical shim; build new code from the registry
    (``DB(policy="tiered")`` or ``get_spec("tiered").build()``).
"""

from __future__ import annotations

from typing import List

from .composed import ComposedPolicy, warn_legacy_class
from .spec import get_spec
from ..sstable import SSTable


class TieredCompaction(ComposedPolicy):
    """Size-tiered (universal-style) lazy compaction baseline."""

    def __init__(self) -> None:
        warn_legacy_class("TieredCompaction", "tiered")
        super().__init__(get_spec("tiered"))

    # Legacy introspection points, forwarded to the layout's bookkeeping.
    @property
    def _runs(self):
        return self.layout._runs

    def _level_runs(self, level: int) -> List[List[SSTable]]:
        return self.layout.level_runs(level)
