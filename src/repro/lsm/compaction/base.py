"""Compaction policy interface and shared merge machinery.

A *compaction policy* owns all maintenance decisions of the tree: when to
compact, which files participate, and where outputs land.  The engine calls
:meth:`CompactionPolicy.maybe_compact` after every flush (and during write
stalls) and the policy performs zero or more compactions inline, charging
all I/O to the shared device under the ``compaction_read`` /
``compaction_write`` categories.

Three implementations ship with the library:

* :class:`~repro.lsm.compaction.leveled.LeveledCompaction` — **UDC**, the
  paper's baseline (LevelDB's upper-level driven compaction);
* :class:`~repro.core.ldc.LDCPolicy` — the paper's contribution;
* :class:`~repro.lsm.compaction.tiered.TieredCompaction` — a size-tiered
  lazy baseline used by the related-work ablations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from operator import itemgetter

from .columnar import MergedColumns, merge_windows
from ..builder import build_balanced, build_balanced_columns
from ..record import KIND_DELETE, KVRecord
from ..sstable import SSTable
from ...errors import CompactionError
from ...obs.events import EV_COMPACTION_ROUND
from ...ssd.metrics import (
    _COMPACTION_READ_KEY,
    _COMPACTION_WRITE_KEY,
    COMPACTION_READ,
    COMPACTION_WRITE,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..db import DB

#: Upper bound on compaction rounds per maintenance pass.  Hitting it means
#: a policy stopped making progress — a bug we want surfaced, not hidden.
MAX_ROUNDS_PER_PASS = 10_000

_record_kind = itemgetter(2)


class CompactionPolicy(ABC):
    """Strategy object deciding when and how the tree is compacted."""

    #: Short identifier used in reports ("udc", "ldc", "tiered").
    name: str = "abstract"

    def __init__(self) -> None:
        self.db: Optional["DB"] = None
        #: Idle gate (see DB._maintenance_step): True while the policy is
        #: known to have no maintenance due and nothing re-armed the poll.
        #: Cleared by flush, seek exhaustion and (for adaptive movements)
        #: every operation notification.
        self._maintenance_idle = False
        #: Whether the engine may set the gate at all.  False here so
        #: direct CompactionPolicy subclasses keep per-op polling;
        #: ComposedPolicy turns it on for movements that declare their
        #: decisions structure-pure (DataMovement.IDLE_STABLE).
        self._idle_stable = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, db: "DB") -> None:
        """Bind the policy to its database (called once by the DB)."""
        self.db = db

    @property
    def _db(self) -> "DB":
        if self.db is None:
            raise CompactionError(f"policy {self.name!r} is not attached to a DB")
        return self.db

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def compact_one(self) -> bool:
        """Perform at most one I/O-bearing compaction round.

        Returns True when any maintenance work was done (zero-I/O metadata
        actions such as LDC links or trivial moves may batch with it), and
        False when the tree is within its shape limits.

        The engine calls this once per user operation, modelling a
        background compaction thread that keeps pace with the foreground:
        an operation's latency absorbs at most one round — the paper's
        tail-latency equation (3), where ``tl_w = t_compaction + t_w`` for
        a *single* round of compaction.
        """

    def compact_one_tracked(self) -> bool:
        """Run one round and record its I/O volume in the round histogram.

        The per-round byte distribution is the *granularity* metric of the
        paper's equation (3): UDC rounds move O(fan_out) files, LDC rounds
        O(1).

        Every I/O-bearing round also emits one ``compaction_round`` trace
        event carrying the exact per-round read/write byte deltas, so the
        events of a trace sum to the device's ``compaction_read`` +
        ``compaction_write`` category totals.
        """
        db = self._db
        # Raw counter-dict reads: this runs once per user op and the
        # IOStats properties cost four calls per read on the no-op path.
        counters = db.device.stats.registry._counters
        counter_get = counters.get
        read_before = counter_get(_COMPACTION_READ_KEY, 0)
        write_before = counter_get(_COMPACTION_WRITE_KEY, 0)
        start = db.clock.now()
        did_work = self.compact_one()
        if not did_work:
            # No round ran, so the compaction counters cannot have moved;
            # skip the delta reads (this path runs once per user op).
            return False
        bytes_read = counter_get(_COMPACTION_READ_KEY, 0) - read_before
        bytes_written = counter_get(_COMPACTION_WRITE_KEY, 0) - write_before
        if bytes_read + bytes_written > 0:
            db.engine_stats.record_round(bytes_read + bytes_written)
            db.tracer.emit(
                EV_COMPACTION_ROUND,
                policy=self.name,
                bytes_read=bytes_read,
                bytes_written=bytes_written,
                duration_us=db.clock.now() - start,
            )
        return did_work

    def step(self) -> bool:
        """One incremental unit of maintenance work (scheduler entry point).

        The virtual-time scheduler (:mod:`repro.sched`) executes policies
        through this hook under the clock's capture mode: the round's
        logical effects apply immediately while its time cost is diverted
        and replayed as block-granularity chunks on a background thread.
        All four shipped policies (UDC, LDC, tiered, delayed) inherit
        incremental execution through it — a round is already their unit
        of progress, so one ``step`` is one resumable work item and no
        policy needs scheduler-specific code.
        """
        return self.compact_one_tracked()

    def maybe_compact(self) -> None:
        """Run compaction rounds until the tree is within its limits.

        Used for full drains: the Level-0 *stop* stall and test helpers.
        """
        rounds = 0
        while self.compact_one_tracked():
            rounds += 1
            guard_rounds(rounds)

    def on_operation(self, is_write: bool) -> None:
        """Observe one user operation (drives LDC's adaptive threshold)."""

    def note_seek_exhausted(self, table: SSTable) -> None:
        """A file's unproductive-probe budget ran out (LevelDB seek
        compaction).  Policies that honour it queue the file; the default
        ignores it."""

    def extra_space_bytes(self) -> int:
        """Policy-held space outside the tree (LDC's frozen region)."""
        return 0

    def check_invariants(self) -> None:
        """Verify policy-internal invariants; raise on violation.

        Called by ``DB.check_invariants`` (the crash-test oracle).  The
        default policies keep no state outside the version set, so there
        is nothing to check; LDC verifies its frozen region here.
        """

    # ------------------------------------------------------------------
    # Policy metrics
    # ------------------------------------------------------------------
    def bump(self, name: str, amount: int = 1) -> None:
        """Increment the policy counter ``policy.<name>.<counter>``.

        Policy-internal measurements recorded this way show up in
        ``db.metrics()`` and are zeroed by ``db.reset_measurements()``
        like every other counter — the uniform-reset guarantee.
        """
        self._db.registry.add(f"policy.{self.name}.{name}", amount)

    def set_metric_gauge(self, name: str, value: float) -> None:
        """Record the live value of gauge ``policy.<name>.<gauge>``."""
        self._db.registry.set_gauge(f"policy.{self.name}.{name}", value)

    # ------------------------------------------------------------------
    # Shared mechanics
    # ------------------------------------------------------------------
    def read_inputs(self, tables: Sequence[SSTable]) -> None:
        """Charge the sequential reads of whole input files.

        Under fault injection each whole-file read is CRC-verified (all
        blocks), so an injected bit flip surfaces as a
        :class:`~repro.errors.CorruptionError` before the merge consumes
        the data.
        """
        db = self._db
        device = db.device
        if db._faulty:
            # Interleave each file's read with its CRC verification so an
            # injected flip aborts before later inputs are charged.
            for table in tables:
                device.read(table.data_size, COMPACTION_READ, sequential=True)
                db._verify_block_read(table, range(table.num_blocks))
            return
        device.read_runs(
            [table.data_size for table in tables],
            COMPACTION_READ,
            sequential=True,
        )

    def merge_table_streams(
        self,
        streams: List[Iterable[KVRecord]],
        *,
        drop_deletes: bool,
    ) -> List[KVRecord]:
        """Merge-sort record streams, newest version per key.

        Charges the per-record CPU cost of the merge to the virtual clock.
        ``drop_deletes`` removes tombstones and is only safe when the output
        becomes the bottom-most data for its key range.

        Compaction inputs are fully materialised (unlike scans, which need
        the streaming heap merge in :func:`~repro.lsm.iterators.
        merge_records`), so the merge runs entirely at C speed: concatenate,
        ``list.sort`` — ``KVRecord`` tuples order by ``(key, seq)`` and
        sequence numbers are store-unique, so value bytes are never
        compared — then a dict comprehension keyed by user key.  Sorted
        input makes the dict's insertion order ascending-by-key and its
        per-key survivor the last (highest-sequence) record: exactly the
        newest-wins heap merge, record for record.
        """
        db = self._db
        pooled: List[KVRecord] = []
        extend = pooled.extend
        for stream in streams:
            extend(stream)
        pooled.sort()
        merged = list({record[0]: record for record in pooled}.values())
        db.clock.advance(len(merged) * db.config.costs.merge_per_record_us)
        if drop_deletes:
            merged = [record for record in merged if record[2] != KIND_DELETE]
        return merged

    def write_outputs(self, records: Sequence[KVRecord]) -> List[SSTable]:
        """Build balanced output SSTables and charge their sequential writes."""
        db = self._db
        records = records if type(records) is list else list(records)
        outputs = build_balanced(records, db.config, db.next_file_id)
        for table in outputs:
            db.device.write(
                table.data_size, COMPACTION_WRITE, sequential=True,
                owner=table.file_id,
            )
        return outputs

    def finish_merge(
        self, merged: MergedColumns, *, drop_deletes: bool
    ) -> List[SSTable]:
        """Charge the merge CPU, drop tombstones, build and charge outputs.

        The columnar tail of every compaction: takes the merged columns
        from :func:`~repro.lsm.compaction.columnar.merge_windows`, charges
        exactly the legacy per-record merge cost (one advance over the
        deduplicated count, *before* tombstones drop — identical to
        :meth:`merge_table_streams`), then cuts balanced output files from
        column slices and charges their sequential writes.
        """
        db = self._db
        keys, records, seqs, sizes = merged
        db.clock.advance(len(records) * db.config.costs.merge_per_record_us)
        if drop_deletes:
            kinds = list(map(_record_kind, records))
            if KIND_DELETE in kinds:
                keep = [
                    index for index, kind in enumerate(kinds)
                    if kind != KIND_DELETE
                ]
                keys = [keys[index] for index in keep]
                records = [records[index] for index in keep]
                seqs = [seqs[index] for index in keep]
                sizes = [sizes[index] for index in keep]
        outputs = build_balanced_columns(
            keys, records, seqs, sizes, db.config, db.next_file_id
        )
        for table in outputs:
            db.device.write(
                table.data_size, COMPACTION_WRITE, sequential=True,
                owner=table.file_id,
            )
        return outputs

    def merge_tables(
        self,
        inputs: Sequence[SSTable],
        *,
        drop_deletes: bool,
    ) -> List[SSTable]:
        """Classic whole-file compaction: read, merge, write (Definition 2.4)."""
        self.read_inputs(inputs)
        merged = merge_windows([table.columns_window() for table in inputs])
        return self.finish_merge(merged, drop_deletes=drop_deletes)

    def can_drop_tombstones(self, target_level: int) -> bool:
        """Tombstones may be dropped when nothing deeper can hold the key."""
        return target_level >= self._db.version.deepest_nonempty_level()


def guard_rounds(rounds: int) -> None:
    """Abort a maintenance pass that has stopped converging."""
    if rounds > MAX_ROUNDS_PER_PASS:
        raise CompactionError(
            f"compaction did not converge within {MAX_ROUNDS_PER_PASS} rounds"
        )
