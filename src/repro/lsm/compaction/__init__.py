"""Compaction policies for the LSM engine.

Policies are compositions of four orthogonal primitives — trigger,
candidate selector, data movement, level layout
(:mod:`~repro.lsm.compaction.primitives`) — described by a declarative
:class:`~repro.lsm.compaction.spec.PolicySpec` and executed by
:class:`~repro.lsm.compaction.composed.ComposedPolicy`.  The central
registry in :mod:`~repro.lsm.compaction.spec` names the standard
catalogue (``udc``, ``ldc``, ``tiered``, ``delayed``, ``lazy_leveling``,
``partial_leveled``, ``hybrid``); the LDC primitives themselves live in
:mod:`repro.core.primitives`.  The legacy monolithic classes remain as
deprecated byte-identical shims.
"""

from .base import CompactionPolicy, MAX_ROUNDS_PER_PASS
from .composed import ComposedPolicy
from .primitives import (
    CandidateSelector,
    DataMovement,
    Layout,
    Trigger,
    TriggerDecision,
    known_primitives,
    register_primitive,
)
from .spec import (
    DEFAULT_POLICY,
    PolicySpec,
    SpecFactory,
    available_policies,
    get_spec,
    make_policy,
    register_policy,
    resolve_factory,
)
from .delayed import DelayedCompaction
from .leveled import LeveledCompaction
from .tiered import TieredCompaction

__all__ = [
    "CompactionPolicy",
    "ComposedPolicy",
    "PolicySpec",
    "SpecFactory",
    "DEFAULT_POLICY",
    "available_policies",
    "get_spec",
    "make_policy",
    "register_policy",
    "resolve_factory",
    "Trigger",
    "TriggerDecision",
    "CandidateSelector",
    "DataMovement",
    "Layout",
    "register_primitive",
    "known_primitives",
    "LeveledCompaction",
    "DelayedCompaction",
    "TieredCompaction",
    "MAX_ROUNDS_PER_PASS",
]
