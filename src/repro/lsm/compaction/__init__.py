"""Compaction policies for the LSM engine.

The paper's LDC policy itself lives in :mod:`repro.core.ldc`; this package
holds the policy interface and the baselines (UDC leveled compaction and
the size-tiered lazy scheme).
"""

from .base import CompactionPolicy, MAX_ROUNDS_PER_PASS
from .delayed import DelayedCompaction
from .leveled import LeveledCompaction
from .tiered import TieredCompaction

__all__ = [
    "CompactionPolicy",
    "LeveledCompaction",
    "DelayedCompaction",
    "TieredCompaction",
    "MAX_ROUNDS_PER_PASS",
]
