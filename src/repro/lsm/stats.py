"""Engine-level statistics.

The device tracks I/O by category; this module tracks *engine activity
time* — how much virtual time was spent inside compaction, flushing, WAL
appends, memtable work and read service.  The activity breakdown is what
regenerates the paper's Table I ("DoCompactionWork 61.4%, file system
20.9%, DoWrite 8.04%").

Since the observability redesign, :class:`EngineStats` is a thin *view*
over the shared :class:`~repro.obs.registry.MetricsRegistry`: every field
below is a property reading and writing a ``engine.*`` registry counter,
so ``db.metrics()`` sees the same numbers and one
``db.reset_measurements()`` call zeroes them together with the device,
cache and policy metrics.  The public surface (``stats.puts``,
``stats.charge_activity(...)``, ``stats.round_bytes`` ...) is unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs.registry import MetricsRegistry

# Activity labels (Table I analogues).
ACT_COMPACTION = "compaction"  # DoCompactionWork
ACT_FLUSH = "flush"  # memtable dump to L0
ACT_WAL = "wal"  # log append (file system share)
ACT_WRITE = "write"  # DoWrite: memtable insert + stalls
ACT_READ = "read"  # point-lookup service
ACT_SCAN = "scan"  # range-query service

#: Integer engine counters, in declaration order.
_INT_COUNTERS = (
    "puts",
    "deletes",
    "gets",
    "get_hits",
    "scans",
    "scanned_records",
    "flush_count",
    "compaction_count",
    "trivial_moves",
    "link_count",  # LDC link-phase actions
    "merge_count",  # LDC merge-phase actions
    "forced_merges",  # LDC merges forced by space/level pressure
    "stall_events",
    "user_bytes_written",
    "sstable_blocks_read",  # data-block read count (paper Fig. 13)
    "bloom_negative_skips",  # lookups a Bloom filter short-circuited
)
_FLOAT_COUNTERS = ("stall_time_us",)

_ACTIVITY_PREFIX = "engine.activity"

#: Prebuilt dotted keys for the known activities — charge_activity runs
#: several times per operation and the f-string dominated its cost.
_ACTIVITY_KEYS = {
    activity: f"{_ACTIVITY_PREFIX}.{activity}"
    for activity in (
        ACT_COMPACTION,
        ACT_FLUSH,
        ACT_WAL,
        ACT_WRITE,
        ACT_READ,
        ACT_SCAN,
    )
}


class EngineStats:
    """Counters and activity-time accounting for one DB instance.

    A view over an ``engine.*`` slice of a metrics registry.  Constructed
    standalone it owns a private registry, so unit tests and ad-hoc use
    need no setup; the DB passes its shared registry in.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Bytes moved (read + written) by each individual compaction round —
        #: the *granularity* distribution behind the paper's equation (3):
        #: UDC rounds are O(fan_out) files, LDC rounds O(1).
        self.round_bytes: List[int] = []
        self.registry.on_reset(self.round_bytes.clear)

    # ------------------------------------------------------------------
    # Round granularity
    # ------------------------------------------------------------------
    def record_round(self, nbytes: int) -> None:
        self.round_bytes.append(nbytes)

    def round_bytes_percentile(self, pct: float) -> int:
        """Percentile of per-round compaction sizes (granularity metric)."""
        if not self.round_bytes:
            return 0
        ordered = sorted(self.round_bytes)
        index = min(len(ordered) - 1, max(0, int(pct / 100 * len(ordered)) - 1))
        return ordered[index]

    @property
    def max_round_bytes(self) -> int:
        return max(self.round_bytes, default=0)

    # ------------------------------------------------------------------
    # Activity-time accounting (Table I)
    # ------------------------------------------------------------------
    def charge_activity(self, activity: str, elapsed_us: float) -> None:
        key = _ACTIVITY_KEYS.get(activity)
        if key is None:
            key = f"{_ACTIVITY_PREFIX}.{activity}"
        # Several calls per operation; EngineStats is a designated view
        # over the registry, so bump the counter dict directly.
        counters = self.registry._counters
        counters[key] = counters.get(key, 0) + elapsed_us

    @property
    def activity_time_us(self) -> Dict[str, float]:
        """Accumulated virtual time per activity (a copy)."""
        return self.registry.component(_ACTIVITY_PREFIX)

    @property
    def total_activity_time_us(self) -> float:
        return sum(self.activity_time_us.values())

    def activity_share(self) -> Dict[str, float]:
        """Fraction of accounted time per activity (Table I analogue)."""
        times = self.activity_time_us
        total = sum(times.values())
        if total <= 0:
            return {}
        return {
            activity: elapsed / total
            for activity, elapsed in sorted(times.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EngineStats(puts={self.puts}, gets={self.gets}, "
            f"flushes={self.flush_count}, compactions={self.compaction_count})"
        )


def _counter_property(name: str, cast: type) -> property:
    key = f"engine.{name}"

    def getter(self: EngineStats):
        return cast(self.registry.counter(key))

    def setter(self: EngineStats, value) -> None:
        self.registry.set_counter(key, cast(value))

    return property(getter, setter, doc=f"Registry counter ``{key}``.")


for _name in _INT_COUNTERS:
    setattr(EngineStats, _name, _counter_property(_name, int))
for _name in _FLOAT_COUNTERS:
    setattr(EngineStats, _name, _counter_property(_name, float))
del _name
