"""Engine-level statistics.

The device tracks I/O by category; this module tracks *engine activity
time* — how much virtual time was spent inside compaction, flushing, WAL
appends, memtable work and read service.  The activity breakdown is what
regenerates the paper's Table I ("DoCompactionWork 61.4%, file system
20.9%, DoWrite 8.04%").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

# Activity labels (Table I analogues).
ACT_COMPACTION = "compaction"  # DoCompactionWork
ACT_FLUSH = "flush"  # memtable dump to L0
ACT_WAL = "wal"  # log append (file system share)
ACT_WRITE = "write"  # DoWrite: memtable insert + stalls
ACT_READ = "read"  # point-lookup service
ACT_SCAN = "scan"  # range-query service


@dataclass
class EngineStats:
    """Counters and activity-time accounting for one DB instance."""

    puts: int = 0
    deletes: int = 0
    gets: int = 0
    get_hits: int = 0
    scans: int = 0
    scanned_records: int = 0
    flush_count: int = 0
    compaction_count: int = 0
    trivial_moves: int = 0
    link_count: int = 0  # LDC link-phase actions
    merge_count: int = 0  # LDC merge-phase actions
    forced_merges: int = 0  # LDC merges forced by space/level pressure
    stall_events: int = 0
    stall_time_us: float = 0.0
    user_bytes_written: int = 0
    sstable_blocks_read: int = 0  # data-block read count (paper Fig. 13)
    bloom_negative_skips: int = 0  # lookups a Bloom filter short-circuited
    activity_time_us: Dict[str, float] = field(default_factory=dict)
    #: Bytes moved (read + written) by each individual compaction round —
    #: the *granularity* distribution behind the paper's equation (3):
    #: UDC rounds are O(fan_out) files, LDC rounds O(1).
    round_bytes: List[int] = field(default_factory=list)

    def record_round(self, nbytes: int) -> None:
        self.round_bytes.append(nbytes)

    def round_bytes_percentile(self, pct: float) -> int:
        """Percentile of per-round compaction sizes (granularity metric)."""
        if not self.round_bytes:
            return 0
        ordered = sorted(self.round_bytes)
        index = min(len(ordered) - 1, max(0, int(pct / 100 * len(ordered)) - 1))
        return ordered[index]

    @property
    def max_round_bytes(self) -> int:
        return max(self.round_bytes, default=0)

    def charge_activity(self, activity: str, elapsed_us: float) -> None:
        self.activity_time_us[activity] = (
            self.activity_time_us.get(activity, 0.0) + elapsed_us
        )

    @property
    def total_activity_time_us(self) -> float:
        return sum(self.activity_time_us.values())

    def activity_share(self) -> Dict[str, float]:
        """Fraction of accounted time per activity (Table I analogue)."""
        total = self.total_activity_time_us
        if total <= 0:
            return {}
        return {
            activity: elapsed / total
            for activity, elapsed in sorted(self.activity_time_us.items())
        }
