"""Key-range helpers.

All internal range queries use half-open byte-key intervals ``[lo, hi)``
with ``None`` meaning unbounded.  The paper's responsibility ranges
(Example 3.2) are of the form ``(prev_max, max]``; in the byte keyspace the
immediate successor of ``k`` is ``k + b"\\x00"``, so ``(a, b]`` converts
exactly to ``[successor(a), successor(b))``.
"""

from __future__ import annotations

from typing import Optional


def key_successor(key: bytes) -> bytes:
    """Smallest byte string strictly greater than ``key``."""
    return key + b"\x00"


def in_range(key: bytes, lo: Optional[bytes], hi: Optional[bytes]) -> bool:
    """Membership test for the half-open interval ``[lo, hi)``."""
    if lo is not None and key < lo:
        return False
    if hi is not None and key >= hi:
        return False
    return True


def ranges_overlap(
    a_lo: Optional[bytes],
    a_hi: Optional[bytes],
    b_lo: Optional[bytes],
    b_hi: Optional[bytes],
) -> bool:
    """True if half-open intervals ``[a_lo, a_hi)`` and ``[b_lo, b_hi)`` meet."""
    if a_hi is not None and b_lo is not None and a_hi <= b_lo:
        return False
    if b_hi is not None and a_lo is not None and b_hi <= a_lo:
        return False
    return True


def clamp_range(
    lo: Optional[bytes],
    hi: Optional[bytes],
    outer_lo: Optional[bytes],
    outer_hi: Optional[bytes],
) -> tuple[Optional[bytes], Optional[bytes]]:
    """Intersect ``[lo, hi)`` with ``[outer_lo, outer_hi)``."""
    new_lo = lo
    if outer_lo is not None and (new_lo is None or outer_lo > new_lo):
        new_lo = outer_lo
    new_hi = hi
    if outer_hi is not None and (new_hi is None or outer_hi < new_hi):
        new_hi = outer_hi
    return new_lo, new_hi
