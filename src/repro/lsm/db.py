"""The LSM-tree key-value store facade.

``DB`` wires together the memtable, WAL, SSTables, version set, the
simulated SSD, and a pluggable compaction policy (UDC / LDC / tiered), and
exposes the user-facing operations: :meth:`put`, :meth:`delete`,
:meth:`get` and :meth:`scan`.

**Timing model.**  The engine is synchronous: a write that fills the
memtable performs the flush — and every compaction the flush makes due —
inline, on the virtual clock, before returning.  This is exactly the
blocking behaviour behind the paper's tail-latency equation (3)
(``tl_w = t_compaction + t_w``): most writes cost a WAL append plus a
memtable insert, while the occasional write absorbs an entire compaction
cascade, producing the long tail that LDC's small merges shrink.

**Read path.**  Lookups descend memtable → Level 0 (newest file first) →
deeper levels.  Under LDC, a lower-level SSTable carries *linked slices*
of frozen upper-level files which hold newer data than the file itself, so
each level-unit consults the slices (newest link first, gated by the frozen
files' Bloom filters) before the file (§III-B.3).
"""

from __future__ import annotations

import warnings
from typing import Iterator, List, Optional, Sequence, Tuple

from .builder import SSTableBuilder
from .cache import BlockCache
from .config import LSMConfig
from .iterators import merge_records
from .keys import clamp_range, key_successor
from .memtable import MemTable
from .record import (
    KIND_DELETE,
    KVRecord,
    RECORD_OVERHEAD_BYTES,
    delete_record,
    put_record,
)
from .sstable import SSTable
from .stats import (
    ACT_COMPACTION,
    ACT_FLUSH,
    ACT_READ,
    ACT_SCAN,
    ACT_WAL,
    ACT_WRITE,
    EngineStats,
)
from .version import VersionSet
from .wal import WriteAheadLog
from ..errors import ClosedError, CorruptionError, EngineError, RecoveryError
from ..faults.device import FaultyDevice
from ..faults.plan import FaultPlan
from ..obs.events import (
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_FLUSH,
    EV_RECOVERY,
    EV_STALL,
)
from ..obs.registry import MetricsRegistry
from ..obs.snapshot import MetricsSnapshot
from ..obs.tracer import Tracer
from ..sched.scheduler import CompactionScheduler
from ..ssd.device import SimulatedSSD
from ..ssd.flash import DeviceConfig
from ..ssd.metrics import FLUSH_WRITE, USER_READ, USER_SCAN
from ..ssd.profile import ENTERPRISE_PCIE, SSDProfile


class DB:
    """An LSM-tree key-value store over a simulated SSD.

    Parameters
    ----------
    config:
        Engine geometry and cost parameters (defaults are simulation-scale;
        see :class:`~repro.lsm.config.LSMConfig`).
    policy:
        A registered policy name (``"udc"``, ``"ldc"``, ``"tiered"``,
        ``"delayed"``, ...), a :class:`~repro.lsm.compaction.spec.
        PolicySpec`, or a pre-built policy instance; defaults to UDC.
        Unknown names raise :class:`~repro.errors.UnknownPolicyError`
        listing the registered policies.
    profile:
        Simulated device parameters; defaults to the enterprise PCIe
        profile mirroring the paper's testbed.  Accepts either a bare
        :class:`~repro.ssd.profile.SSDProfile` or a
        :class:`~repro.ssd.flash.DeviceConfig` — the latter optionally
        enables the flash/FTL layer (``DeviceConfig(flash=FlashSpec())``,
        docs/DEVICE.md), off by default.
    seed:
        Seed for the memtable skip list's height RNG.
    tracer:
        Event tracer receiving the engine's execution timeline (flushes,
        compaction rounds, links/merges, stalls, cache probes, device
        I/O).  Defaults to an inert tracer; attach a sink — or pass
        ``Tracer([RingBufferSink()])`` — to start recording.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`; when given, the
        simulated device is wrapped in a
        :class:`~repro.faults.device.FaultyDevice` that injects the
        plan's crashes, corruption and transient errors, and the decode
        paths verify block CRCs on every device read.

    Example
    -------
    >>> from repro import DB
    >>> db = DB()
    >>> db.put(b"k", b"v")
    >>> db.get(b"k")
    b'v'
    """

    def __init__(
        self,
        config: Optional[LSMConfig] = None,
        policy: Optional[object] = None,
        profile: "SSDProfile | DeviceConfig" = ENTERPRISE_PCIE,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        from .compaction.spec import make_policy  # registry resolution

        self.config = config if config is not None else LSMConfig()
        self.policy = make_policy(policy)
        sorted_levels = getattr(self.policy, "requires_sorted_levels", True)
        self.registry = MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.device = SimulatedSSD(
            profile, registry=self.registry, tracer=self.tracer
        )
        if fault_plan is not None:
            self.device = FaultyDevice(self.device, fault_plan)
        # Cached: read paths consult this once per device read to decide
        # whether to run the CRC verification (always False on the plain
        # device, so fault-free runs skip the checks entirely).
        self._faulty = self.device.injects_faults
        self.clock = self.device.clock
        if self.tracer.clock is None:
            self.tracer.clock = self.clock
        self.version = VersionSet(self.config, sorted_levels=sorted_levels)
        self.engine_stats = EngineStats(registry=self.registry)
        self._seed = seed
        self._memtable = MemTable(seed=seed)
        self._wal = WriteAheadLog(self.device) if self.config.wal_enabled else None
        self.block_cache = (
            BlockCache(self.config.block_cache_bytes, registry=self.registry)
            if self.config.block_cache_bytes > 0
            else None
        )
        self._next_seq = 1
        self._next_file_id = 1
        self._closed = False
        # Hot-path shortcut for per-operation counter bumps: one registry
        # add instead of a property read-modify-write (same end state).
        self._count = self.registry.add
        # The raw counter dict for the hottest integer bumps (engine.gets,
        # block reads): registry.reset zeroes values in place, so the dict
        # object stays valid for the DB's lifetime.
        self._counters = self.registry._counters
        # Stall triggers, cached: _maybe_stall runs before every write.
        self._l0_stop = self.config.l0_stop_trigger
        self._l0_slowdown = self.config.l0_slowdown_trigger
        # Fused user-read charging (see _charge_point_read): only the
        # plain simulated device has a closed-form cost with no fault
        # hooks; anything else keeps the full device.read call.
        if type(self.device) is SimulatedSSD:
            device_profile = self.device.profile
            self._read_overhead = device_profile.read_overhead_us
            self._read_per_byte = device_profile.read_us_per_byte
            self._user_read_stats = self.device.stats._stream(
                self.device.stats.reads, "read", USER_READ
            )
        else:
            self._user_read_stats = None
        self.policy.attach(self)
        #: Virtual-time background compaction (repro.sched); None keeps
        #: the historical synchronous engine with bit-identical timing.
        self.sched = (
            CompactionScheduler(self) if self.config.bg_threads > 0 else None
        )

    # ------------------------------------------------------------------
    # Id/sequence generation
    # ------------------------------------------------------------------
    def next_file_id(self) -> int:
        file_id = self._next_file_id
        self._next_file_id += 1
        return file_id

    def _next_sequence(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    @property
    def last_sequence(self) -> int:
        """Sequence number of the most recent write (0 before any write).

        The snapshot anchor: a sharded snapshot pins one of these per
        shard, giving a consistent cut of a store whose writes are
        strictly sequence-ordered.
        """
        return self._next_seq - 1

    def note_file_dropped(self, table) -> None:
        """A version permanently dropped ``table``; release its cache blocks.

        Compaction policies call this at true end-of-life only — merged
        inputs, replaced targets, recycled frozen files — never for
        trivial moves (same table re-added) or LDC link freezes (slices
        keep the file readable).

        With the flash layer enabled this is also the TRIM point: the
        dead file's pages are invalidated so GC can reclaim them instead
        of relocating stale data (free on the plain device).
        """
        if self.block_cache is not None:
            self.block_cache.evict_file(table.file_id)
        self.device.trim(table.file_id)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics(self) -> MetricsSnapshot:
        """Capture every metric as one frozen, diffable snapshot.

        The unified observability entry point: engine counters, device I/O
        categories, block-cache hit ratio and policy counters in one
        immutable object.  ``later.delta(earlier)`` isolates what happened
        between two captures without resetting anything.
        """
        return MetricsSnapshot.capture(self.registry, t_us=self.clock.now())

    @property
    def stats(self) -> EngineStats:
        """Deprecated alias for :attr:`engine_stats`.

        Prefer :meth:`metrics` for measurements or :attr:`engine_stats`
        for the live engine-counter view.
        """
        warnings.warn(
            "DB.stats is deprecated; use DB.metrics() for a unified "
            "snapshot or DB.engine_stats for the live view",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.engine_stats

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key``; may trigger flush and compactions."""
        self._check_open()
        _check_key(key)
        if not isinstance(value, bytes):
            raise TypeError("values must be bytes")
        record = put_record(key, value, self._next_sequence())
        self._apply_write(record)

    def delete(self, key: bytes) -> None:
        """Delete ``key`` by writing a tombstone."""
        self._check_open()
        _check_key(key)
        record = delete_record(key, self._next_sequence())
        self._apply_write(record)

    def write_batch(self, batch: "WriteBatch") -> None:
        """Apply a batch of mutations atomically-in-order.

        Mirrors LevelDB's ``WriteBatch``: the whole batch is appended to
        the WAL as one sequential write (amortising the per-request
        overhead), then applied to the memtable in order.  A flush can
        trigger mid-batch exactly as it can mid-stream.

        This is the batched-write fast path: stall check, WAL append and
        policy notification happen once per batch, the memtable loop runs
        with hoisted locals, and the integer engine counters are added in
        one registry call per batch (integer sums are exact, so the
        resulting metrics are bit-identical to per-record accounting; the
        per-record clock advances are kept because repeated float
        additions are *not* associative).
        """
        self._check_open()
        records = []
        push = records.append
        next_sequence = self._next_sequence
        for key, value in batch.entries:
            _check_key(key)
            if value is None:
                push(delete_record(key, next_sequence()))
            else:
                if not isinstance(value, bytes):
                    raise TypeError("values must be bytes")
                push(put_record(key, value, next_sequence()))
        if not records:
            return
        self.policy.on_operation(True)
        self._maybe_stall()
        sizes = [
            len(record[0]) + len(record[3]) + RECORD_OVERHEAD_BYTES
            for record in records
        ]
        total = sum(sizes)
        if self._wal is not None:
            elapsed = self._wal.append_batch(records, total)
            self.engine_stats.charge_activity(ACT_WAL, elapsed)
        start = self.clock.now()
        memtable_add = self._memtable.add
        advance = self.clock.advance
        insert_us = self.config.costs.memtable_insert_us
        deletes = 0
        for record in records:
            memtable_add(record)
            advance(insert_us)
            if record[2] == KIND_DELETE:
                deletes += 1
        count = self._count
        if deletes:
            count("engine.deletes", deletes)
        if deletes != len(records):
            count("engine.puts", len(records) - deletes)
        count("engine.user_bytes_written", total)
        self.engine_stats.charge_activity(ACT_WRITE, self.clock.now() - start)
        if self._memtable.approximate_bytes >= self.config.memtable_bytes:
            self.flush()
        self._maintenance_step()

    def _apply_write(self, record: KVRecord) -> None:
        self.policy.on_operation(True)
        self._maybe_stall()
        charge_activity = self.engine_stats.charge_activity
        if self._wal is not None:
            charge_activity(ACT_WAL, self._wal.append(record))
        clock = self.clock
        start = clock._now_us
        memtable = self._memtable
        memtable.add(record)
        clock.advance(self.config.costs.memtable_insert_us)
        counters = self._counters
        if record[2] == KIND_DELETE:
            counters["engine.deletes"] = counters.get("engine.deletes", 0) + 1
        else:
            counters["engine.puts"] = counters.get("engine.puts", 0) + 1
        counters["engine.user_bytes_written"] = (
            counters.get("engine.user_bytes_written", 0)
            + len(record[0]) + len(record[3]) + RECORD_OVERHEAD_BYTES
        )
        charge_activity(ACT_WRITE, clock._now_us - start)
        if memtable._bytes >= self.config.memtable_bytes:
            self.flush()
        self._maintenance_step()

    def _maybe_stall(self) -> None:
        """LevelDB's Level-0 back-pressure.

        With synchronous maintenance Level 0 rarely exceeds its trigger,
        but the guard stays: a storm of Level-0 files delays writes
        (slowdown) or forces compaction before proceeding (stop).  Under
        the scheduler the thresholds become mechanically live: Level 0
        accumulates while every background thread is paying off earlier
        compaction debt.
        """
        if self.sched is not None:
            self._maybe_stall_scheduled()
            return
        level0 = len(self.version.levels[0])
        if level0 >= self._l0_stop:
            start = self.clock.now()
            self._run_compactions()
            duration = self.clock.now() - start
            self.engine_stats.stall_events += 1
            self.engine_stats.stall_time_us += duration
            self.tracer.emit(
                EV_STALL, reason="l0_stop", level0_files=level0,
                duration_us=duration,
            )
        elif level0 >= self._l0_slowdown:
            self.clock.advance(self.config.l0_slowdown_delay_us)
            self.engine_stats.stall_events += 1
            self.engine_stats.stall_time_us += self.config.l0_slowdown_delay_us
            self.engine_stats.charge_activity(
                ACT_WRITE, self.config.l0_slowdown_delay_us
            )
            self.tracer.emit(
                EV_STALL, reason="l0_slowdown", level0_files=level0,
                duration_us=self.config.l0_slowdown_delay_us,
            )

    def _maybe_stall_scheduled(self) -> None:
        """Scheduler-mode throttling: real waits instead of inline drains.

        *Stop* (`l0_stop_trigger`): the write blocks, in virtual time,
        until background threads bring Level 0 back under the threshold —
        the clock jumps along task completions
        (:meth:`~repro.sched.scheduler.CompactionScheduler.stall_until_l0_below`).
        *Slowdown* (`l0_slowdown_trigger`): each write pays the fixed
        LevelDB-style delay, buying the background threads time to catch
        up.  Both paths mirror the synchronous accounting (engine stall
        counters, ``EV_STALL``) and add ``sched.*`` breakdowns.
        """
        level0 = len(self.version.levels[0])
        if level0 < self._l0_slowdown:
            return
        if level0 >= self._l0_stop:
            start = self.clock.now()
            self.sched.stall_until_l0_below(self._l0_stop)
            duration = self.clock.now() - start
            self.engine_stats.stall_events += 1
            self.engine_stats.stall_time_us += duration
            self.engine_stats.charge_activity(ACT_WRITE, duration)
            self._count("sched.stall_events")
            self._count("sched.stall_time_us", duration)
            self.tracer.emit(
                EV_STALL, reason="l0_stop", level0_files=level0,
                duration_us=duration,
            )
        else:
            delay = self.config.l0_slowdown_delay_us
            self.clock.advance(delay)
            self.engine_stats.stall_events += 1
            self.engine_stats.stall_time_us += delay
            self.engine_stats.charge_activity(ACT_WRITE, delay)
            self._count("sched.slowdown_events")
            self._count("sched.slowdown_time_us", delay)
            self.tracer.emit(
                EV_STALL, reason="l0_slowdown", level0_files=level0,
                duration_us=delay,
            )

    def throttle_state(self) -> str:
        """The L0 write-throttle signal: ``"none"``, ``"slowdown"`` or ``"stop"``.

        The read-only form of the thresholds :meth:`_maybe_stall` acts
        on, exposed so upstream layers (the :mod:`repro.serve` admission
        gate) can react *before* a write enters the engine and absorbs
        the delay — back-pressure instead of queue-wait.  Works in both
        modes; with the scheduler off the synchronous engine rarely lets
        Level 0 cross the triggers, so the signal mostly stays ``"none"``.
        """
        level0 = len(self.version.levels[0])
        if level0 >= self._l0_stop:
            return "stop"
        if level0 >= self._l0_slowdown:
            return "slowdown"
        return "none"

    def flush(self) -> None:
        """Dump the memtable to Level-0 SSTables and run due compactions."""
        self._check_open()
        if self._memtable.is_empty():
            return
        start = self.clock.now()
        builder = SSTableBuilder(self.config, self.next_file_id)
        builder.add_sorted_columns(*self._memtable.sorted_columns())
        outputs = builder.finish()
        flushed_bytes = 0
        for table in outputs:
            self.device.write(
                table.data_size, FLUSH_WRITE, sequential=True,
                owner=table.file_id,
            )
            self.version.add_file(0, table)
            flushed_bytes += table.data_size
        self._memtable = MemTable(seed=self._seed)
        if self._wal is not None:
            self._wal.reset()
        self.policy._maintenance_idle = False
        self.engine_stats.flush_count += 1
        self.engine_stats.charge_activity(ACT_FLUSH, self.clock.now() - start)
        self.tracer.emit(
            EV_FLUSH,
            tables=len(outputs),
            nbytes=flushed_bytes,
            duration_us=self.clock.now() - start,
        )

    def _maintenance_step(self) -> None:
        """One background-compaction round, charged to the current op.

        Models a compaction thread that keeps pace with the foreground:
        each user operation absorbs at most one round — UDC's rounds move
        O(fan_out) files, LDC's O(1), which is exactly the granularity
        difference behind the paper's tail-latency comparison (Fig. 8).

        With the scheduler enabled the round is not charged to this
        operation: the scheduler replays background chunks up to the
        current time and captures new rounds onto idle threads, and the
        foreground only pays when it collides with that work (device-
        channel waits, throttling).
        """
        if self.sched is not None:
            self.sched.on_operation()
            return
        policy = self.policy
        if policy._maintenance_idle:
            # Nothing structural changed since the last poll said "no
            # work due" — skip the whole decision chain.  The flag is
            # cleared by flush, seek exhaustion and adaptive-movement
            # operation notifications (see CompactionPolicy).
            return
        start = self.clock.now()
        if policy.compact_one_tracked():
            self.engine_stats.charge_activity(
                ACT_COMPACTION, self.clock.now() - start
            )
        elif policy._idle_stable:
            policy._maintenance_idle = True

    def _run_compactions(self) -> None:
        """Drain all due compaction work (Level-0 stop stall, close)."""
        start = self.clock.now()
        self.policy.maybe_compact()
        self.engine_stats.charge_activity(ACT_COMPACTION, self.clock.now() - start)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[bytes]:
        """Point lookup: newest visible value for ``key`` (None if absent)."""
        # Validation inlined for the common case (open DB, plain non-empty
        # bytes key); the slow path re-runs the full checks to raise the
        # same typed errors.
        if self._closed:
            self._check_open()
        if type(key) is not bytes or not key:
            _check_key(key)
        self.policy.on_operation(False)
        clock = self.clock
        start = clock._now_us
        counters = self._counters
        counters["engine.gets"] = counters.get("engine.gets", 0) + 1
        record = self._lookup(key)
        self.engine_stats.charge_activity(ACT_READ, clock._now_us - start)
        self._maintenance_step()
        if record is None or record[2] == KIND_DELETE:
            return None
        counters["engine.get_hits"] = counters.get("engine.get_hits", 0) + 1
        return record[3]

    def multi_get(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Point-lookup many keys; returns values aligned with ``keys``.

        The batched-read fast path: per-key simulated effects (policy
        notification, clock charges, maintenance step) are identical to
        calling :meth:`get` once per key — only the Python dispatch
        overhead is amortised, so metrics and virtual time stay
        bit-identical to the per-op loop.
        """
        self._check_open()
        on_operation = self.policy.on_operation
        now = self.clock.now
        count = self._count
        lookup = self._lookup
        charge = self.engine_stats.charge_activity
        maintenance = self._maintenance_step
        results: List[Optional[bytes]] = []
        push = results.append
        for key in keys:
            _check_key(key)
            on_operation(False)
            start = now()
            count("engine.gets")
            record = lookup(key)
            charge(ACT_READ, now() - start)
            maintenance()
            if record is None or record[2] == KIND_DELETE:
                push(None)
            else:
                count("engine.get_hits")
                push(record[3])
        return results

    def _lookup(self, key: bytes) -> Optional[KVRecord]:
        costs = self.config.costs
        advance = self.clock.advance
        advance(costs.memtable_lookup_us)
        record = self._memtable.get(key)
        if record is not None:
            return record
        version = self.version
        lookup_unit = self._lookup_unit
        bloom_us = costs.bloom_check_us
        count = self._count
        # Level 0: overlapping files, newest first.  Files are installed
        # by append with monotonically increasing ids, so reversed() gives
        # newest-first without a per-lookup sort.
        for table in reversed(version.files(0)):
            if not table.min_key <= key <= table.max_key:
                continue
            record = lookup_unit(key, table, advance, bloom_us, count)
            if record is not None:
                return record
        # Deeper levels.  Every sorted level charges its index probe even
        # when empty — the golden virtual-time contract.
        if version.sorted_levels:
            index_us = costs.index_lookup_us
            find_responsible = version.find_responsible_file
            for level in range(1, version.num_levels):
                advance(index_us)
                # Route by responsibility range, not raw range: linked
                # slices can hold keys outside their carrier file's own
                # [min, max] (see VersionSet.find_responsible_file).
                table = find_responsible(level, key)
                if table is not None:
                    record = lookup_unit(key, table, advance, bloom_us, count)
                    if record is not None:
                        return record
        else:
            for level in range(1, version.num_levels):
                # Tiered levels are append-ordered like Level 0.
                for table in reversed(version.files(level)):
                    if not table.min_key <= key <= table.max_key:
                        continue
                    record = lookup_unit(key, table, advance, bloom_us, count)
                    if record is not None:
                        return record
        return None

    def _lookup_unit(
        self,
        key: bytes,
        table: SSTable,
        advance,
        bloom_us: float,
        count,
    ) -> Optional[KVRecord]:
        """Check one level-resident SSTable and its linked slices.

        Slices hold strictly newer data than the table, so a slice hit
        short-circuits the table read; among slices the newest record wins
        (they are checked via the frozen files' Bloom filters, the
        mechanism Figs. 12c/f and 13 study).

        ``advance`` / ``bloom_us`` / ``count`` arrive pre-resolved from
        :meth:`_lookup` — this runs several times per point lookup, and
        the attribute chains dominate its cost otherwise.
        """
        best: Optional[KVRecord] = None
        if table.slice_links:
            for piece in table.links_newest_first():
                if not piece.covers_key(key):
                    continue
                advance(bloom_us)
                # Direct slot read skips the lazy-build ``bloom`` property
                # on the hot path; the property still builds on first use.
                source = piece.source
                bloom = source._bloom
                if bloom is None:
                    bloom = source.bloom
                if not bloom.may_contain(key):
                    count("engine.bloom_negative_skips")
                    continue
                self._charge_point_read(source, key)
                record = piece.get(key)
                if record is not None and (best is None or record[1] > best[1]):
                    best = record
            if best is not None:
                return best
        if not table.min_key <= key <= table.max_key:
            # The key fell in this file's responsibility gap: only the
            # slices (checked above) could have held it.
            return None
        advance(bloom_us)
        bloom = table._bloom
        if bloom is None:
            bloom = table.bloom
        if not bloom.may_contain(key):
            count("engine.bloom_negative_skips")
            return None
        self._charge_point_read(table, key)
        record = table.get(key)
        if record is None and self.config.seek_compaction_enabled:
            # LevelDB seek compaction: an unproductive probe (block read
            # that found nothing) spends the file's seek budget.
            table.allowed_seeks -= 1
            if table.allowed_seeks == 0:
                self.policy.note_seek_exhausted(table)
        return record

    def _charge_point_read(self, table: SSTable, key: bytes) -> None:
        """Charge one data-block read, via the block cache when enabled.

        A cache hit costs a CPU constant; a miss reads the block from the
        device and installs it.  Only device reads count toward the
        Fig. 13 block-read statistic.
        """
        located = table.block_for_key(key)
        if located is None:
            return
        block_index, nbytes = located
        cache = self.block_cache
        if cache is not None and cache.lookup(table.file_id, block_index):
            self.clock.advance(self.config.costs.cache_hit_us)
            self.tracer.emit(
                EV_CACHE_HIT, file_id=table.file_id, block=block_index,
                nbytes=nbytes,
            )
            return
        if cache is not None:
            self.tracer.emit(
                EV_CACHE_MISS, file_id=table.file_id, block=block_index,
                nbytes=nbytes,
            )
        stats = self._user_read_stats
        device = self.device
        if (
            stats is not None
            and device.channel is None
            and not device.tracer.active
        ):
            # Fused plain-device block read: identical charge expression
            # and counter updates to SimulatedSSD.read, one call deep.
            elapsed = self._read_overhead + nbytes * self._read_per_byte
            self.clock.advance_io(elapsed, nbytes)
            stats.record(nbytes, elapsed)
        else:
            device.read(nbytes, USER_READ)
            if self._faulty:
                # Verify before the cache insert so a corrupt block is
                # never served from memory later.
                self._verify_block_read(table, (block_index,))
        counters = self._counters
        counters["engine.sstable_blocks_read"] = (
            counters.get("engine.sstable_blocks_read", 0) + 1
        )
        if cache is not None:
            cache.insert(table.file_id, block_index, nbytes)

    def _verify_block_read(self, table: SSTable, block_indices) -> None:
        """Check a just-charged device read of ``table`` blocks for corruption.

        The fault-injecting device parks an XOR mask when it flipped bits
        in the delivered copy; comparing the stored per-block CRCs against
        the delivered ones (stored XOR mask) surfaces the flip as a typed
        :class:`~repro.errors.CorruptionError`.
        """
        mask = self.device.consume_read_corruption()
        if not mask:
            return
        expected = 0
        for block_index in block_indices:
            expected ^= table.block_crc(block_index)
        self._count("faults.corruptions_detected")
        raise CorruptionError(
            f"file {table.file_id} block(s) {list(block_indices)} failed CRC "
            f"verification: stored 0x{expected & 0xFFFFFFFF:08x}, "
            f"read 0x{(expected ^ mask) & 0xFFFFFFFF:08x}"
        )

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------
    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, bytes]]:
        """Return up to ``count`` live key-value pairs with key >= start.

        Merges the memtable, every overlapping Level-0 file, the deeper
        levels and (under LDC) all linked slices; tombstones shadow older
        versions and are not returned.
        """
        self._check_open()
        _check_key(start_key)
        if count <= 0:
            return []
        self.policy.on_operation(False)
        start_time = self.clock.now()
        self.engine_stats.scans += 1

        sources: List = [self._memtable.iter_from(start_key)]
        tables: List[SSTable] = []
        slices: List = []
        for level in range(self.version.num_levels):
            for table in self.version.files(level):
                if table.max_key >= start_key:
                    tables.append(table)
                    sources.append(iter(table.records_in_range(start_key, None)))
                for piece in table.slice_links:
                    if piece.hi is None or piece.hi > start_key:
                        slices.append(piece)
                        sources.append(iter(piece.records_in_range(start_key, None)))

        results: List[Tuple[bytes, bytes]] = []
        for record in merge_records(sources):
            self.clock.advance(self.config.costs.scan_per_record_us)
            if record.is_tombstone:
                continue
            results.append((record.key, record.value))
            if len(results) >= count:
                break
        self.engine_stats.scanned_records += len(results)

        # Charge the device for the block ranges each source actually
        # covered: from the scan start up to the last key returned (or the
        # whole tail when the store was exhausted first).
        end_hi = key_successor(results[-1][0]) if len(results) >= count else None
        for table in tables:
            self._charge_range_read(table, start_key, end_hi)
        for piece in slices:
            lo, hi = clamp_range(piece.lo, piece.hi, start_key, end_hi)
            self._charge_range_read(piece.source, lo, hi)
        self.engine_stats.charge_activity(ACT_SCAN, self.clock.now() - start_time)
        self._maintenance_step()
        return results

    def _charge_range_read(self, table: SSTable, lo, hi) -> None:
        """Charge a range read over ``[lo, hi)`` of ``table``.

        Without a cache this is one sequential device read of the covered
        blocks.  With a cache, resident blocks cost CPU only and
        contiguous runs of missing blocks coalesce into sequential reads.
        """
        blocks = table.blocks_in_range(lo, hi)
        if not blocks:
            return
        cache = self.block_cache
        if cache is None:
            self.device.read(
                sum(nbytes for _, nbytes in blocks), USER_SCAN, sequential=True
            )
            if self._faulty:
                self._verify_block_read(table, [b for b, _ in blocks])
            return
        if self._faulty:
            self._charge_range_read_verified(table, blocks, cache)
            return
        run_bytes = 0
        for block_index, nbytes in blocks:
            if cache.lookup(table.file_id, block_index):
                if run_bytes:
                    self.device.read(run_bytes, USER_SCAN, sequential=True)
                    run_bytes = 0
                self.clock.advance(self.config.costs.cache_hit_us)
            else:
                run_bytes += nbytes
                cache.insert(table.file_id, block_index, nbytes)
        if run_bytes:
            self.device.read(run_bytes, USER_SCAN, sequential=True)

    def _charge_range_read_verified(self, table: SSTable, blocks, cache) -> None:
        """Fault-aware variant of the cached range read.

        Same coalescing as the fast path, but each run's blocks are only
        installed in the cache *after* the device read passed CRC
        verification — a corrupt run must not become future cache hits.
        """
        run_bytes = 0
        run_blocks: List[Tuple[int, int]] = []
        for block_index, nbytes in blocks:
            if cache.lookup(table.file_id, block_index):
                if run_bytes:
                    self._read_verified_run(table, run_bytes, run_blocks, cache)
                    run_bytes = 0
                    run_blocks = []
                self.clock.advance(self.config.costs.cache_hit_us)
            else:
                run_bytes += nbytes
                run_blocks.append((block_index, nbytes))
        if run_bytes:
            self._read_verified_run(table, run_bytes, run_blocks, cache)

    def _read_verified_run(self, table, run_bytes, run_blocks, cache) -> None:
        self.device.read(run_bytes, USER_SCAN, sequential=True)
        self._verify_block_read(table, [b for b, _ in run_blocks])
        for block_index, nbytes in run_blocks:
            cache.insert(table.file_id, block_index, nbytes)

    # ------------------------------------------------------------------
    # Introspection and maintenance
    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        """Total device space held: resident files plus policy-held extras.

        For LDC the extras are the frozen region — the quantity behind the
        paper's space-efficiency experiment (Fig. 15).  Linked slices are
        *not* added on top: their bytes live inside the frozen files.
        """
        return self.version.total_file_bytes() + self.policy.extra_space_bytes()

    def write_amplification(self) -> float:
        """Measured physical-to-logical write ratio (Definition 2.6)."""
        return self.device.stats.write_amplification(self.engine_stats.user_bytes_written)

    def logical_items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Every live key-value pair, in key order, without cost charging.

        A verification backdoor for tests and examples: reads the whole
        logical store (memtable, all levels, all slices) off the clock.
        """
        self._check_open()
        sources: List = [iter(list(self._memtable))]
        for level in range(self.version.num_levels):
            for table in self.version.files(level):
                sources.append(iter(table.records))
                for piece in table.slice_links:
                    sources.append(iter(piece.records()))
        for record in merge_records(sources):
            if not record.is_tombstone:
                yield record.key, record.value

    def describe(self) -> str:
        """A human-readable snapshot of the store (LevelDB's GetProperty).

        Shows per-level file counts, sizes and linked-slice bytes, the
        policy's extra space, and the headline counters — handy in
        examples and when debugging experiments.
        """
        lines = [
            f"policy={self.policy.name}  virtual_time={self.clock.now() / 1e6:.3f}s",
            f"memtable: {len(self._memtable)} records, "
            f"{self._memtable.approximate_bytes} bytes",
            "level  files  data_bytes  linked_bytes  score",
        ]
        for level in range(self.version.num_levels):
            files = self.version.files(level)
            if not files and level > 1:
                continue
            data = sum(table.data_size for table in files)
            linked = sum(table.linked_bytes for table in files)
            score = self.version.level_score(level) if level < self.version.num_levels - 1 else 0.0
            lines.append(
                f"{level:>5}  {len(files):>5}  {data:>10}  {linked:>12}  {score:>5.2f}"
            )
        extra = self.policy.extra_space_bytes()
        if extra:
            lines.append(f"frozen region: {extra} bytes")
        stats = self.engine_stats
        lines.append(
            f"ops: puts={stats.puts} deletes={stats.deletes} gets={stats.gets} "
            f"scans={stats.scans}"
        )
        lines.append(
            f"maintenance: flushes={stats.flush_count} "
            f"compactions={stats.compaction_count} links={stats.link_count} "
            f"merges={stats.merge_count} trivial_moves={stats.trivial_moves}"
        )
        lines.append(f"write_amplification={self.write_amplification():.2f}")
        return "\n".join(lines)

    def reset_measurements(self) -> None:
        """Zero every measurement through the shared metrics registry.

        Called by the harness after a load phase so that measured I/O,
        amplification and activity shares cover only the measured
        operations (the virtual clock keeps running).  One registry reset
        zeroes engine, device, block-cache *and* policy counters
        consistently — including policy-internal ones that the old
        object-replacement approach could not reach — and clears
        registered auxiliary state such as the per-round byte histogram.
        Gauges (e.g. LDC's current threshold) describe live state and are
        preserved.
        """
        self.registry.reset()

    def crash_and_recover(self) -> int:
        """Simulate a crash: drop the memtable, replay the WAL.

        Returns the number of records recovered.  Raises
        :class:`~repro.errors.RecoveryError` when the WAL is disabled
        (recovery would lose the memtable contents).

        Recovery rebuilds every piece of engine state the dropped
        memtable carried: the log is re-read from the device (charged as
        ``wal_read``, torn tail units dropped), the surviving records are
        bulk-loaded into a fresh memtable, and the next sequence number
        is recomputed from the durable maximum — the highest sequence in
        any live file, linked slice source, or replayed record — so that
        post-recovery writes never reuse an acknowledged sequence.
        """
        self._check_open()
        if self._wal is None:
            raise RecoveryError(
                "cannot recover without a WAL: the memtable contents are lost"
            )
        if self.sched is not None:
            # In-flight background chunks are pure time debt (their rounds'
            # logical effects applied at capture), and a rebooted store
            # does not owe the dead process's unpaid time.
            self.sched.discard_inflight()
        start = self.clock.now()
        records = self._wal.recover()
        self._memtable = MemTable(seed=self._seed)
        # Durable maximum sequence: live tables, their slice sources
        # (every frozen file is reachable through some in-tree file's
        # slice_links while its refcount is non-zero), and the WAL.
        max_seq = 0
        for table in self.version.all_tables():
            if table.max_seq > max_seq:
                max_seq = table.max_seq
            for piece in table.slice_links:
                if piece.source.max_seq > max_seq:
                    max_seq = piece.source.max_seq
        if records:
            # Replaying one-at-a-time re-searches the skip list per record;
            # instead sort by (key, seq), keep the newest version per key
            # (exactly what per-record add() would have retained) and
            # bulk-load the survivors at the skip-list tail.
            ordered = sorted(records, key=lambda record: (record.key, record.seq))
            newest = [
                record
                for record, nxt in zip(ordered, ordered[1:] + [None])
                if nxt is None or nxt.key != record.key
            ]
            self._memtable.add_sorted_batch(newest)
            if ordered[-1].seq > max_seq:
                max_seq = max(record.seq for record in records)
        self._next_seq = max_seq + 1
        duration = self.clock.now() - start
        self.engine_stats.charge_activity(ACT_WAL, duration)
        self._count("engine.recoveries")
        if records:
            self._count("engine.recovered_records", len(records))
        self.tracer.emit(
            EV_RECOVERY,
            records=len(records),
            next_seq=self._next_seq,
            duration_us=duration,
        )
        return len(records)

    def check_invariants(self) -> None:
        """Verify cross-layer structural invariants; raise on violation.

        The crash-test oracle: after every simulated crash + recovery
        (and at the end of integration tests) the store must satisfy

        * the version-set invariants — levels >= 1 sorted and
          non-overlapping, byte counters consistent, no frozen file
          resident in a level;
        * every linked slice's source is frozen, and each frozen source's
          refcount equals its live slice fan-in;
        * the policy's own invariants (LDC checks its frozen region);
        * every cached block belongs to a live file (resident in a level
          or a still-referenced frozen source).
        """
        self._check_open()
        self.version.check_invariants()
        live_ids = set()
        fan_in: dict = {}
        sources: dict = {}
        for table in self.version.all_tables():
            live_ids.add(table.file_id)
            for piece in table.slice_links:
                source = piece.source
                sources[source.file_id] = source
                fan_in[source.file_id] = fan_in.get(source.file_id, 0) + 1
        for file_id, source in sources.items():
            live_ids.add(file_id)
            if not source.frozen:
                raise EngineError(
                    f"slice source {file_id} is linked but not frozen"
                )
            if source.refcount != fan_in[file_id]:
                raise EngineError(
                    f"frozen file {file_id} refcount {source.refcount} != "
                    f"live slice fan-in {fan_in[file_id]}"
                )
        self.policy.check_invariants()
        if self.sched is not None:
            self.sched.check_invariants()
        flash = self.device.flash if hasattr(self.device, "flash") else None
        if flash is not None:
            flash.check_invariants()
        if self.block_cache is not None:
            stale = self.block_cache.cached_file_ids() - live_ids
            if stale:
                raise EngineError(
                    f"block cache holds blocks of dead files {sorted(stale)}"
                )

    def close(self) -> None:
        """Flush outstanding writes and refuse further operations.

        Also closes the tracer so file-backed trace sinks are flushed.
        """
        if self._closed:
            return
        self.flush()
        if self.sched is not None:
            # Join the background threads: pay outstanding compaction debt
            # so the closing clock covers all work this store caused.
            self.sched.drain()
        self._closed = True
        self.tracer.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("database is closed")

    def __enter__(self) -> "DB":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DB(policy={self.policy.name!r}, files={self.version.num_files()}, "
            f"t={self.clock.now():.0f}us)"
        )


class WriteBatch:
    """An ordered collection of mutations applied via :meth:`DB.write_batch`.

    Example
    -------
    >>> from repro import DB
    >>> from repro.lsm.db import WriteBatch
    >>> db = DB()
    >>> batch = WriteBatch()
    >>> batch.put(b"a", b"1").put(b"b", b"2").delete(b"a")
    WriteBatch(3 entries)
    >>> db.write_batch(batch)
    >>> db.get(b"b")
    b'2'
    """

    def __init__(self) -> None:
        self.entries: List[Tuple[bytes, Optional[bytes]]] = []

    def put(self, key: bytes, value: bytes) -> "WriteBatch":
        self.entries.append((key, value))
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        self.entries.append((key, None))
        return self

    def clear(self) -> None:
        self.entries = []

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"WriteBatch({len(self.entries)} entries)"


def _check_key(key: bytes) -> None:
    if not isinstance(key, bytes):
        raise TypeError("keys must be bytes")
    if not key:
        raise EngineError("keys must be non-empty")
