"""Write-ahead log cost model with write-ahead ordering and torn tails.

LevelDB appends every mutation to a log file before applying it to the
memtable so that a crash cannot lose acknowledged writes.  The log is
sequential-append I/O; it is reset whenever the memtable it protects is
flushed.  We model exactly that, and we model it *crash-accurately*:

* **Write-ahead ordering.**  The device write is charged first; the
  record only joins the in-memory log image once the write returns.  An
  injected crash (:class:`~repro.errors.SimulatedCrash`) during the
  append therefore leaves the log without the record — exactly what a
  real crash before the ``fsync`` does — instead of resurrecting an
  unacknowledged write at recovery.
* **Durable units.**  Each append (single record or whole batch) is one
  unit.  A crash mid-append may leave a *torn* unit: the crash carries
  the number of bytes that reached the media, and the torn unit is kept
  with its surviving byte count so recovery can detect and drop it —
  giving batches their all-or-nothing guarantee.
* **Charged recovery.**  :meth:`recover` charges one sequential
  ``wal_read`` of the stored bytes (satellite: recovery I/O is no longer
  free), counts dropped torn units under ``faults.torn_records_dropped``,
  and verifies the read against injected corruption, raising
  :class:`~repro.errors.CorruptionError` on a flipped-bit delivery.
"""

from __future__ import annotations

import zlib
from typing import List

from .record import KVRecord, RECORD_OVERHEAD_BYTES
from ..errors import CorruptionError, SimulatedCrash
from ..ssd.device import SimulatedSSD
from ..ssd.flash import WAL_STREAM_OWNER
from ..ssd.metrics import WAL_READ, WAL_WRITE

#: Registry key counting torn (partially persisted) units dropped at recovery.
CTR_TORN_DROPPED = "faults.torn_records_dropped"


class _Unit:
    """One durable append unit: a single record or a whole batch."""

    __slots__ = ("records", "nbytes", "torn_bytes", "complete")

    def __init__(self, records: List[KVRecord], nbytes: int) -> None:
        self.records = records
        self.nbytes = nbytes
        #: Bytes on media for a torn unit (< nbytes); only meaningful
        #: when ``complete`` is False.
        self.torn_bytes = 0
        self.complete = False


class WriteAheadLog:
    """Sequential-append log protecting the active memtable."""

    def __init__(self, device: SimulatedSSD) -> None:
        self._device = device
        self._units: List[_Unit] = []
        self._bytes = 0
        # Per-put fast path: on the plain simulated device an append is a
        # straight-line cost formula plus three counter bumps, so the
        # write-cost/charge/record call chain can be fused.  Fault
        # injection (crashes, torn tails) lives in FaultyDevice, which is
        # not a SimulatedSSD subclass — the fused path never skips it.
        # A flash layer also disables fusing: appends must reach the FTL's
        # stream buffer, so they take the full device.write path.
        if type(device) is SimulatedSSD and device.flash is None:
            profile = device.profile
            self._seq_overhead = (
                profile.write_overhead_us * profile.sequential_discount
            )
            self._per_byte = profile.write_us_per_byte
            self._write_stats = device.stats._stream(
                device.stats.writes, "write", WAL_WRITE
            )
        else:
            self._write_stats = None

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: KVRecord) -> float:
        """Log one mutation; returns the virtual time charged (µs)."""
        nbytes = len(record[0]) + len(record[3]) + RECORD_OVERHEAD_BYTES
        device = self._device
        stats = self._write_stats
        if (
            stats is None
            or device.channel is not None
            or device.tracer.active
        ):
            return self._append_unit([record], nbytes)
        # Fused plain-device append: identical charge expression and
        # counter updates to SimulatedSSD.write, one call deep.
        unit = _Unit([record], nbytes)
        self._units.append(unit)
        self._bytes += nbytes
        elapsed = self._seq_overhead + nbytes * self._per_byte
        device.clock.advance_io(elapsed, nbytes)
        stats.record(nbytes, elapsed)
        unit.complete = True
        return elapsed

    def append_batch(self, records: List[KVRecord], total_bytes: int) -> float:
        """Log a whole batch as one sequential write (WriteBatch path).

        Batching amortises the per-request device overhead across the
        batch — the reason LevelDB applications group writes.  The batch
        is one durable unit: recovery replays it entirely or not at all.
        """
        return self._append_unit(list(records), total_bytes)

    def _append_unit(self, records: List[KVRecord], nbytes: int) -> float:
        unit = _Unit(records, nbytes)
        self._units.append(unit)
        self._bytes += nbytes
        try:
            elapsed = self._device.write(
                nbytes, WAL_WRITE, sequential=True,
                owner=WAL_STREAM_OWNER, stream=True,
            )
        except SimulatedCrash as crash:
            # The write never completed; record how much of the unit the
            # crash left on media so recovery sees (and drops) the torn
            # tail rather than replaying a phantom acknowledged write.
            unit.torn_bytes = min(crash.torn_bytes, nbytes)
            self._bytes -= nbytes - unit.torn_bytes
            raise
        unit.complete = True
        return elapsed

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def unflushed_bytes(self) -> int:
        return self._bytes

    @property
    def unflushed_count(self) -> int:
        return sum(len(u.records) for u in self._units if u.complete)

    @property
    def has_torn_tail(self) -> bool:
        """True when the log image ends in a partially persisted unit."""
        return any(not u.complete for u in self._units)

    def reset(self) -> None:
        """Discard the log after its memtable has been durably flushed.

        Also the log's TRIM point: with a flash layer attached the dead
        log pages (and any partial-page fill remainder) are invalidated
        so GC never relocates stale WAL data.
        """
        self._units = []
        self._bytes = 0
        device = self._device
        if self._write_stats is None:
            # Only non-fused devices can carry a flash layer (see ctor).
            device.trim(WAL_STREAM_OWNER)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> List[KVRecord]:
        """Replay the log: the mutations a restart re-applies, in order.

        Charges one sequential ``wal_read`` for the stored bytes (zero
        bytes stored ⇒ no charge), drops torn units (counted under
        ``faults.torn_records_dropped``), and checks the read against
        injected corruption: a non-zero corruption mask from the device
        flips the log's checksum, surfacing as
        :class:`~repro.errors.CorruptionError`.
        """
        if self._bytes > 0:
            self._device.read(self._bytes, WAL_READ, sequential=True)
            mask = self._device.consume_read_corruption()
            if mask:
                expected = self.checksum()
                raise CorruptionError(
                    f"WAL replay checksum mismatch: stored 0x{expected:08x}, "
                    f"read 0x{expected ^ mask:08x}"
                )
        records: List[KVRecord] = []
        dropped = 0
        for unit in self._units:
            if unit.complete:
                records.extend(unit.records)
            else:
                dropped += 1
        if dropped:
            self._device.registry.add(CTR_TORN_DROPPED, dropped)
        return records

    def checksum(self) -> int:
        """CRC32 over the durable log image (complete units, in order)."""
        crc = 0
        for unit in self._units:
            if unit.complete:
                for record in unit.records:
                    crc = zlib.crc32(repr(record).encode(), crc)
        return crc
