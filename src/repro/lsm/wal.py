"""Write-ahead log cost model.

LevelDB appends every mutation to a log file before applying it to the
memtable so that a crash cannot lose acknowledged writes.  The log is
sequential-append I/O; it is reset whenever the memtable it protects is
flushed.  We model exactly that: each append charges a sequential device
write, and the in-memory copy of unflushed records supports a recovery
simulation used by the crash-recovery tests.
"""

from __future__ import annotations

from typing import List

from .record import KVRecord
from ..ssd.device import SimulatedSSD
from ..ssd.metrics import WAL_WRITE


class WriteAheadLog:
    """Sequential-append log protecting the active memtable."""

    def __init__(self, device: SimulatedSSD) -> None:
        self._device = device
        self._records: List[KVRecord] = []
        self._bytes = 0

    def append(self, record: KVRecord) -> float:
        """Log one mutation; returns the virtual time charged (µs)."""
        self._records.append(record)
        self._bytes += record.encoded_size
        return self._device.write(record.encoded_size, WAL_WRITE, sequential=True)

    def append_batch(self, records: List[KVRecord], total_bytes: int) -> float:
        """Log a whole batch as one sequential write (WriteBatch path).

        Batching amortises the per-request device overhead across the
        batch — the reason LevelDB applications group writes.
        """
        self._records.extend(records)
        self._bytes += total_bytes
        return self._device.write(total_bytes, WAL_WRITE, sequential=True)

    @property
    def unflushed_bytes(self) -> int:
        return self._bytes

    @property
    def unflushed_count(self) -> int:
        return len(self._records)

    def reset(self) -> None:
        """Discard the log after its memtable has been durably flushed."""
        self._records = []
        self._bytes = 0

    def recover(self) -> List[KVRecord]:
        """Return the mutations a restart would replay into a fresh memtable."""
        return list(self._records)
