"""The in-memory write buffer (Definition 2.2).

All mutations land here first; when :attr:`MemTable.approximate_bytes`
reaches the configured capacity the engine flushes the contents to a
Level-0 SSTable.  The memtable keeps only the newest record per user key —
older in-memtable versions are unobservable in this engine (no snapshot
reads), so overwriting in place is both correct and fast.

Storage layout
--------------
Earlier versions indexed records with a skip list (`repro.lsm.skiplist`,
still shipped for the crash-recovery tooling and its own tests).  A skip
list pays per-node object and pointer overhead on every insert to keep the
keys *always* sorted — but this engine only needs sorted order at flush,
scan and recovery time, never on the put/get fast path.  The buffer is
therefore array-backed: a hash index (``dict``) from key to the newest
record, plus a sorted key array rebuilt lazily.  Inserts are amortised
O(1); the first ordered read after a batch of inserts sorts once
(Timsort on the mostly-sorted key array is near-linear), and point reads
never sort at all.

The simulated cost model is unaffected: the clock charges the configured
``memtable_insert_us`` / ``memtable_lookup_us`` regardless of the host
data structure, and iteration order (ascending by key, newest record per
key) is identical to the skip list's.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, List, Optional

from .record import KVRecord, RECORD_OVERHEAD_BYTES


class MemTable:
    """Sorted in-memory buffer of the newest record per key.

    ``seed`` is accepted for compatibility with the skip-list-backed
    implementation (which randomised node heights); the array-backed
    buffer is deterministic and ignores it.
    """

    __slots__ = ("_records", "_keys", "_dirty", "_bytes")

    def __init__(self, seed: int = 0) -> None:
        self._records: dict = {}
        self._keys: List[bytes] = []
        self._dirty = False
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def approximate_bytes(self) -> int:
        """Encoded size of the buffered records (flush trigger input)."""
        return self._bytes

    def add(self, record: KVRecord) -> None:
        """Insert a record, replacing any older version of the same key."""
        records = self._records
        key = record[0]
        previous = records.get(key)
        records[key] = record
        # KVRecord.encoded_size inlined: this runs once per write and the
        # property call dominates an otherwise dict-only operation.
        if previous is None:
            self._dirty = True
            self._bytes += len(key) + len(record[3]) + RECORD_OVERHEAD_BYTES
        else:
            self._bytes += len(record[3]) - len(previous[3])

    def add_sorted_batch(self, records: Iterable[KVRecord]) -> int:
        """Bulk-load records whose keys strictly increase past the tail.

        Recovery fast path: appends keys directly onto the sorted array
        (no re-sort needed) when the buffer's order is clean.  Keys must
        be strictly increasing and all greater than any key already
        buffered — the same contract the skip list's tail-link path had.
        """
        index = self._records
        in_order = not self._dirty
        keys = self._keys
        push = keys.append
        added = 0
        total = 0
        for record in records:
            key = record[0]
            index[key] = record
            if in_order:
                push(key)
            total += len(key) + len(record[3]) + RECORD_OVERHEAD_BYTES
            added += 1
        if not in_order:
            self._dirty = True
        self._bytes += total
        return added

    def get(self, key: bytes) -> Optional[KVRecord]:
        """Return the newest buffered record for ``key`` (may be tombstone)."""
        return self._records.get(key)

    def _sorted_keys(self) -> List[bytes]:
        if self._dirty:
            self._keys = sorted(self._records)
            self._dirty = False
        return self._keys

    def sorted_records(self) -> List[KVRecord]:
        """All buffered records as a key-ascending list (flush fast path)."""
        records = self._records
        return [records[key] for key in self._sorted_keys()]

    def sorted_columns(self) -> tuple:
        """``(keys, records)`` parallel columns, key-ascending.

        The columnar flush path: the sorted key array already exists (or
        is sorted once here), so the builder and the SSTable constructor
        can reuse it instead of re-extracting keys record by record.  The
        returned key list is shared with the memtable — callers must
        treat it as immutable (flush discards the memtable right after).
        """
        records = self._records
        keys = self._sorted_keys()
        return keys, [records[key] for key in keys]

    def __iter__(self) -> Iterator[KVRecord]:
        records = self._records
        for key in self._sorted_keys():
            yield records[key]

    def iter_from(self, key: bytes) -> Iterator[KVRecord]:
        """Iterate records in key order starting at the first key >= ``key``."""
        keys = self._sorted_keys()
        records = self._records
        for index in range(bisect_left(keys, key), len(keys)):
            yield records[keys[index]]

    def is_empty(self) -> bool:
        return not self._records
