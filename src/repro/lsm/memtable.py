"""The in-memory write buffer (Definition 2.2).

All mutations land here first; when :attr:`MemTable.approximate_bytes`
reaches the configured capacity the engine flushes the contents to a
Level-0 SSTable.  The memtable keeps only the newest record per user key —
older in-memtable versions are unobservable in this engine (no snapshot
reads), so overwriting in place is both correct and fast.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .record import KVRecord
from .skiplist import SkipList


class MemTable:
    """Sorted in-memory buffer of the newest record per key."""

    def __init__(self, seed: int = 0) -> None:
        self._index = SkipList(seed=seed)
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._index)

    @property
    def approximate_bytes(self) -> int:
        """Encoded size of the buffered records (flush trigger input)."""
        return self._bytes

    def add(self, record: KVRecord) -> None:
        """Insert a record, replacing any older version of the same key."""
        previous = self._index.upsert(record.key, record)
        if previous is not None:
            self._bytes -= previous.encoded_size  # type: ignore[union-attr]
        self._bytes += record.encoded_size

    def add_sorted_batch(self, records: Iterable[KVRecord]) -> int:
        """Bulk-load records whose keys strictly increase past the tail.

        Recovery fast path: links each record at the skip list's tail
        instead of searching from the top.  Keys must be strictly
        increasing and all greater than any key already buffered.
        """
        records = list(records)
        count = self._index.extend_sorted(
            (record.key, record) for record in records
        )
        self._bytes += sum(record.encoded_size for record in records)
        return count

    def get(self, key: bytes) -> Optional[KVRecord]:
        """Return the newest buffered record for ``key`` (may be tombstone)."""
        record = self._index.get(key)
        return record  # type: ignore[return-value]

    def __iter__(self) -> Iterator[KVRecord]:
        for _, record in self._index:
            yield record  # type: ignore[misc]

    def iter_from(self, key: bytes) -> Iterator[KVRecord]:
        """Iterate records in key order starting at the first key >= ``key``."""
        for _, record in self._index.iter_from(key):
            yield record  # type: ignore[misc]

    def is_empty(self) -> bool:
        return len(self._index) == 0
