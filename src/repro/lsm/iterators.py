"""K-way merge machinery for scans and compactions.

Both range scans (merging the memtable, Level-0 files, deeper levels and —
under LDC — linked slices) and compaction merges (Definition 2.4, LDC's
merge phase) reduce to the same operation: merge several key-sorted record
streams, keeping only the newest version of each user key.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List

from .record import KVRecord


def merge_records(sources: List[Iterable[KVRecord]]) -> Iterator[KVRecord]:
    """Merge key-sorted streams, yielding the newest record per user key.

    Each source must be internally sorted by key with at most one record
    per key.  Across sources, the record with the highest sequence number
    wins.  Tombstones are *not* filtered — callers decide whether deletes
    may be dropped (only at the bottom of the tree) or must be preserved.
    """
    heap: List[tuple[bytes, int, int, KVRecord]] = []
    iterators = [iter(source) for source in sources]
    for index, iterator in enumerate(iterators):
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(heap, (first.key, -first.seq, index, first))

    while heap:
        key, _, index, record = heapq.heappop(heap)
        # Refill from the winning source.
        nxt = next(iterators[index], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.key, -nxt.seq, index, nxt))
        # Drain older versions of the same key from other sources.
        while heap and heap[0][0] == key:
            _, _, other_index, _ = heapq.heappop(heap)
            refill = next(iterators[other_index], None)
            if refill is not None:
                heapq.heappush(heap, (refill.key, -refill.seq, other_index, refill))
        yield record


def live_records(merged: Iterable[KVRecord]) -> Iterator[KVRecord]:
    """Filter a newest-per-key stream down to visible (non-deleted) records."""
    for record in merged:
        if not record.is_tombstone:
            yield record
