"""K-way merge machinery for scans and compactions.

Both range scans (merging the memtable, Level-0 files, deeper levels and —
under LDC — linked slices) and compaction merges (Definition 2.4, LDC's
merge phase) reduce to the same operation: merge several key-sorted record
streams, keeping only the newest version of each user key.

This is one of the simulator's hottest loops (see ``repro bench
merge_throughput``), so the implementation trades a little clarity for
speed: a single live source degenerates to plain iteration (no heap at
all — the common case for scans over sparsely overlapping trees), and the
multi-way path drives the heap through cached bound ``__next__`` methods
with ``heapreplace`` (one sift) instead of push/pop pairs (two sifts).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List

from .record import KVRecord


def merge_records(sources: List[Iterable[KVRecord]]) -> Iterator[KVRecord]:
    """Merge key-sorted streams, yielding the newest record per user key.

    Each source must be internally sorted by key with at most one record
    per key.  Across sources, the record with the highest sequence number
    wins (ties — impossible for distinct engine mutations — fall to the
    earliest source).  Tombstones are *not* filtered — callers decide
    whether deletes may be dropped (only at the bottom of the tree) or
    must be preserved.
    """
    iterators: List[Iterator[KVRecord]] = []
    heap: List[tuple[bytes, int, int, KVRecord]] = []
    for source in sources:
        iterator = iter(source)
        first = next(iterator, None)
        if first is not None:
            heap.append((first.key, -first.seq, len(iterators), first))
            iterators.append(iterator)

    if not heap:
        return
    if len(heap) == 1:
        # Single live source: records are already unique-keyed and sorted.
        yield heap[0][3]
        yield from iterators[0]
        return

    heapq.heapify(heap)
    heappop = heapq.heappop
    heapreplace = heapq.heapreplace
    nexts = [iterator.__next__ for iterator in iterators]
    while heap:
        key, _, index, record = heap[0]
        try:
            nxt = nexts[index]()
        except StopIteration:
            heappop(heap)
        else:
            heapreplace(heap, (nxt.key, -nxt.seq, index, nxt))
        # Drain older versions of the same key from other sources.
        while heap and heap[0][0] == key:
            other = heap[0][2]
            try:
                refill = nexts[other]()
            except StopIteration:
                heappop(heap)
            else:
                heapreplace(heap, (refill.key, -refill.seq, other, refill))
        yield record


def live_records(merged: Iterable[KVRecord]) -> Iterator[KVRecord]:
    """Filter a newest-per-key stream down to visible (non-deleted) records."""
    for record in merged:
        if not record.is_tombstone:
            yield record
