"""Configuration for the LSM-tree engine.

The defaults mirror the *shape* of the paper's LevelDB setup (fan-out 10,
LevelDB-style L0 triggers, ~10 bits/key Bloom filters) while scaling the
absolute sizes down so that Python-scale experiments (10^4–10^6 operations)
exercise the same multi-level geometry the paper's 10^7-operation runs did
with 2 MB SSTables.  Every value is overridable per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import ConfigError

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class CostModel:
    """Fixed CPU costs, in microseconds, charged to the virtual clock.

    The device model accounts for I/O time; these small constants account
    for the in-memory work (skip-list search, Bloom probes, merge-sort
    per-record handling).  They matter for read-mostly workloads where most
    operations never touch the device.
    """

    memtable_insert_us: float = 0.5
    memtable_lookup_us: float = 0.3
    bloom_check_us: float = 0.05
    index_lookup_us: float = 0.1
    merge_per_record_us: float = 0.02
    scan_per_record_us: float = 0.02
    cache_hit_us: float = 2.0

    def __post_init__(self) -> None:
        for name in (
            "memtable_insert_us",
            "memtable_lookup_us",
            "bloom_check_us",
            "index_lookup_us",
            "merge_per_record_us",
            "scan_per_record_us",
            "cache_hit_us",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class LSMConfig:
    """Tunable parameters of the LSM-tree engine.

    Parameters
    ----------
    memtable_bytes:
        Capacity of the in-memory write buffer; a full memtable is flushed
        to a Level-0 SSTable (LevelDB used 2–4 MB; we default to 64 KB for
        simulation scale).
    sstable_target_bytes:
        Target on-device size of one SSTable (paper: 2 MB; scaled default
        64 KB).  Compactions split their output at this size.
    block_bytes:
        Size of one data block, the unit of read I/O within an SSTable.
    fan_out:
        Capacity ratio between adjacent levels (Definition 2.5); the paper
        defaults UDC and LDC to 10 and sweeps 3–100 in Figs. 7/12.
    level1_capacity_bytes:
        Capacity of Level 1; level ``i`` holds ``level1 * fan_out**(i-1)``.
    max_levels:
        Number of on-device levels (L0..L{max_levels-1}).
    l0_compaction_trigger / l0_slowdown_trigger / l0_stop_trigger:
        LevelDB's Level-0 file-count thresholds: schedule compaction at the
        first, delay each write by ``l0_slowdown_delay_us`` at the second,
        and block writes (compact inline) at the third.
    bloom_bits_per_key:
        Bloom filter size; the paper studies 10–200 bits/key (Figs. 12c/f,
        13) and recommends 8–16.
    block_cache_bytes:
        Capacity of the LRU data-block cache (0 disables it).  LevelDB
        ships an 8 MB cache against 2 MB files; the equivalent at our
        64 KB file scale is ~256 KB.  The paper's Fig. 11 relies on this
        cache ("Zipf distribution usually leads to higher hit ratios of
        in-memory cache").
    slicelink_threshold:
        LDC's ``T_s``: a lower-level SSTable merges once it has accumulated
        this many linked slices (paper §III-B; best setting ≈ fan-out).
    adaptive_threshold:
        Enable the §III-B.4 self-adaptive controller for ``T_s``.
    seek_compaction_enabled:
        Enable LevelDB's seek-triggered compaction: a file whose
        unproductive-probe budget (``allowed_seeks``) is exhausted becomes
        a compaction candidate even if its level is within capacity.
        Off by default (as in the paper's experiments, where size triggers
        dominate); honoured by the leveled (UDC) policy.
    frozen_space_limit_ratio:
        Safety valve: when the frozen region exceeds this fraction of live
        data, LDC forces merges on the most-linked SSTables.  The paper's
        §III-D worst-case analysis allows frozen files to reach 50% of the
        store ("the total size of all the frozen SSTables is less than
        50%"), which is the default here; tighter settings trade LDC's
        I/O savings for space.
    bg_threads:
        Number of background compaction "threads" driven by the
        virtual-time scheduler (:mod:`repro.sched`).  The default 0 keeps
        the historical synchronous engine: compaction runs inline inside
        the triggering operation and every golden fingerprint is
        byte-identical.  With ``bg_threads >= 1`` compaction rounds become
        resumable chunked work units that share device bandwidth with the
        foreground, and writes observe LevelDB-style L0 slowdown/stop
        throttling (see docs/SCHEDULING.md).
    sched_chunk_blocks:
        Chunk granularity of background work, in data blocks: each
        captured device transfer is split into chunks of at most this many
        blocks (CPU time is chunked to a comparable duration).  Smaller
        chunks interleave with the foreground at finer grain.
    """

    memtable_bytes: int = 64 * KIB
    sstable_target_bytes: int = 64 * KIB
    block_bytes: int = 4 * KIB
    fan_out: int = 10
    level1_capacity_bytes: int = 256 * KIB
    max_levels: int = 7
    l0_compaction_trigger: int = 4
    l0_slowdown_trigger: int = 8
    l0_stop_trigger: int = 12
    l0_slowdown_delay_us: float = 1000.0
    bloom_bits_per_key: int = 10
    block_cache_bytes: int = 0
    slicelink_threshold: int = 10
    adaptive_threshold: bool = False
    seek_compaction_enabled: bool = False
    frozen_space_limit_ratio: float = 0.50
    wal_enabled: bool = True
    bg_threads: int = 0
    sched_chunk_blocks: int = 1
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        positives = (
            "memtable_bytes",
            "sstable_target_bytes",
            "block_bytes",
            "level1_capacity_bytes",
            "max_levels",
            "l0_compaction_trigger",
            "slicelink_threshold",
        )
        for name in positives:
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.fan_out < 2:
            raise ConfigError("fan_out must be at least 2")
        if self.block_bytes > self.sstable_target_bytes:
            raise ConfigError("block_bytes cannot exceed sstable_target_bytes")
        if not (
            self.l0_compaction_trigger
            <= self.l0_slowdown_trigger
            <= self.l0_stop_trigger
        ):
            raise ConfigError(
                "L0 triggers must satisfy compaction <= slowdown <= stop"
            )
        if self.bloom_bits_per_key < 0:
            raise ConfigError("bloom_bits_per_key must be non-negative")
        if self.block_cache_bytes < 0:
            raise ConfigError("block_cache_bytes must be non-negative")
        if self.l0_slowdown_delay_us < 0:
            raise ConfigError("l0_slowdown_delay_us must be non-negative")
        if not 0 < self.frozen_space_limit_ratio <= 1:
            raise ConfigError("frozen_space_limit_ratio must be in (0, 1]")
        if self.bg_threads < 0:
            raise ConfigError("bg_threads must be non-negative")
        if self.sched_chunk_blocks <= 0:
            raise ConfigError("sched_chunk_blocks must be positive")

    def level_capacity_bytes(self, level: int) -> int:
        """Capacity of ``level`` in bytes (Level 0 is file-count driven)."""
        if level <= 0:
            raise ConfigError("level capacities are defined for level >= 1")
        return self.level1_capacity_bytes * self.fan_out ** (level - 1)

    def with_overrides(self, **overrides: Any) -> "LSMConfig":
        """Return a copy with the given fields replaced (validated again)."""
        return replace(self, **overrides)
