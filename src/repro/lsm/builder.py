"""SSTableBuilder: turn a sorted record stream into size-capped SSTables.

Both flushes (memtable -> Level 0) and compaction merges (§II-A Definition
2.4 / LDC's merge phase) feed a key-sorted, deduplicated record stream into
a builder, which cuts output files at ``sstable_target_bytes`` — the same
role ``TableBuilder`` plays in LevelDB.

The builder computes each record's encoded size to decide file cuts and
hands the per-file size lists to the :class:`~repro.lsm.sstable.SSTable`
constructor, which would otherwise recompute them — one pass instead of
two over every record the engine ever writes.
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import accumulate
from typing import Callable, Iterable, List, Sequence

from .config import LSMConfig
from .record import KVRecord, RECORD_OVERHEAD_BYTES
from .sstable import SSTable
from ..errors import EngineError


class SSTableBuilder:
    """Accumulates sorted records and emits SSTables at the size cap.

    Parameters
    ----------
    config:
        Supplies the target file size, block size and Bloom sizing.
    next_file_id:
        Callable producing a fresh, monotonically increasing file id for
        each emitted file (owned by the DB so ids are unique store-wide).
    """

    def __init__(self, config: LSMConfig, next_file_id: Callable[[], int]) -> None:
        self._config = config
        self._next_file_id = next_file_id
        self._pending: List[KVRecord] = []
        self._pending_sizes: List[int] = []
        self._pending_bytes = 0
        self._outputs: List[SSTable] = []
        self._last_key: bytes | None = None

    def add(self, record: KVRecord) -> None:
        """Append one record; keys must arrive strictly increasing."""
        if self._last_key is not None and record.key <= self._last_key:
            raise EngineError(
                f"builder requires strictly increasing keys: "
                f"{record.key!r} after {self._last_key!r}"
            )
        self._last_key = record.key
        self._pending.append(record)
        size = len(record.key) + len(record.value) + RECORD_OVERHEAD_BYTES
        self._pending_sizes.append(size)
        self._pending_bytes += size
        if self._pending_bytes >= self._config.sstable_target_bytes:
            self._emit()

    def add_all(self, records: Iterable[KVRecord]) -> None:
        for record in records:
            self.add(record)

    def add_sorted_run(self, records: Sequence[KVRecord]) -> None:
        """Bulk-append a strictly key-sorted, unique-keyed record run.

        The flush fast path: the memtable already guarantees sorted unique
        keys, so the per-record ordering validation of :meth:`add` is
        skipped and the accumulation loop runs with hoisted locals.  File
        cut points are identical to feeding :meth:`add` one record at a
        time (emit as soon as the pending bytes reach the target).
        """
        if not records:
            return
        first_key = records[0][0]
        if self._last_key is not None and first_key <= self._last_key:
            raise EngineError(
                f"builder requires strictly increasing keys: "
                f"{first_key!r} after {self._last_key!r}"
            )
        pending = self._pending
        pending_sizes = self._pending_sizes
        pending_bytes = self._pending_bytes
        target = self._config.sstable_target_bytes
        push = pending.append
        push_size = pending_sizes.append
        overhead = RECORD_OVERHEAD_BYTES
        for record in records:
            push(record)
            size = len(record[0]) + len(record[3]) + overhead
            push_size(size)
            pending_bytes += size
            if pending_bytes >= target:
                self._pending_bytes = pending_bytes
                self._emit()
                pending = self._pending
                pending_sizes = self._pending_sizes
                pending_bytes = 0
                push = pending.append
                push_size = pending_sizes.append
        self._pending_bytes = pending_bytes
        self._last_key = records[-1][0]

    def add_sorted_columns(self, keys: List[bytes], records: List[KVRecord]) -> None:
        """Bulk-append a sorted run given as parallel key/record columns.

        The columnar flush fast path: the memtable hands over its sorted
        key array alongside the records, so emitted files skip the key
        re-extraction, and file cut points are found by bisect over the
        run's size prefix instead of a per-record accumulation loop.  Cuts
        are identical to :meth:`add_sorted_run` (emit as soon as the
        pending bytes reach the target; the tail stays pending).
        """
        if not records:
            return
        if self._last_key is not None and keys[0] <= self._last_key:
            raise EngineError(
                f"builder requires strictly increasing keys: "
                f"{keys[0]!r} after {self._last_key!r}"
            )
        if self._pending:
            # Mixed with per-record add(): keep the single accumulation
            # path authoritative rather than splicing columns into it.
            self.add_sorted_run(records)
            return
        overhead = RECORD_OVERHEAD_BYTES
        sizes = [
            len(key) + len(record[3]) + overhead
            for key, record in zip(keys, records)
        ]
        prefix = list(accumulate(sizes, initial=0))
        n = len(records)
        target = self._config.sstable_target_bytes
        config = self._config
        outputs = self._outputs
        start = 0
        while start < n:
            cut = bisect_left(prefix, prefix[start] + target, start + 1)
            if cut > n:
                break
            outputs.append(
                SSTable.from_records(
                    self._next_file_id(),
                    records[start:cut],
                    config,
                    presorted=True,
                    sizes=sizes[start:cut],
                    keys=keys[start:cut],
                )
            )
            start = cut
        if start < n:
            self._pending = records[start:]
            self._pending_sizes = sizes[start:]
            self._pending_bytes = prefix[n] - prefix[start]
        self._last_key = keys[-1]

    def _emit(self) -> None:
        if not self._pending:
            return
        # The builder enforced strictly increasing keys on add(), so the
        # pending list can transfer ownership without re-validation.
        table = SSTable.from_records(
            self._next_file_id(),
            self._pending,
            self._config,
            presorted=True,
            sizes=self._pending_sizes,
        )
        self._outputs.append(table)
        self._pending = []
        self._pending_sizes = []
        self._pending_bytes = 0

    def finish(self) -> List[SSTable]:
        """Flush the tail file and return all emitted SSTables in key order."""
        self._emit()
        outputs = self._outputs
        self._outputs = []
        self._last_key = None
        return outputs


def build_tables(
    records: Iterable[KVRecord],
    config: LSMConfig,
    next_file_id: Callable[[], int],
) -> List[SSTable]:
    """Convenience wrapper: build all SSTables for a sorted record stream."""
    builder = SSTableBuilder(config, next_file_id)
    builder.add_all(records)
    return builder.finish()


def build_balanced(
    records: List[KVRecord],
    config: LSMConfig,
    next_file_id: Callable[[], int],
) -> List[SSTable]:
    """Build SSTables of near-equal size from a materialised record list.

    The streaming builder cuts at the target size, which leaves a fragment
    tail file (e.g. 1.2x target -> one full file plus a 0.2x sliver).
    Compaction outputs are materialised anyway, so we can do better: pick
    the file count that keeps every file close to the target and split the
    byte total evenly.  Persistent slivers matter for LDC especially —
    fragment files accumulate their own SliceLinks and multiply.
    """
    if not records:
        return []
    overhead = RECORD_OVERHEAD_BYTES
    sizes = [
        len(record[0]) + len(record[3]) + overhead
        for record in records
    ]
    total = sum(sizes)
    nfiles = max(1, round(total / config.sstable_target_bytes))
    per_file = total / nfiles
    outputs: List[SSTable] = []
    chunk_start = 0
    chunk_bytes = 0
    emitted = 0
    for index, size in enumerate(sizes):
        chunk_bytes += size
        if chunk_bytes >= per_file and emitted < nfiles - 1:
            stop = index + 1
            outputs.append(
                SSTable.from_records(
                    next_file_id(),
                    records[chunk_start:stop],
                    config,
                    presorted=True,
                    sizes=sizes[chunk_start:stop],
                )
            )
            chunk_start = stop
            chunk_bytes = 0
            emitted += 1
    if chunk_start < len(records):
        outputs.append(
            SSTable.from_records(
                next_file_id(),
                records[chunk_start:],
                config,
                presorted=True,
                sizes=sizes[chunk_start:],
            )
        )
    return outputs


def build_balanced_columns(
    keys: List[bytes],
    records: List[KVRecord],
    seqs: List[int],
    sizes: List[int],
    config: LSMConfig,
    next_file_id: Callable[[], int],
) -> List[SSTable]:
    """Columnar :func:`build_balanced`: cut merged columns into SSTables.

    Same file-cut semantics (``nfiles = round(total / target)``, greedy cut
    once a chunk reaches ``total / nfiles`` while earlier than the last
    file), but the cut points come from one bisect per output file over
    the size prefix, and each output SSTable is constructed from column
    slices — no per-record work at all.  ``per_file`` is a float; record
    sizes are integers at least ``1/nfiles`` of a byte away from it after
    the division, so comparing against ``prefix[start] + per_file`` is
    exact despite the float add.
    """
    if not records:
        return []
    prefix = list(accumulate(sizes, initial=0))
    total = prefix[-1]
    nfiles = max(1, round(total / config.sstable_target_bytes))
    per_file = total / nfiles
    outputs: List[SSTable] = []
    n = len(records)
    last_cut = nfiles - 1
    start = 0
    emitted = 0
    while start < n:
        if emitted < last_cut:
            stop = bisect_left(prefix, prefix[start] + per_file, start + 1)
            if stop > n:
                stop = n
        else:
            stop = n
        outputs.append(
            SSTable.from_records(
                next_file_id(),
                records[start:stop],
                config,
                presorted=True,
                sizes=sizes[start:stop],
                keys=keys[start:stop],
                seqs=seqs[start:stop],
            )
        )
        start = stop
        emitted += 1
    return outputs
