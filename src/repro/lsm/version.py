"""The version set: which SSTables live in which level.

This is the manifest of the LSM-tree (Definition 2.1): Level 0 holds the
newly flushed, mutually overlapping files; levels 1..N hold sorted runs of
non-overlapping files.  Compaction policies query it for overlap sets and
level scores and mutate it through :meth:`add_file` / :meth:`remove_file`,
which enforce the structural invariants.

Level sizes include LDC *linked bytes*: once an upper-level file is frozen
and its slices linked onto lower-level files, its data logically belongs to
the lower level (§III-A), so scoring must see it there.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional

from .config import LSMConfig
from .keys import key_successor, ranges_overlap
from .sstable import SSTable
from ..errors import EngineError


class VersionSet:
    """Mutable mapping of levels to SSTables, with invariant checking."""

    def __init__(self, config: LSMConfig, *, sorted_levels: bool = True) -> None:
        self._config = config
        #: When True (leveled/LDC), levels >= 1 hold disjoint sorted files.
        #: When False (size-tiered), every level behaves like Level 0 and
        #: holds overlapping runs; lookups must check files newest-first.
        self.sorted_levels = sorted_levels
        self.levels: List[List[SSTable]] = [[] for _ in range(config.max_levels)]
        self._level_of: Dict[int, int] = {}
        # Incrementally maintained byte counters per level: own file data
        # and LDC linked-slice bytes.  These make compaction scoring O(1)
        # per level instead of a re-sum over every file.
        self._level_bytes: List[int] = [0] * config.max_levels
        self._level_linked_bytes: List[int] = [0] * config.max_levels
        # Capacity schedule and L0 trigger, cached: level_score and
        # pick_compaction_level run after every operation, and the
        # exponentiation in level_capacity_bytes is pure config.
        self._l0_trigger = config.l0_compaction_trigger
        self._capacities: List[int] = [0] * config.max_levels
        for level in range(1, config.max_levels):
            self._capacities[level] = config.level_capacity_bytes(level)
        # Per-level max-key arrays mirroring ``levels``; point lookups
        # bisect these on every deeper-level probe, so they are maintained
        # incrementally rather than rebuilt per query.
        self._max_keys: List[List[bytes]] = [[] for _ in range(config.max_levels)]
        #: LevelDB-style round-robin cursors: per level, the max key of the
        #: last file chosen for compaction, so successive compactions sweep
        #: the key space instead of hammering one region.
        self.compact_pointer: Dict[int, bytes] = {}
        # pick_compaction_level cache: scores only change when files move
        # or linked bytes shift, yet the picker runs after every user
        # operation — so cache the answer until the next mutation.
        self._pick_cache: Optional[int] = None
        self._pick_dirty = True

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def files(self, level: int) -> List[SSTable]:
        return self.levels[level]

    def num_files(self, level: Optional[int] = None) -> int:
        if level is not None:
            return len(self.levels[level])
        return sum(len(files) for files in self.levels)

    def level_data_size(self, level: int) -> int:
        """Bytes attributed to ``level``: own data plus linked slice bytes."""
        return self._level_bytes[level] + self._level_linked_bytes[level]

    def total_data_size(self) -> int:
        """Logical bytes managed by the tree, linked slices included."""
        return sum(self._level_bytes) + sum(self._level_linked_bytes)

    def total_file_bytes(self) -> int:
        """Physical bytes of the files resident in levels.

        Excludes linked-slice bytes: those live inside *frozen* files,
        which the LDC policy accounts separately — counting them here too
        would double-bill the same bytes (Fig. 15's space metric).
        """
        return sum(self._level_bytes)

    def note_linked_bytes(self, level: int, delta: int) -> None:
        """Adjust a level's linked-slice byte counter (LDC link/merge)."""
        self._check_level(level)
        self._level_linked_bytes[level] += delta
        self._pick_dirty = True
        if self._level_linked_bytes[level] < 0:
            raise EngineError(f"level {level} linked-bytes counter underflow")

    def deepest_nonempty_level(self) -> int:
        """Index of the lowest level holding data (-1 if the tree is empty)."""
        for level in reversed(range(self.num_levels)):
            if self.levels[level]:
                return level
        return -1

    def all_tables(self) -> Iterable[SSTable]:
        for files in self.levels:
            yield from files

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_file(self, level: int, table: SSTable) -> None:
        """Install ``table`` at ``level``, keeping levels >= 1 sorted/disjoint."""
        self._check_level(level)
        if table.frozen:
            raise EngineError(f"cannot install frozen file {table.file_id} in a level")
        if table.file_id in self._level_of:
            raise EngineError(f"file {table.file_id} is already in the tree")
        self._pick_dirty = True
        if level == 0 or not self.sorted_levels:
            self.levels[level].append(table)
            self._max_keys[level].append(table.max_key)
            self._level_of[table.file_id] = level
            self._level_bytes[level] += table.data_size
            self._level_linked_bytes[level] += table.linked_bytes
            return
        files = self.levels[level]
        index = bisect_left([f.min_key for f in files], table.min_key)
        for neighbour in (files[index - 1] if index > 0 else None,
                          files[index] if index < len(files) else None):
            if neighbour is not None and ranges_overlap(
                table.min_key,
                key_successor(table.max_key),
                neighbour.min_key,
                key_successor(neighbour.max_key),
            ):
                raise EngineError(
                    f"file {table.file_id} overlaps file {neighbour.file_id} "
                    f"in level {level}"
                )
        files.insert(index, table)
        self._max_keys[level].insert(index, table.max_key)
        self._level_of[table.file_id] = level
        self._level_bytes[level] += table.data_size
        self._level_linked_bytes[level] += table.linked_bytes

    def remove_file(self, level: int, table: SSTable) -> None:
        self._check_level(level)
        files = self.levels[level]
        try:
            index = files.index(table)
        except ValueError:
            raise EngineError(
                f"file {table.file_id} is not present in level {level}"
            ) from None
        del files[index]
        del self._max_keys[level][index]
        del self._level_of[table.file_id]
        self._pick_dirty = True
        self._level_bytes[level] -= table.data_size
        self._level_linked_bytes[level] -= table.linked_bytes

    def level_of(self, table: SSTable) -> int:
        """Which level ``table`` currently lives in (LDC merge lookup)."""
        try:
            return self._level_of[table.file_id]
        except KeyError:
            raise EngineError(
                f"file {table.file_id} is not in any level"
            ) from None

    def contains(self, table: SSTable) -> bool:
        return table.file_id in self._level_of

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise EngineError(f"level {level} out of range [0, {self.num_levels})")

    # ------------------------------------------------------------------
    # Overlap queries (half-open [lo, hi), None = unbounded)
    # ------------------------------------------------------------------
    def overlapping(
        self, level: int, lo: Optional[bytes], hi: Optional[bytes]
    ) -> List[SSTable]:
        """Files in ``level`` whose key range intersects ``[lo, hi)``.

        Returned in key order for levels >= 1 and in file-id (age) order for
        Level 0.
        """
        self._check_level(level)
        result = [
            table
            for table in self.levels[level]
            if ranges_overlap(
                table.min_key, key_successor(table.max_key), lo, hi
            )
        ]
        if level == 0 or not self.sorted_levels:
            result.sort(key=lambda table: table.file_id)
        return result

    def find_file(self, level: int, key: bytes) -> Optional[SSTable]:
        """The unique file in a sorted level whose range may contain ``key``.

        Runs once per level per point lookup; bounds checking is left to
        the list indexing itself.
        """
        if level == 0 or not self.sorted_levels:
            raise EngineError("find_file is undefined for overlapping levels")
        files = self.levels[level]
        if not files:
            return None
        index = bisect_left(self._max_keys[level], key)
        if index < len(files) and files[index].min_key <= key:
            return files[index]
        return None

    def find_responsible_file(self, level: int, key: bytes) -> Optional[SSTable]:
        """The file whose *responsibility range* covers ``key``.

        Responsibility ranges (Example 3.2) tile the whole key space:
        file ``j`` owns ``(max_key(j-1), max_key(j)]``, the first file
        extending to the smallest key and the last to the largest.  LDC
        attaches slices by responsibility, so a slice on file F may cover
        keys *outside* F's own ``[min, max]`` — lookups must therefore
        route by responsibility, not by raw range, or gap keys would skip
        the slices holding their newest versions.
        """
        if level == 0 or not self.sorted_levels:
            raise EngineError(
                "find_responsible_file is undefined for overlapping levels"
            )
        files = self.levels[level]
        if not files:
            return None
        index = bisect_left(self._max_keys[level], key)
        if index < len(files):
            return files[index]
        return files[-1]

    # ------------------------------------------------------------------
    # Compaction scoring (shared by all policies)
    # ------------------------------------------------------------------
    def level_score(self, level: int) -> float:
        """How over-capacity a level is; > 1 means compaction is due.

        Level 0 scores by file count against ``l0_compaction_trigger`` (its
        files overlap, so reads pay per file — Theorem 2.2's ``u`` term);
        deeper levels score by bytes against the exponential capacity
        schedule (Definition 2.5).
        """
        if level == 0:
            return len(self.levels[0]) / self._l0_trigger
        return self.level_data_size(level) / self._capacities[level]

    def pick_compaction_level(self) -> Optional[int]:
        """Level most in need of compaction, or None when all fit.

        The bottom level never initiates a compaction: there is nowhere
        lower to push data.  Runs after every maintenance step, so the
        scoring is inlined over the cached byte counters and the result is
        memoised until the next structural mutation.
        """
        if not self._pick_dirty:
            return self._pick_cache
        best_level: Optional[int] = None
        best_score = 1.0
        last = self.num_levels - 1
        if last > 0:
            score = len(self.levels[0]) / self._l0_trigger
            if score >= best_score:
                best_score = score
                best_level = 0
        level_bytes = self._level_bytes
        linked_bytes = self._level_linked_bytes
        capacities = self._capacities
        for level in range(1, last):
            score = (level_bytes[level] + linked_bytes[level]) / capacities[level]
            if score >= best_score:
                best_score = score
                best_level = level
        self._pick_cache = best_level
        self._pick_dirty = False
        return best_level

    def pick_file_round_robin(self, level: int) -> SSTable:
        """Choose the next compaction source file in ``level``.

        Follows LevelDB: take the first file whose max key is past the
        level's compact pointer, wrapping to the first file; Level 0 picks
        the oldest file instead.
        """
        files = self.levels[level]
        if not files:
            raise EngineError(f"level {level} has no file to compact")
        if level == 0:
            return min(files, key=lambda table: table.file_id)
        pointer = self.compact_pointer.get(level)
        if pointer is not None:
            for table in files:
                if table.max_key > pointer:
                    return table
        return files[0]

    def advance_compact_pointer(self, level: int, table: SSTable) -> None:
        self.compact_pointer[level] = table.max_key

    # ------------------------------------------------------------------
    # Invariant checks (used heavily by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`EngineError` if any structural invariant is broken."""
        for level in range(1, self.num_levels if self.sorted_levels else 1):
            files = self.levels[level]
            for left, right in zip(files, files[1:]):
                if left.max_key >= right.min_key:
                    raise EngineError(
                        f"level {level} files {left.file_id}/{right.file_id} "
                        f"overlap or are unsorted"
                    )
        for table in self.all_tables():
            if table.frozen:
                raise EngineError(
                    f"frozen file {table.file_id} is still inside the tree"
                )
        for level in range(self.num_levels):
            mirror = [table.max_key for table in self.levels[level]]
            if mirror != self._max_keys[level]:
                raise EngineError(
                    f"level {level} max-key mirror out of sync with files"
                )
        for level in range(self.num_levels):
            data = sum(table.data_size for table in self.levels[level])
            linked = sum(table.linked_bytes for table in self.levels[level])
            if data != self._level_bytes[level]:
                raise EngineError(
                    f"level {level} byte counter {self._level_bytes[level]} "
                    f"!= actual {data}"
                )
            if linked != self._level_linked_bytes[level]:
                raise EngineError(
                    f"level {level} linked-byte counter "
                    f"{self._level_linked_bytes[level]} != actual {linked}"
                )
            for table in self.levels[level]:
                cached = sum(piece.size_bytes for piece in table.slice_links)
                if cached != table.linked_bytes:
                    raise EngineError(
                        f"file {table.file_id} linked_bytes cache "
                        f"{table.linked_bytes} != actual {cached}"
                    )
