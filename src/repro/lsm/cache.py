"""LRU block cache.

LevelDB serves repeated reads of hot data blocks from an in-memory LRU
cache (8 MB by default) instead of the device.  The paper leans on this
in Fig. 11: "Zipf distribution usually leads to higher hit ratios of
in-memory cache", which is why both policies accelerate under skew.

The cache maps ``(file_id, block_index)`` to the block's byte size; a hit
costs a small CPU constant, a miss charges the device and installs the
block.  File ids are unique for the lifetime of a store, so entries of
deleted files can never be wrongly hit — but until evicted they still
occupy capacity and squeeze live hot blocks, so the engine calls
:meth:`BlockCache.evict_file` the moment a compaction permanently drops
an SSTable instead of letting its dead blocks age out of the LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..errors import ConfigError
from ..obs.registry import MetricsRegistry

_BlockKey = Tuple[int, int]


class BlockCache:
    """A byte-capacity-bounded LRU over data blocks.

    Hit/miss counts live in the metrics registry (``cache.hits`` /
    ``cache.misses``) so they appear in ``db.metrics()`` and zero with
    ``db.reset_measurements()``; a private registry is created when none
    is shared in.  Capacity-pressure evictions are counted too
    (``cache.evictions`` / ``cache.evicted_bytes``), created lazily on
    the first eviction; :meth:`evict_file` drops are deliberate and not
    counted.
    """

    def __init__(
        self,
        capacity_bytes: int,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigError("block cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.registry = registry if registry is not None else MetricsRegistry()
        self._entries: "OrderedDict[_BlockKey, int]" = OrderedDict()
        self._used_bytes = 0

    @property
    def hits(self) -> int:
        return int(self.registry.counter("cache.hits"))

    @hits.setter
    def hits(self, value: int) -> None:
        self.registry.set_counter("cache.hits", int(value))

    @property
    def misses(self) -> int:
        return int(self.registry.counter("cache.misses"))

    @misses.setter
    def misses(self, value: int) -> None:
        self.registry.set_counter("cache.misses", int(value))

    @property
    def evictions(self) -> int:
        """Blocks dropped under capacity pressure (not ``evict_file``)."""
        return int(self.registry.counter("cache.evictions"))

    @property
    def evicted_bytes(self) -> int:
        """Bytes dropped under capacity pressure (not ``evict_file``)."""
        return int(self.registry.counter("cache.evicted_bytes"))

    def lookup(self, file_id: int, block_index: int) -> bool:
        """True (and refresh recency) if the block is resident."""
        key = (file_id, block_index)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.registry.add("cache.hits")
            return True
        self.registry.add("cache.misses")
        return False

    def insert(self, file_id: int, block_index: int, nbytes: int) -> None:
        """Install a block read from the device, evicting LRU as needed."""
        if nbytes > self.capacity_bytes:
            return  # a block larger than the cache can never be resident
        key = (file_id, block_index)
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._used_bytes -= previous
        self._entries[key] = nbytes
        self._used_bytes += nbytes
        evicted_blocks = 0
        evicted_bytes = 0
        while self._used_bytes > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._used_bytes -= evicted
            evicted_blocks += 1
            evicted_bytes += evicted
        if evicted_blocks:
            # Lazily created on the first real LRU eviction: runs whose
            # working set fits the cache keep an identical counter set
            # (the batched fingerprints hash every registry key).
            self.registry.add("cache.evictions", evicted_blocks)
            self.registry.add("cache.evicted_bytes", evicted_bytes)

    def evict_file(self, file_id: int) -> int:
        """Drop every resident block of ``file_id``; returns bytes freed.

        Called when a version permanently drops an SSTable (compaction
        inputs, merged LDC targets, recycled frozen files) so dead blocks
        release capacity immediately.  Not counted as LRU evictions or
        misses — the blocks were unreachable anyway.
        """
        doomed = [key for key in self._entries if key[0] == file_id]
        freed = 0
        for key in doomed:
            freed += self._entries.pop(key)
        self._used_bytes -= freed
        return freed

    def cached_file_ids(self) -> set:
        """File ids with at least one resident block.

        ``DB.check_invariants`` asserts this set is a subset of the live
        file ids — a stale entry would mean ``evict_file`` was skipped
        when a compaction dropped the file.
        """
        return {key[0] for key in self._entries}

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BlockCache({self._used_bytes}/{self.capacity_bytes}B, "
            f"hit_ratio={self.hit_ratio:.2f})"
        )
