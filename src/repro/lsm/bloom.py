"""Bloom filters for SSTables.

Each SSTable carries a Bloom filter so point lookups can skip files that
certainly do not contain the target key (Example 2.1).  For LDC the filters
matter twice over: lookups on an SSTable with linked slices consult the
*frozen* files' filters to avoid reading slices needlessly (§III-B.3,
Figs. 12c/f and 13).

We use the standard double-hashing scheme ``h_i = h1 + i * h2`` with the two
base hashes taken from the MD5 digest of the key — deterministic across
processes (unlike Python's salted ``hash``) and cheap enough at simulation
scale.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Sequence


def _base_hashes(key: bytes) -> tuple[int, int]:
    digest = hashlib.md5(key).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:16], "little") | 1  # odd => full-period step
    return h1, h2


def optimal_hash_count(bits_per_key: float) -> int:
    """Number of hash probes minimising the false-positive rate.

    The optimum is ``bits_per_key * ln 2``; clamped to [1, 30] like LevelDB.
    """
    k = int(round(bits_per_key * math.log(2)))
    return max(1, min(30, k))


class BloomFilter:
    """An immutable-after-build Bloom filter over a set of byte keys."""

    __slots__ = ("_bits", "_nbits", "_nhashes", "bits_per_key")

    def __init__(self, keys: Sequence[bytes], bits_per_key: int) -> None:
        self.bits_per_key = bits_per_key
        if bits_per_key <= 0 or not keys:
            # A zero-size filter answers "maybe" for everything.
            self._bits = bytearray()
            self._nbits = 0
            self._nhashes = 0
            return
        nbits = max(64, len(keys) * bits_per_key)
        self._nbits = nbits
        self._nhashes = optimal_hash_count(bits_per_key)
        self._bits = bytearray((nbits + 7) // 8)
        for key in keys:
            self._add(key)

    def _add(self, key: bytes) -> None:
        h1, h2 = _base_hashes(key)
        for _ in range(self._nhashes):
            bit = h1 % self._nbits
            self._bits[bit >> 3] |= 1 << (bit & 7)
            h1 = (h1 + h2) & 0xFFFFFFFFFFFFFFFF

    def may_contain(self, key: bytes) -> bool:
        """Return False only if ``key`` was definitely not inserted."""
        if self._nbits == 0:
            return True
        h1, h2 = _base_hashes(key)
        for _ in range(self._nhashes):
            bit = h1 % self._nbits
            if not self._bits[bit >> 3] & (1 << (bit & 7)):
                return False
            h1 = (h1 + h2) & 0xFFFFFFFFFFFFFFFF
        return True

    @property
    def size_bytes(self) -> int:
        """On-device footprint of the filter (plotted in Fig. 13)."""
        return len(self._bits)

    @property
    def hash_count(self) -> int:
        return self._nhashes

    def false_positive_rate(self, probes: Iterable[bytes]) -> float:
        """Measure the empirical FPR against keys known to be absent."""
        total = 0
        hits = 0
        for key in probes:
            total += 1
            if self.may_contain(key):
                hits += 1
        return hits / total if total else 0.0


def theoretical_fpr(bits_per_key: float) -> float:
    """Expected false-positive rate for the optimal hash count.

    ``(1 - e^{-kn/m})^k`` with ``k = m/n * ln2`` simplifies to
    ``0.5 ** (bits_per_key * ln 2)``.
    """
    if bits_per_key <= 0:
        return 1.0
    return 0.5 ** (bits_per_key * math.log(2))
