"""Bloom filters for SSTables.

Each SSTable carries a Bloom filter so point lookups can skip files that
certainly do not contain the target key (Example 2.1).  For LDC the filters
matter twice over: lookups on an SSTable with linked slices consult the
*frozen* files' filters to avoid reading slices needlessly (§III-B.3,
Figs. 12c/f and 13).

We use the standard double-hashing scheme ``h_i = h1 + i * h2``.  The two
base hashes are ``crc32(key)`` and ``adler32(key)`` — both C-implemented,
standardized checksums, so the bit patterns are deterministic across
processes and platforms (unlike Python's salted ``hash``) at a fraction of
the cost of the MD5 digest this module used previously (~4x faster per
probe set; see ``repro bench bloom_probe``).  CRC32 alone mixes well;
Adler32 alone does not, but as the *step* of a double-hash whose base is a
CRC it only has to decorrelate the probe sequence, and the measured
false-positive rate sits at the theoretical optimum for both sequential
and random keys (pinned by the golden tests).

Construction is vectorized: probe positions for all keys are computed as
one numpy array and OR-ed into the bit array in bulk, producing *bit-exact*
the same filter as the scalar probe loop used for queries.
"""

from __future__ import annotations

import math
import zlib
from typing import Iterable, Sequence

import numpy as np

_MASK64 = 0xFFFFFFFFFFFFFFFF

_crc32 = zlib.crc32
_adler32 = zlib.adler32

#: Below this many keys the scalar build path wins over numpy call overhead.
_VECTOR_BUILD_MIN = 8

#: Shared memo of per-key ``(h1, h2)`` base-hash pairs.  The same user keys
#: recur across thousands of SSTable constructions during compaction (the
#: hash pair is a pure function of the key bytes), so build paths consult
#: this before recomputing.  Capped so unbounded key universes cannot grow
#: it without limit; on overflow new keys are simply not memoised.
_HASH_CACHE: dict = {}
_HASH_CACHE_MAX = 1 << 20


def _base_hashes(key: bytes) -> tuple[int, int]:
    """The ``(h1, h2)`` double-hash bases for ``key``.

    ``h2`` is forced odd so the probe sequence has full period over any
    power-of-two modulus and never degenerates to a single position.
    """
    return zlib.crc32(key), (zlib.adler32(key) << 1) | 1


def optimal_hash_count(bits_per_key: float) -> int:
    """Number of hash probes minimising the false-positive rate.

    The optimum is ``bits_per_key * ln 2``; clamped to [1, 30] like LevelDB.
    """
    k = int(round(bits_per_key * math.log(2)))
    return max(1, min(30, k))


class BloomFilter:
    """An immutable-after-build Bloom filter over a set of byte keys.

    A filter built with ``bits_per_key <= 0`` is *disabled* and answers
    "maybe" for every probe; a filter built over an **empty key set** with
    positive ``bits_per_key`` answers "definitely not" for every probe
    (nothing was inserted, so nothing can be present).
    """

    __slots__ = ("_bits", "_nbits", "_nhashes", "_empty", "bits_per_key")

    def __init__(self, keys: Sequence[bytes], bits_per_key: int) -> None:
        self.bits_per_key = bits_per_key
        if bits_per_key <= 0 or not keys:
            self._bits = bytearray()
            self._nbits = 0
            self._nhashes = 0
            self._empty = bits_per_key > 0
            return
        nbits = max(64, len(keys) * bits_per_key)
        self._nbits = nbits
        self._nhashes = optimal_hash_count(bits_per_key)
        self._empty = False
        if len(keys) >= _VECTOR_BUILD_MIN:
            self._bits = self._build_vectorized(keys, nbits)
        else:
            self._bits = bytearray((nbits + 7) // 8)
            for key in keys:
                self._add(key)

    def _build_vectorized(self, keys: Sequence[bytes], nbits: int) -> bytearray:
        """Set all probe bits for ``keys`` in one numpy pass.

        ``h1 < 2**32`` and ``h2 < 2**34``, so ``h1 + i*h2`` stays below
        2**40 for every probe index ``i <= 30`` — int64 arithmetic is exact
        and matches the scalar ``_add`` loop bit for bit.  The final OR is
        a boolean scatter + ``packbits`` (little bit order matches the
        scalar ``bits[pos >> 3] |= 1 << (pos & 7)`` layout exactly).
        """
        cache = _HASH_CACHE
        crc32 = zlib.crc32
        adler32 = zlib.adler32
        h1_list: list = []
        h2_list: list = []
        push1 = h1_list.append
        push2 = h2_list.append
        if len(cache) < _HASH_CACHE_MAX:
            for key in keys:
                pair = cache.get(key)
                if pair is None:
                    pair = (crc32(key), (adler32(key) << 1) | 1)
                    cache[key] = pair
                push1(pair[0])
                push2(pair[1])
        else:
            for key in keys:
                pair = cache.get(key)
                if pair is None:
                    pair = (crc32(key), (adler32(key) << 1) | 1)
                push1(pair[0])
                push2(pair[1])
        h1 = np.array(h1_list, dtype=np.int64)
        h2 = np.array(h2_list, dtype=np.int64)
        steps = np.arange(self._nhashes, dtype=np.int64)
        positions = (h1[:, None] + h2[:, None] * steps[None, :]) % nbits
        flags = np.zeros(((nbits + 7) // 8) * 8, dtype=bool)
        flags[positions.ravel()] = True
        return bytearray(np.packbits(flags, bitorder="little").tobytes())

    def _add(self, key: bytes) -> None:
        h1, h2 = _base_hashes(key)
        bits = self._bits
        nbits = self._nbits
        for _ in range(self._nhashes):
            bit = h1 % nbits
            bits[bit >> 3] |= 1 << (bit & 7)
            h1 = (h1 + h2) & _MASK64

    def may_contain(self, key: bytes) -> bool:
        """Return False only if ``key`` was definitely not inserted."""
        nbits = self._nbits
        if nbits == 0:
            return not self._empty
        # Hottest call in the read path: reuse the shared hash memo (hot
        # keys recur across probes) before falling back to the checksums.
        pair = _HASH_CACHE.get(key)
        if pair is None:
            pair = (_crc32(key), (_adler32(key) << 1) | 1)
            if len(_HASH_CACHE) < _HASH_CACHE_MAX:
                _HASH_CACHE[key] = pair
        h1, h2 = pair
        bits = self._bits
        for _ in range(self._nhashes):
            bit = h1 % nbits
            if not bits[bit >> 3] & (1 << (bit & 7)):
                return False
            h1 = (h1 + h2) & _MASK64
        return True

    @property
    def size_bytes(self) -> int:
        """On-device footprint of the filter (plotted in Fig. 13)."""
        return len(self._bits)

    @property
    def hash_count(self) -> int:
        return self._nhashes

    def false_positive_rate(self, probes: Iterable[bytes]) -> float:
        """Measure the empirical FPR against keys known to be absent."""
        total = 0
        hits = 0
        for key in probes:
            total += 1
            if self.may_contain(key):
                hits += 1
        return hits / total if total else 0.0


def theoretical_fpr(bits_per_key: float) -> float:
    """Expected false-positive rate for the optimal hash count.

    ``(1 - e^{-kn/m})^k`` with ``k = m/n * ln2`` simplifies to
    ``0.5 ** (bits_per_key * ln 2)``.
    """
    if bits_per_key <= 0:
        return 1.0
    return 0.5 ** (bits_per_key * math.log(2))
