"""Deterministic open-loop arrival processes in virtual time.

Closed-loop replay issues the next request the instant the previous one
returns, so the client-perceived latency can never exceed the service
time.  Production clients do not wait for each other: requests arrive
from an external *arrival process*, and when the store is slow the
arrivals keep coming — the queue grows and the measured latency is
``queue wait + service time``.  This module generates those arrival
processes, in the same virtual microseconds the engine's
:class:`~repro.ssd.clock.SimClock` runs on, with the same determinism
contract as the workload generator: every stream is derived from a
``numpy`` :class:`~numpy.random.SeedSequence`, so a seed fully determines
every arrival timestamp on every platform.

Three process families cover the profiles the serving experiments need:

* :class:`PoissonProcess` — memoryless arrivals at a constant rate, the
  M/·/1 baseline of every queueing model;
* :class:`OnOffProcess` — a two-state Markov-modulated process (MMPP):
  exponential dwell times alternate between a burst rate and a quiet
  rate with the same long-run average, producing the arrival
  clumping that stresses a bounded queue far beyond Poisson;
* :class:`DiurnalProcess` — a non-homogeneous Poisson process whose rate
  follows a repeating daily profile (thinning construction), for
  peak-vs-trough load curves.

**Multi-tenant scaling.**  A :class:`Tenant` aggregates an entire client
population into one rate: a million simulated users at 0.5 op/s each is
a single tenant with ``rate_ops_s == 500_000`` — per-tenant rate
aggregation keeps the simulation O(requests), never O(users).  Use
:meth:`Tenant.of_population` for the explicit population form.
:func:`merge_tenant_arrivals` interleaves every tenant's private stream
into one time-ordered arrival sequence.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..errors import ConfigError

#: One merged arrival: ``(arrival_us, tenant_index)``.
Arrival = Tuple[float, int]


@dataclass(frozen=True)
class Tenant:
    """One client population, aggregated to a single offered rate.

    Parameters
    ----------
    name:
        Stable identifier; also the ``tenant.<name>.`` metrics namespace.
    rate_ops_s:
        Aggregate offered load of the whole population, in operations
        per *virtual* second.
    population:
        Number of simulated users the rate aggregates (informational —
        the simulation never materialises per-user state).
    priority:
        Queue priority under the ``"priority"`` discipline; lower values
        are served first, ties served FIFO.
    slo_us:
        Per-tenant latency SLO in virtual microseconds (queue wait +
        service); ``None`` inherits the serve-wide SLO.
    """

    name: str
    rate_ops_s: float
    population: int = 1
    priority: int = 0
    slo_us: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.rate_ops_s <= 0:
            raise ConfigError(
                f"tenant {self.name!r} rate must be positive, "
                f"got {self.rate_ops_s!r}"
            )
        if self.population < 1:
            raise ConfigError(
                f"tenant {self.name!r} population must be >= 1"
            )

    @property
    def per_user_rate_ops_s(self) -> float:
        """The rate each simulated user contributes."""
        return self.rate_ops_s / self.population

    @classmethod
    def of_population(
        cls,
        name: str,
        users: int,
        per_user_rate_ops_s: float,
        priority: int = 0,
        slo_us: Optional[float] = None,
    ) -> "Tenant":
        """Build a tenant from an explicit population × per-user rate."""
        return cls(
            name=name,
            rate_ops_s=users * per_user_rate_ops_s,
            population=users,
            priority=priority,
            slo_us=slo_us,
        )


class ArrivalProcess:
    """Base class: a deterministic stream of inter-arrival gaps.

    Subclasses implement :meth:`intervals`; :meth:`arrivals` is the
    shared accumulation into absolute virtual timestamps.  The property
    suite pins the contract that the n-th arrival timestamp equals the
    running sum of the first n intervals, accumulated in order.
    """

    kind = "abstract"

    def __init__(self, rate_ops_s: float) -> None:
        if rate_ops_s <= 0:
            raise ConfigError(
                f"arrival rate must be positive, got {rate_ops_s!r}"
            )
        self.rate_ops_s = rate_ops_s

    @property
    def mean_interval_us(self) -> float:
        """Long-run average gap between arrivals."""
        return 1e6 / self.rate_ops_s

    def intervals(self, rng: np.random.Generator) -> Iterator[float]:
        raise NotImplementedError

    def arrivals(self, rng: np.random.Generator) -> Iterator[float]:
        """Absolute arrival timestamps: the running sum of the intervals."""
        now_us = 0.0
        for gap_us in self.intervals(rng):
            now_us += gap_us
            yield now_us


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals: i.i.d. exponential inter-arrival gaps."""

    kind = "poisson"

    def intervals(self, rng: np.random.Generator) -> Iterator[float]:
        scale_us = self.mean_interval_us
        while True:
            yield float(rng.exponential(scale_us))


class OnOffProcess(ArrivalProcess):
    """Two-state MMPP: bursts at ``burst × rate``, quiet spells below it.

    Exponential dwell times alternate between an ON state (Poisson at
    ``burst * rate_ops_s``) and an OFF state whose rate is chosen so the
    long-run average stays exactly ``rate_ops_s``:

    ``on_fraction * burst + (1 - on_fraction) * off_factor == 1``.

    ``burst < 1 / on_fraction`` is required so the OFF rate stays
    positive.  The default (20% of time at 4x rate, 80% at 0.25x) makes
    a queue that is comfortably stable on average overflow during
    bursts — the admission-control stress profile.
    """

    kind = "onoff"

    def __init__(
        self,
        rate_ops_s: float,
        burst: float = 4.0,
        on_fraction: float = 0.2,
        mean_cycle_us: float = 50_000.0,
    ) -> None:
        super().__init__(rate_ops_s)
        if not 0 < on_fraction < 1:
            raise ConfigError("on_fraction must lie in (0, 1)")
        if burst <= 1.0:
            raise ConfigError("burst must exceed 1 (else use PoissonProcess)")
        if burst >= 1.0 / on_fraction:
            raise ConfigError(
                f"burst {burst:g} with on_fraction {on_fraction:g} leaves "
                f"no budget for the OFF state (need burst < "
                f"{1.0 / on_fraction:g})"
            )
        if mean_cycle_us <= 0:
            raise ConfigError("mean_cycle_us must be positive")
        self.burst = burst
        self.on_fraction = on_fraction
        self.mean_cycle_us = mean_cycle_us
        self._on_rate = rate_ops_s * burst
        self._off_rate = (
            rate_ops_s * (1.0 - on_fraction * burst) / (1.0 - on_fraction)
        )
        self._on_dwell_us = mean_cycle_us * on_fraction
        self._off_dwell_us = mean_cycle_us * (1.0 - on_fraction)

    def intervals(self, rng: np.random.Generator) -> Iterator[float]:
        on = bool(rng.random() < self.on_fraction)
        state_left_us = float(
            rng.exponential(self._on_dwell_us if on else self._off_dwell_us)
        )
        while True:
            rate = self._on_rate if on else self._off_rate
            gap_us = float(rng.exponential(1e6 / rate))
            # A gap crossing the state boundary is resampled from the new
            # state's rate for the remainder — the standard memoryless
            # construction, so each state's arrivals are exactly Poisson
            # at that state's rate.  The time already spent waiting in
            # earlier states accumulates separately from the fresh sample,
            # which alone is compared against the new state's dwell.
            consumed_us = 0.0
            while gap_us > state_left_us:
                consumed_us += state_left_us
                on = not on
                state_left_us = float(
                    rng.exponential(
                        self._on_dwell_us if on else self._off_dwell_us
                    )
                )
                rate = self._on_rate if on else self._off_rate
                gap_us = float(rng.exponential(1e6 / rate))
            state_left_us -= gap_us
            yield consumed_us + gap_us


#: Relative load over a 24-"hour" day: overnight trough, morning ramp,
#: evening peak — normalised by the constructor so the long-run average
#: rate equals the requested one.
DEFAULT_DIURNAL_PROFILE: Tuple[float, ...] = (
    0.3, 0.25, 0.2, 0.2, 0.25, 0.35, 0.55, 0.8,
    1.0, 1.15, 1.2, 1.25, 1.3, 1.25, 1.2, 1.15,
    1.2, 1.35, 1.55, 1.7, 1.6, 1.3, 0.9, 0.55,
)


class DiurnalProcess(ArrivalProcess):
    """Non-homogeneous Poisson arrivals following a repeating daily profile.

    The profile is a sequence of relative weights, one per equal slice of
    the (virtual) day; the constructor rescales it so the long-run mean
    rate equals ``rate_ops_s``.  Arrivals are generated by thinning: a
    candidate stream at the peak rate is subsampled with probability
    ``rate(t) / peak`` — the textbook construction, and deterministic
    given the generator.  Virtual days are short (runs simulate seconds,
    not days); ``day_us`` scales the cycle to the run length.
    """

    kind = "diurnal"

    def __init__(
        self,
        rate_ops_s: float,
        profile: Sequence[float] = DEFAULT_DIURNAL_PROFILE,
        day_us: float = 1_000_000.0,
    ) -> None:
        super().__init__(rate_ops_s)
        if len(profile) < 2:
            raise ConfigError("diurnal profile needs at least 2 slices")
        if any(weight <= 0 for weight in profile):
            raise ConfigError("diurnal profile weights must be positive")
        if day_us <= 0:
            raise ConfigError("day_us must be positive")
        mean_weight = sum(profile) / len(profile)
        self.profile = tuple(weight / mean_weight for weight in profile)
        self.day_us = day_us
        self._slice_us = day_us / len(self.profile)
        self._peak = max(self.profile)

    def rate_at(self, t_us: float) -> float:
        """Instantaneous rate at virtual time ``t_us`` (ops/s)."""
        slot = int((t_us % self.day_us) // self._slice_us) % len(self.profile)
        return self.rate_ops_s * self.profile[slot]

    def intervals(self, rng: np.random.Generator) -> Iterator[float]:
        peak_rate = self.rate_ops_s * self._peak
        scale_us = 1e6 / peak_rate
        now_us = 0.0
        since_last_us = 0.0
        while True:
            gap_us = float(rng.exponential(scale_us))
            now_us += gap_us
            since_last_us += gap_us
            if rng.random() * self._peak < self.profile[
                int((now_us % self.day_us) // self._slice_us)
                % len(self.profile)
            ]:
                yield since_last_us
                since_last_us = 0.0


#: Registered arrival-process kinds (CLI ``--arrival`` accepts these,
#: plus the special ``"closed"`` replay mode handled by the server).
ARRIVAL_KINDS: Dict[str, Type[ArrivalProcess]] = {
    "poisson": PoissonProcess,
    "onoff": OnOffProcess,
    "diurnal": DiurnalProcess,
}


def make_arrival_process(
    kind: str, rate_ops_s: float, **params: object
) -> ArrivalProcess:
    """Build a registered arrival process (typed error on unknown kind)."""
    cls = ARRIVAL_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(ARRIVAL_KINDS))
        raise ConfigError(
            f"unknown arrival process {kind!r}; known: {known} "
            f"(plus 'closed' for closed-loop replay)"
        )
    return cls(rate_ops_s, **params)  # type: ignore[arg-type]


def split_rate(total_rate_ops_s: float, tenants: int) -> List[Tenant]:
    """Equal-rate tenant population: ``tenants`` tenants sharing the rate."""
    if tenants < 1:
        raise ConfigError("need at least one tenant")
    share = total_rate_ops_s / tenants
    return [Tenant(name=f"t{index}", rate_ops_s=share) for index in range(tenants)]


def merge_tenant_arrivals(
    tenants: Sequence[Tenant],
    kind: str,
    seed: int,
    limit: int,
    **params: object,
) -> List[Arrival]:
    """The first ``limit`` arrivals across every tenant, time-ordered.

    Each tenant draws from its own RNG stream (children of one
    :class:`~numpy.random.SeedSequence`), so the merged sequence is a
    pure function of ``(tenants, kind, seed, params)`` — adding a tenant
    never perturbs another tenant's arrivals.  Ties break by tenant
    index, keeping the merge total-ordered and reproducible.
    """
    if not tenants:
        raise ConfigError("need at least one tenant")
    if limit < 0:
        raise ConfigError("limit must be non-negative")
    children = np.random.SeedSequence(seed).spawn(len(tenants))
    merged: List[Arrival] = []
    heap: List[Tuple[float, int, Iterator[float]]] = []
    for index, (tenant, child) in enumerate(zip(tenants, children)):
        process = make_arrival_process(kind, tenant.rate_ops_s, **params)
        rng = np.random.Generator(np.random.PCG64(child))
        timestamps = process.arrivals(rng)
        heap.append((next(timestamps), index, timestamps))
    heapq.heapify(heap)
    while heap and len(merged) < limit:
        timestamp, index, timestamps = heapq.heappop(heap)
        merged.append((timestamp, index))
        heapq.heappush(heap, (next(timestamps), index, timestamps))
    return merged
