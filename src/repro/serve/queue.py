"""The bounded, admission-controlled request queue of the serving layer.

A single virtual server (the DB) drains this queue; arrivals that find
it full are *rejected with a typed error* instead of growing an unbounded
backlog — the admission-control half of tail-latency engineering: a
bounded queue turns overload into explicit, measurable rejections rather
than unbounded queue-wait.

Two disciplines:

* ``"fifo"`` — arrival order;
* ``"priority"`` — stable priority order (lower value first, FIFO within
  a priority level), so a latency-critical tenant overtakes batch
  traffic *in the queue* while the service path stays identical.

The queue also carries the conservation ledger the property suite pins:
every request that ever arrived is accounted for as admitted or
rejected, and every admitted request is either completed or still
queued (``arrived == admitted + rejected``, ``admitted == completed +
depth``), at every point in time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigError, QueueFullError

#: Queue disciplines accepted by :class:`RequestQueue`.
DISCIPLINES = ("fifo", "priority")


@dataclass(frozen=True)
class Request:
    """One open-loop request: an operation with an arrival timestamp.

    ``seq`` is the global arrival index — the FIFO order and the
    priority tiebreaker.  ``operation`` is a workload
    :class:`~repro.workload.ycsb.Operation`; the serving loop executes
    it against the DB exactly like the closed-loop runner would.
    """

    seq: int
    arrival_us: float
    tenant_index: int
    operation: object
    priority: int = 0


@dataclass
class QueueStats:
    """The conservation ledger (see module docstring)."""

    arrived: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0

    def check_conservation(self, depth: int) -> None:
        """Raise ``AssertionError`` unless the ledger balances."""
        assert self.arrived == self.admitted + self.rejected, self
        assert self.admitted == self.completed + depth, (self, depth)


class RequestQueue:
    """Bounded FIFO / priority queue with typed admission rejection."""

    def __init__(self, capacity: int, discipline: str = "fifo") -> None:
        if capacity < 1:
            raise ConfigError(f"queue capacity must be >= 1, got {capacity!r}")
        if discipline not in DISCIPLINES:
            known = ", ".join(DISCIPLINES)
            raise ConfigError(
                f"unknown queue discipline {discipline!r}; known: {known}"
            )
        self.capacity = capacity
        self.discipline = discipline
        self.stats = QueueStats()
        self._fifo: List[Request] = []
        self._fifo_head = 0
        self._heap: List[Tuple[int, int, Request]] = []

    @property
    def depth(self) -> int:
        """Requests currently queued (admitted, not yet started)."""
        if self.discipline == "fifo":
            return len(self._fifo) - self._fifo_head
        return len(self._heap)

    def __len__(self) -> int:
        return self.depth

    def offer(
        self, request: Request, effective_capacity: Optional[int] = None
    ) -> None:
        """Admit ``request`` or raise :class:`~repro.errors.QueueFullError`.

        ``effective_capacity`` lets the server shrink the admission bound
        below the configured capacity (the back-pressure hook) without
        mutating queue state; it never exceeds ``capacity``.
        """
        bound = self.capacity
        if effective_capacity is not None and effective_capacity < bound:
            bound = max(1, effective_capacity)
        self.stats.arrived += 1
        if self.depth >= bound:
            self.stats.rejected += 1
            raise QueueFullError(
                f"request queue full (depth {self.depth} >= bound {bound})",
                depth=self.depth,
            )
        self.stats.admitted += 1
        if self.discipline == "fifo":
            self._fifo.append(request)
        else:
            heapq.heappush(
                self._heap, (request.priority, request.seq, request)
            )

    def reject_external(self) -> None:
        """Record an arrival the *server* refused before offering it.

        Back-pressure rejections happen at the server (they need engine
        state the queue cannot see); routing them through the ledger
        keeps conservation exact: every arrival is accounted somewhere.
        """
        self.stats.arrived += 1
        self.stats.rejected += 1

    def pop(self) -> Request:
        """Next request under the discipline (caller checks ``depth``)."""
        if self.discipline == "fifo":
            if self._fifo_head >= len(self._fifo):
                raise ConfigError("pop from an empty request queue")
            request = self._fifo[self._fifo_head]
            self._fifo_head += 1
            # Compact the drained prefix occasionally so a long run's
            # queue list does not grow without bound.
            if self._fifo_head > 4096 and self._fifo_head * 2 > len(self._fifo):
                del self._fifo[: self._fifo_head]
                self._fifo_head = 0
            return request
        if not self._heap:
            raise ConfigError("pop from an empty request queue")
        return heapq.heappop(self._heap)[2]

    def complete(self) -> None:
        """Mark one popped request as finished (ledger bookkeeping)."""
        self.stats.completed += 1
