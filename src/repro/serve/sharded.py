"""Open-loop serving over a sharded store: one queue per shard.

A sharded deployment does not share a front-door queue: each shard owns
its device, its virtual clock, *and its request queue*, so a compaction
stall on one shard inflates only the requests routed to it.  This module
routes one merged arrival sequence across shards by key ownership
(:class:`~repro.shard.partition.Partitioner`), serves each shard's
sub-sequence through the identical single-shard loop
(:func:`~repro.serve.server.serve_workload`'s internals), and folds the
per-shard results into one report — the serving-layer analogue of
:func:`~repro.shard.runner.run_sharded_workload`.

Determinism: the trace and arrivals are generated once on the driver
(pure functions of the seeds), routing is pure, and each shard simulates
in isolation, so the report is a function of the inputs alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .server import ServeResult, ServeSpec, _serve_open_loop
from ..errors import ConfigError
from ..harness.latency import LatencyRecorder, LatencyTimeline
from ..harness.runner import PolicyFactory, build_db
from ..lsm.compaction.spec import resolve_factory
from ..lsm.config import LSMConfig
from ..obs.aggregate import aggregate_snapshots, combined_view
from ..obs.snapshot import MetricsSnapshot
from ..shard.partition import Partitioner, make_partitioner
from ..ssd.flash import DeviceConfig
from ..ssd.profile import ENTERPRISE_PCIE, SSDProfile
from ..workload.spec import WorkloadSpec
from ..workload.ycsb import WorkloadGenerator

from .arrivals import merge_tenant_arrivals


@dataclass
class ShardedServeReport:
    """Per-shard serve results plus the deterministic fold."""

    workload: str
    policy: str
    partitioner: str
    num_shards: int
    arrived: int
    admitted: int
    rejected: int
    completed: int
    #: Slowest shard's virtual time — the run finishes with its last shard.
    elapsed_us: float
    shard_results: List[ServeResult] = field(default_factory=list)
    metrics: Optional[MetricsSnapshot] = None
    combined_metrics: Optional[MetricsSnapshot] = None
    wait_latencies: Optional[LatencyRecorder] = None
    service_latencies: Optional[LatencyRecorder] = None
    total_latencies: Optional[LatencyRecorder] = None
    timeline: Optional[LatencyTimeline] = None

    @property
    def throughput_ops_s(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.completed / (self.elapsed_us / 1e6)

    @property
    def slo_violation_rate(self) -> float:
        """Fleet violation rate over arrivals (rejections count)."""
        if self.arrived == 0:
            return 0.0
        violations = sum(result.slo_violations for result in self.shard_results)
        return (violations + self.rejected) / self.arrived

    def fingerprint(self) -> tuple:
        assert self.metrics is not None and self.total_latencies is not None
        return (
            self.workload,
            self.policy,
            self.partitioner,
            self.num_shards,
            self.arrived,
            self.admitted,
            self.rejected,
            self.completed,
            self.elapsed_us,
            tuple(result.fingerprint() for result in self.shard_results),
            tuple(sorted(self.metrics.counters.items())),
        )

    def summary(self) -> Dict[str, float]:
        out = {
            "throughput_ops_s": self.throughput_ops_s,
            "completed": float(self.completed),
            "slo_violation_rate": self.slo_violation_rate,
            "num_shards": float(self.num_shards),
        }
        if self.completed and self.total_latencies is not None:
            out["p99_us"] = self.total_latencies.percentile(99.0)
            out["p999_us"] = self.total_latencies.percentile(99.9)
        return out


def run_sharded_serve(
    spec: WorkloadSpec,
    policy_factory: PolicyFactory,
    serve: ServeSpec,
    num_shards: int,
    partitioner: Union[str, Partitioner] = "hash",
    config: Optional[LSMConfig] = None,
    profile: "SSDProfile | DeviceConfig" = ENTERPRISE_PCIE,
    timeline_bucket_us: float = 1_000_000.0,
) -> ShardedServeReport:
    """Serve one open-loop arrival sequence across ``num_shards`` engines.

    The merged arrival sequence is zipped with the workload trace, routed
    by key ownership, and each shard serves its slice through its own
    bounded queue over its own store.  Closed-loop mode is a single-store
    concept; use :func:`~repro.serve.server.serve_workload` for it.
    """
    if serve.arrival == "closed":
        raise ConfigError(
            "closed-loop replay is single-store; use serve_workload"
        )
    policy_factory = resolve_factory(policy_factory)
    if isinstance(partitioner, str):
        partitioner = make_partitioner(
            partitioner, num_shards, key_space=spec.key_space,
            key_bytes=spec.key_bytes,
        )
    if partitioner.num_shards != num_shards:
        raise ConfigError(
            f"partitioner covers {partitioner.num_shards} shards, "
            f"run requested {num_shards}"
        )

    generator = WorkloadGenerator(spec)
    preload_buckets: List[list] = [[] for _ in range(num_shards)]
    for operation in generator.preload_operations():
        preload_buckets[partitioner.shard_of(operation.key)].append(operation)

    arrivals = merge_tenant_arrivals(
        serve.resolve_tenants(),
        serve.arrival,
        serve.seed,
        spec.num_operations,
        **dict(serve.arrival_params),
    )
    shard_arrivals: List[list] = [[] for _ in range(num_shards)]
    shard_operations: List[list] = [[] for _ in range(num_shards)]
    for arrival, operation in zip(arrivals, generator.operations()):
        shard = partitioner.shard_of(operation.key)
        shard_arrivals[shard].append(arrival)
        shard_operations[shard].append(operation)

    results: List[ServeResult] = []
    for index in range(num_shards):
        db = build_db(
            policy_factory, config=config, profile=profile, seed=index
        )
        for operation in preload_buckets[index]:
            db.put(operation.key, operation.value)
        db.policy.maybe_compact()
        db.reset_measurements()
        results.append(
            _serve_open_loop(
                db,
                iter(shard_operations[index]),
                shard_arrivals[index],
                spec.name,
                serve,
                timeline_bucket_us,
            )
        )
    return merge_serve_results(
        results,
        workload=spec.name,
        partitioner=partitioner.describe(),
        timeline_bucket_us=timeline_bucket_us,
    )


def merge_serve_results(
    results: List[ServeResult],
    workload: str,
    partitioner: str,
    timeline_bucket_us: float = 1_000_000.0,
) -> ShardedServeReport:
    """Fold per-shard serve results deterministically (shard order)."""
    if not results:
        raise ConfigError("cannot merge zero serve results")
    snapshots = [result.metrics for result in results]
    assert all(snapshot is not None for snapshot in snapshots)
    wait = LatencyRecorder()
    service = LatencyRecorder()
    total = LatencyRecorder()
    timeline = LatencyTimeline(bucket_us=timeline_bucket_us)
    for result in results:
        wait.merge_from(result.wait_latencies)
        service.merge_from(result.service_latencies)
        total.merge_from(result.total_latencies)
        timeline.merge(result.timeline)
    return ShardedServeReport(
        workload=workload,
        policy=results[0].policy,
        partitioner=partitioner,
        num_shards=len(results),
        arrived=sum(result.arrived for result in results),
        admitted=sum(result.admitted for result in results),
        rejected=sum(result.rejected for result in results),
        completed=sum(result.completed for result in results),
        elapsed_us=max(result.elapsed_us for result in results),
        shard_results=results,
        metrics=aggregate_snapshots(snapshots),
        combined_metrics=combined_view(snapshots),
        wait_latencies=wait,
        service_latencies=service,
        total_latencies=total,
        timeline=timeline,
    )
