"""The open-loop serving loop: arrivals → bounded queue → the engine.

This is the front-end that turns the closed-loop simulator into a
*service*: requests arrive from a deterministic arrival process
(:mod:`repro.serve.arrivals`) at absolute virtual timestamps, wait in a
bounded :class:`~repro.serve.queue.RequestQueue`, and are served one at
a time by a DB on its own virtual clock.  Each completed request records
**queue wait** and **service time** separately, so the report can show
how much of the client-perceived p99/p99.9 is queueing behind compaction
rather than the operation itself — the service-level form of the paper's
Fig. 1 interference story.

**Single-server semantics.**  The DB is the server; its
:class:`~repro.ssd.clock.SimClock` is the server's clock.  A request's
service starts at ``max(arrival, previous completion)``: when the server
is idle the clock jumps forward to the arrival (``advance_to``), which
is exactly the window in which background compaction threads
(:mod:`repro.sched`) catch up for free — open-loop slack is what lets
the scheduler hide compaction, and saturation is what exposes it.

**Back-pressure.**  Admission consults
:meth:`~repro.lsm.db.DB.throttle_state` before offering a write to the
queue: at ``"slowdown"`` the effective queue bound for writes halves
(shed early, keep waits bounded), at ``"stop"`` writes are refused with
a typed :class:`~repro.errors.BackpressureError` — the engine's L0
throttle propagated to the front door instead of silently inflating
every queued request behind a stalled write.

**Closed-loop equivalence.**  ``arrival="closed"`` replays the workload
with the next request arriving exactly when the previous one completes
(queue depth never exceeds 1, zero queue wait).  That path executes the
identical per-operation sequence as
:func:`repro.harness.runner.execute_operations` — same clock reads, same
stall-counter attribution, same recorder order — so its results are
bit-identical to the closed-loop runner's, which the differential suite
pins (``tests/test_serve_differential.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .arrivals import Arrival, Tenant, merge_tenant_arrivals, split_rate
from .queue import Request, RequestQueue
from ..errors import BackpressureError, ConfigError, QueueFullError, WorkloadError
from ..harness.latency import LatencyRecorder, LatencyTimeline
from ..harness.runner import PolicyFactory, build_db
from ..lsm.config import LSMConfig
from ..lsm.db import DB
from ..obs.aggregate import TENANT_PREFIX, prefix_snapshot
from ..obs.snapshot import MetricsSnapshot
from ..ssd.flash import DeviceConfig
from ..ssd.profile import ENTERPRISE_PCIE, SSDProfile
from ..workload.spec import WorkloadSpec
from ..workload.ycsb import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    OP_RMW,
    OP_SCAN,
    WorkloadGenerator,
)

#: Operation kinds subject to L0 back-pressure (the write path).
WRITE_KINDS = frozenset((OP_PUT, OP_DELETE, OP_RMW))


@dataclass(frozen=True)
class ServeSpec:
    """How to drive the store: arrival profile, load, tenants, queue, SLO.

    ``arrival`` is a registered process kind (``"poisson"``, ``"onoff"``,
    ``"diurnal"``) or ``"closed"`` for closed-loop replay.  ``tenants``
    may be an explicit tuple of :class:`~repro.serve.arrivals.Tenant`;
    the ``num_tenants`` shortcut splits ``rate_ops_s`` equally instead.
    ``slo_us`` is the latency objective (queue wait + service) that
    per-tenant violation rates are measured against; tenants may
    override it individually.
    """

    arrival: str = "poisson"
    rate_ops_s: float = 10_000.0
    tenants: Optional[Tuple[Tenant, ...]] = None
    num_tenants: int = 1
    queue_depth: int = 64
    discipline: str = "fifo"
    slo_us: float = 1_000.0
    backpressure: bool = True
    seed: int = 7
    arrival_params: Tuple[Tuple[str, object], ...] = ()

    def resolve_tenants(self) -> List[Tenant]:
        if self.tenants is not None:
            if not self.tenants:
                raise ConfigError("tenants tuple must be non-empty")
            return list(self.tenants)
        return split_rate(self.rate_ops_s, self.num_tenants)

    def tenant_slo_us(self, tenant: Tenant) -> float:
        return tenant.slo_us if tenant.slo_us is not None else self.slo_us


@dataclass
class TenantServeStats:
    """Everything measured for one tenant during a serve run."""

    tenant: Tenant
    slo_us: float
    completed: int = 0
    rejected_full: int = 0
    rejected_backpressure: int = 0
    slo_violations: int = 0
    wait_latencies: LatencyRecorder = field(default_factory=LatencyRecorder)
    total_latencies: LatencyRecorder = field(default_factory=LatencyRecorder)

    @property
    def arrived(self) -> int:
        return self.completed + self.rejected_full + self.rejected_backpressure

    @property
    def slo_violation_rate(self) -> float:
        """Violations over *arrivals*: a rejected request is a violated one.

        Counting rejections as violations keeps the metric honest under
        admission control — shedding load must not launder the SLO.
        """
        arrived = self.arrived
        if arrived == 0:
            return 0.0
        rejected = self.rejected_full + self.rejected_backpressure
        return (self.slo_violations + rejected) / arrived

    def snapshot(self, t_us: float) -> MetricsSnapshot:
        """This tenant's ledger as a ``tenant.<name>.``-namespaced snapshot."""
        counters: Dict[str, float] = {
            "serve.completed": self.completed,
            "serve.rejected_full": self.rejected_full,
            "serve.rejected_backpressure": self.rejected_backpressure,
            "serve.slo_violations": self.slo_violations,
        }
        if self.completed:
            counters["serve.wait_us_total"] = (
                self.completed * self.wait_latencies.mean()
            )
            counters["serve.total_us_total"] = (
                self.completed * self.total_latencies.mean()
            )
        flat = MetricsSnapshot(
            t_us=t_us,
            counters=counters,
            gauges={"serve.slo_us": self.slo_us},
        )
        return prefix_snapshot(flat, f"{TENANT_PREFIX}.{self.tenant.name}")


@dataclass
class ServeResult:
    """Everything measured during one open-loop (or closed-loop) serve run."""

    workload: str
    policy: str
    arrival: str
    offered_rate_ops_s: float
    queue_depth: int
    discipline: str
    slo_us: float
    arrived: int
    admitted: int
    rejected_full: int
    rejected_backpressure: int
    completed: int
    elapsed_us: float
    #: Queue wait per completed request (service start − arrival).
    wait_latencies: LatencyRecorder
    #: Engine service time per completed request (the closed-loop latency).
    service_latencies: LatencyRecorder
    #: Client-perceived latency: wait + service — what the SLO binds.
    total_latencies: LatencyRecorder
    timeline: LatencyTimeline
    tenant_stats: List[TenantServeStats]
    metrics: Optional[MetricsSnapshot] = None
    stall_time_us: float = 0.0
    device_wait_us: float = 0.0

    @property
    def rejected(self) -> int:
        return self.rejected_full + self.rejected_backpressure

    @property
    def throughput_ops_s(self) -> float:
        """Completed operations per simulated second."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.completed / (self.elapsed_us / 1e6)

    @property
    def slo_violations(self) -> int:
        return sum(stats.slo_violations for stats in self.tenant_stats)

    @property
    def slo_violation_rate(self) -> float:
        """Fleet violation rate over arrivals (rejections count as violated)."""
        if self.arrived == 0:
            return 0.0
        return (self.slo_violations + self.rejected) / self.arrived

    @property
    def rejection_rate(self) -> float:
        if self.arrived == 0:
            return 0.0
        return self.rejected / self.arrived

    def mean_wait_us(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.wait_latencies.mean()

    def tenant_metrics(self) -> MetricsSnapshot:
        """Every tenant's ledger in one ``tenant.<name>.``-keyed snapshot."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        for stats in self.tenant_stats:
            scoped = stats.snapshot(self.elapsed_us)
            counters.update(scoped.counters)
            gauges.update(scoped.gauges)
        return MetricsSnapshot(
            t_us=self.elapsed_us,
            counters={key: counters[key] for key in sorted(counters)},
            gauges={key: gauges[key] for key in sorted(gauges)},
        )

    def fingerprint(self) -> tuple:
        """Every deterministic quantity, for bit-identity assertions."""
        assert self.metrics is not None
        return (
            self.workload,
            self.policy,
            self.arrival,
            self.arrived,
            self.admitted,
            self.rejected_full,
            self.rejected_backpressure,
            self.completed,
            self.elapsed_us,
            tuple(sorted(self.metrics.counters.items())),
            tuple(sorted(self.metrics.gauges.items())),
            tuple(self.total_latencies.values),
            tuple(self.wait_latencies.values),
            tuple(self.service_latencies.values),
            tuple(
                (point.start_us, point.count, point.mean_latency_us,
                 point.max_latency_us, point.stall_us)
                for point in self.timeline.points()
            ),
        )

    def summary(self) -> Dict[str, float]:
        out = {
            "offered_rate_ops_s": self.offered_rate_ops_s,
            "throughput_ops_s": self.throughput_ops_s,
            "completed": float(self.completed),
            "rejection_rate": self.rejection_rate,
            "slo_violation_rate": self.slo_violation_rate,
        }
        if self.completed:
            out.update(
                {
                    "mean_wait_us": self.wait_latencies.mean(),
                    "mean_service_us": self.service_latencies.mean(),
                    "p50_us": self.total_latencies.percentile(50.0),
                    "p99_us": self.total_latencies.percentile(99.0),
                    "p999_us": self.total_latencies.percentile(99.9),
                }
            )
        return out


def serve_workload(
    spec: WorkloadSpec,
    policy_factory: PolicyFactory,
    serve: ServeSpec,
    config: Optional[LSMConfig] = None,
    profile: "SSDProfile | DeviceConfig" = ENTERPRISE_PCIE,
    db: Optional[DB] = None,
    timeline_bucket_us: float = 1_000_000.0,
) -> ServeResult:
    """Drive one workload through the open-loop serving layer.

    Mirrors :func:`~repro.harness.runner.run_workload`'s protocol —
    build, preload, drain maintenance, reset, measure — but the measured
    phase consumes the operation stream at the arrival process's pace
    instead of back-to-back.  ``arrival="closed"`` reproduces the
    closed-loop runner bit for bit (see module docstring).
    """
    generator = WorkloadGenerator(spec)
    if db is None:
        db = build_db(policy_factory, config=config, profile=profile)
        for operation in generator.preload_operations():
            db.put(operation.key, operation.value)
        db.policy.maybe_compact()
        db.reset_measurements()
    operations = generator.operations()
    if serve.arrival == "closed":
        return _serve_closed_loop(
            db, operations, spec.name, serve, timeline_bucket_us
        )
    arrivals = merge_tenant_arrivals(
        serve.resolve_tenants(),
        serve.arrival,
        serve.seed,
        spec.num_operations,
        **dict(serve.arrival_params),
    )
    return _serve_open_loop(
        db, operations, arrivals, spec.name, serve, timeline_bucket_us
    )


def _tenant_stats(serve: ServeSpec) -> List[TenantServeStats]:
    return [
        TenantServeStats(tenant=tenant, slo_us=serve.tenant_slo_us(tenant))
        for tenant in serve.resolve_tenants()
    ]


def admission_bound(
    db: DB, serve: ServeSpec, operation, tenant: str = ""
) -> Optional[int]:
    """The admission decision for one arriving operation.

    Returns the effective queue bound to offer under (``None`` = the
    configured capacity), or raises
    :class:`~repro.errors.BackpressureError` when the engine's L0
    throttle is at ``"stop"`` and the operation is a write.  At
    ``"slowdown"`` the bound halves for writes — shed early while the
    engine is degraded instead of queueing work it cannot absorb.
    Reads are never back-pressured: L0 throttling is a write-path
    signal.

    The throttle signal reflects the engine as of the most recently
    *served* request: the virtual clock only advances when a request is
    executed, so after an idle gap the L0 state consulted here is the
    one the previous completion left behind, not a hypothetical state
    at the arrival instant.
    """
    if not serve.backpressure or operation[0] not in WRITE_KINDS:
        return None
    state = db.throttle_state()
    if state == "stop":
        raise BackpressureError(
            "write refused: engine L0 throttle is at 'stop'",
            tenant=tenant,
        )
    if state == "slowdown":
        return max(1, serve.queue_depth // 2)
    return None


def _execute(db: DB, operation) -> None:
    """One operation, dispatched exactly like the closed-loop per-op loop."""
    kind = operation[0]
    if kind == OP_PUT:
        db.put(operation[1], operation[2])
    elif kind == OP_GET:
        db.get(operation[1])
    elif kind == OP_SCAN:
        db.scan(operation[1], operation[3])
    elif kind == OP_DELETE:
        db.delete(operation[1])
    elif kind == OP_RMW:
        current = db.get(operation[1])
        db.put(operation[1], operation[2] or current or b"")
    else:
        raise WorkloadError(f"unknown operation kind {kind!r}")


def _serve_open_loop(
    db: DB,
    operations,
    arrivals: Sequence[Arrival],
    workload_name: str,
    serve: ServeSpec,
    timeline_bucket_us: float,
) -> ServeResult:
    tenants = _tenant_stats(serve)
    queue = RequestQueue(serve.queue_depth, serve.discipline)
    wait_rec = LatencyRecorder()
    service_rec = LatencyRecorder()
    total_rec = LatencyRecorder()
    timeline = LatencyTimeline(bucket_us=timeline_bucket_us)
    clock = db.clock
    counters_get = db.registry._counters.get
    stall_total = counters_get("engine.stall_time_us", 0) + counters_get(
        "sched.device_wait_us", 0
    )
    start_time = clock.now()
    # Arrival timestamps are relative to the measured phase's origin; the
    # preload already advanced the clock, so shift to absolute time once.
    origin_us = start_time

    def serve_one(request: Request) -> float:
        nonlocal stall_total
        arrival_us = request.arrival_us
        if clock._now_us < arrival_us:
            # Server idle: jump to the arrival.  Background compaction
            # threads replay their chunks across this gap on the next
            # engine operation — idle time is where the scheduler hides.
            clock.advance_to(arrival_us)
        begin = clock._now_us
        wait_us = begin - arrival_us
        _execute(db, request.operation)
        service_us = clock._now_us - begin
        stalled = counters_get("engine.stall_time_us", 0) + counters_get(
            "sched.device_wait_us", 0
        )
        total_us = wait_us + service_us
        wait_rec.record(wait_us)
        service_rec.record(service_us)
        total_rec.record(total_us)
        timeline.record(begin, total_us, stall_us=stalled - stall_total)
        stall_total = stalled
        queue.complete()
        stats = tenants[request.tenant_index]
        stats.completed += 1
        stats.wait_latencies.record(wait_us)
        stats.total_latencies.record(total_us)
        if total_us > stats.slo_us:
            stats.slo_violations += 1
        return total_us

    operations = iter(operations)
    seq = 0
    for arrival_rel_us, tenant_index in arrivals:
        try:
            operation = next(operations)
        except StopIteration:  # trace shorter than the arrival budget
            break
        arrival_us = origin_us + arrival_rel_us
        # Finish every queued request whose service starts before this
        # arrival; the admission decision below sees the queue *depth*
        # exactly as it stands at the arrival instant.  The engine's
        # throttle state, by contrast, is as of the last completion —
        # the clock (and with it background compaction) only advances
        # when a request is served (see admission_bound).
        while len(queue) and clock._now_us < arrival_us:
            serve_one(queue.pop())
        request = Request(
            seq=seq,
            arrival_us=arrival_us,
            tenant_index=tenant_index,
            operation=operation,
            priority=tenants[tenant_index].tenant.priority,
        )
        seq += 1
        stats = tenants[tenant_index]
        try:
            effective_capacity = admission_bound(
                db, serve, operation, tenant=stats.tenant.name
            )
        except BackpressureError:
            queue.reject_external()
            stats.rejected_backpressure += 1
            continue
        try:
            queue.offer(request, effective_capacity=effective_capacity)
        except QueueFullError:
            stats.rejected_full += 1
    while len(queue):
        serve_one(queue.pop())
    elapsed = clock.now() - start_time
    queue.stats.check_conservation(len(queue))
    return _build_result(
        db, workload_name, serve, serve.arrival, queue.stats.arrived,
        queue.stats.admitted, tenants, elapsed,
        wait_rec, service_rec, total_rec, timeline,
    )


def _serve_closed_loop(
    db: DB,
    operations,
    workload_name: str,
    serve: ServeSpec,
    timeline_bucket_us: float,
) -> ServeResult:
    """Closed-loop replay through the serve bookkeeping (queue depth 1).

    The next request "arrives" the instant the previous one completes,
    so every queue wait is exactly zero and the per-operation execution
    sequence — clock reads, dispatch, stall-counter attribution,
    recorder order — matches
    :func:`repro.harness.runner.execute_operations` bit for bit.
    """
    tenants = _tenant_stats(serve)
    stats = tenants[0]
    wait_rec = LatencyRecorder()
    service_rec = LatencyRecorder()
    total_rec = LatencyRecorder()
    timeline = LatencyTimeline(bucket_us=timeline_bucket_us)
    clock = db.clock
    counters_get = db.registry._counters.get
    stall_total = counters_get("engine.stall_time_us", 0) + counters_get(
        "sched.device_wait_us", 0
    )
    start_time = clock.now()
    count = 0
    for operation in operations:
        begin = clock._now_us
        _execute(db, operation)
        latency = clock._now_us - begin
        stalled = counters_get("engine.stall_time_us", 0) + counters_get(
            "sched.device_wait_us", 0
        )
        wait_rec.record(0.0)
        service_rec.record(latency)
        total_rec.record(latency)
        timeline.record(begin, latency, stall_us=stalled - stall_total)
        stall_total = stalled
        count += 1
        stats.completed += 1
        stats.wait_latencies.record(0.0)
        stats.total_latencies.record(latency)
        if latency > stats.slo_us:
            stats.slo_violations += 1
    elapsed = clock.now() - start_time
    return _build_result(
        db, workload_name, serve, "closed", count, count, tenants, elapsed,
        wait_rec, service_rec, total_rec, timeline,
    )


def _build_result(
    db: DB,
    workload_name: str,
    serve: ServeSpec,
    arrival: str,
    arrived: int,
    admitted: int,
    tenants: List[TenantServeStats],
    elapsed: float,
    wait_rec: LatencyRecorder,
    service_rec: LatencyRecorder,
    total_rec: LatencyRecorder,
    timeline: LatencyTimeline,
) -> ServeResult:
    snapshot = db.metrics()
    counter = db.registry.counter
    return ServeResult(
        workload=workload_name,
        policy=db.policy.name,
        arrival=arrival,
        # The load actually offered is the sum of the resolved tenant
        # rates: an explicit tenants tuple overrides serve.rate_ops_s.
        offered_rate_ops_s=sum(s.tenant.rate_ops_s for s in tenants),
        queue_depth=serve.queue_depth,
        discipline=serve.discipline,
        slo_us=serve.slo_us,
        arrived=arrived,
        admitted=admitted,
        rejected_full=sum(s.rejected_full for s in tenants),
        rejected_backpressure=sum(s.rejected_backpressure for s in tenants),
        completed=sum(s.completed for s in tenants),
        elapsed_us=elapsed,
        wait_latencies=wait_rec,
        service_latencies=service_rec,
        total_latencies=total_rec,
        timeline=timeline,
        tenant_stats=tenants,
        metrics=snapshot,
        stall_time_us=float(counter("engine.stall_time_us")),
        device_wait_us=float(counter("sched.device_wait_us")),
    )
