"""Open-loop serving layer: arrival processes, bounded queues, SLOs.

The closed-loop harness (:mod:`repro.harness`) measures *service time*;
this package measures what a client of the store would see: requests
arrive on their own schedule, wait in a bounded admission-controlled
queue, and the reported tail latency is queue wait **plus** service —
the regime where compaction interference turns into SLO violations.
See ``docs/SERVING.md`` for the model and its caveats.
"""

from .arrivals import (
    ARRIVAL_KINDS,
    DEFAULT_DIURNAL_PROFILE,
    Arrival,
    ArrivalProcess,
    DiurnalProcess,
    OnOffProcess,
    PoissonProcess,
    Tenant,
    make_arrival_process,
    merge_tenant_arrivals,
    split_rate,
)
from .queue import DISCIPLINES, QueueStats, Request, RequestQueue
from .server import (
    WRITE_KINDS,
    ServeResult,
    ServeSpec,
    TenantServeStats,
    admission_bound,
    serve_workload,
)
from .sharded import ShardedServeReport, merge_serve_results, run_sharded_serve

__all__ = [
    "ARRIVAL_KINDS",
    "DEFAULT_DIURNAL_PROFILE",
    "DISCIPLINES",
    "WRITE_KINDS",
    "Arrival",
    "ArrivalProcess",
    "DiurnalProcess",
    "OnOffProcess",
    "PoissonProcess",
    "QueueStats",
    "Request",
    "RequestQueue",
    "ServeResult",
    "ServeSpec",
    "ShardedServeReport",
    "Tenant",
    "TenantServeStats",
    "admission_bound",
    "make_arrival_process",
    "merge_serve_results",
    "merge_tenant_arrivals",
    "run_sharded_serve",
    "serve_workload",
    "split_rate",
]
