"""Plain-text reporting: aligned tables and paper-comparison rows.

Every benchmark prints the series/rows of its paper figure next to the
paper's reported values, so EXPERIMENTS.md can quote the output directly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    materialised: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def improvement(new: float, old: float) -> str:
    """Relative change of ``new`` over ``old`` as a signed percentage."""
    if old == 0:
        return "n/a"
    return f"{(new / old - 1.0) * 100:+.1f}%"


def ratio(numerator: float, denominator: float) -> str:
    if denominator == 0:
        return "n/a"
    return f"{numerator / denominator:.2f}x"


def mib(nbytes: float) -> float:
    return nbytes / 2**20


def paper_row(label: str, paper_value: str, measured_value: str) -> str:
    """One 'paper vs measured' comparison line."""
    return f"  {label:<40} paper: {paper_value:<18} measured: {measured_value}"
