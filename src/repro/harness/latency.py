"""Latency recording over virtual time.

Collects per-operation latencies (microseconds of virtual time) and
computes exact percentiles — the paper reports P90 through P99.99
(Fig. 8) — plus the per-interval average-latency timeline behind Fig. 1's
fluctuation plot.

Each :class:`LatencyRecorder` also feeds a streaming
:class:`~repro.obs.histogram.LatencyHistogram` (the observability layer's
log-bucketed percentile path): paper figures keep the exact sorted-sample
percentiles, while ``recorder.histogram`` answers the same queries in O(1)
memory for production-scale runs where storing every sample is off the
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ReproError
from ..obs.histogram import LatencyHistogram

#: The percentiles of the paper's Fig. 8.
PAPER_PERCENTILES = (90.0, 99.0, 99.9, 99.99)


class LatencyRecorder:
    """Accumulates latencies and answers percentile/mean queries.

    Exact percentiles come from the stored samples; the parallel
    :attr:`histogram` provides the streaming (bounded-memory) estimates.
    """

    def __init__(self) -> None:
        self._values: List[float] = []
        self._sorted: Optional[np.ndarray] = None
        #: Streaming log-bucketed view of the same samples.
        self.histogram = LatencyHistogram()

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ReproError(f"negative latency {latency_us!r}")
        self._values.append(latency_us)
        self._sorted = None
        self.histogram.record(latency_us)

    def __len__(self) -> int:
        return len(self._values)

    def _ensure_sorted(self) -> np.ndarray:
        if self._sorted is None:
            self._sorted = np.sort(np.asarray(self._values, dtype=np.float64))
        return self._sorted

    def percentile(self, pct: float) -> float:
        """Exact percentile (0 < pct <= 100) of the recorded latencies."""
        if not 0 < pct <= 100:
            raise ReproError("percentile must lie in (0, 100]")
        data = self._ensure_sorted()
        if data.size == 0:
            raise ReproError("no latencies recorded")
        index = min(data.size - 1, int(np.ceil(pct / 100.0 * data.size)) - 1)
        return float(data[max(0, index)])

    def percentiles(
        self, pcts: Sequence[float] = PAPER_PERCENTILES
    ) -> Dict[float, float]:
        return {pct: self.percentile(pct) for pct in pcts}

    def streaming_percentiles(
        self, pcts: Sequence[float] = PAPER_PERCENTILES
    ) -> Dict[float, float]:
        """Histogram-estimated percentiles (within one bucket of exact)."""
        return self.histogram.percentiles(pcts)

    def mean(self) -> float:
        if not self._values:
            raise ReproError("no latencies recorded")
        return float(np.mean(self._values))

    def maximum(self) -> float:
        if not self._values:
            raise ReproError("no latencies recorded")
        return float(self._ensure_sorted()[-1])

    def minimum(self) -> float:
        if not self._values:
            raise ReproError("no latencies recorded")
        return float(self._ensure_sorted()[0])

    @property
    def values(self) -> Sequence[float]:
        return self._values


@dataclass
class TimelinePoint:
    """Average latency within one virtual-time bucket (Fig. 1 series).

    ``stall_us`` attributes the bucket's latency to back-pressure: the
    virtual time its operations spent in L0 throttling (slowdown delays,
    stop stalls) plus device-channel waits behind background compaction
    chunks.  Zero whenever the scheduler is off and no stop stall fired —
    a spike with large ``stall_us`` is compaction interference, not
    workload variance.
    """

    start_us: float
    count: int
    mean_latency_us: float
    max_latency_us: float
    stall_us: float = 0.0


class LatencyTimeline:
    """Buckets latencies by virtual time to expose fluctuation (Fig. 1).

    The paper plots "the average latency per second of all the requests";
    the bucket width is configurable because simulated runs compress time.
    """

    def __init__(self, bucket_us: float = 1_000_000.0) -> None:
        if bucket_us <= 0:
            raise ReproError("bucket width must be positive")
        self.bucket_us = bucket_us
        self._sums: Dict[int, float] = {}
        self._counts: Dict[int, int] = {}
        self._maxes: Dict[int, float] = {}
        self._stalls: Dict[int, float] = {}

    def record(
        self, timestamp_us: float, latency_us: float, stall_us: float = 0.0
    ) -> None:
        bucket = int(timestamp_us // self.bucket_us)
        self._sums[bucket] = self._sums.get(bucket, 0.0) + latency_us
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self._maxes[bucket] = max(self._maxes.get(bucket, 0.0), latency_us)
        if stall_us:
            self._stalls[bucket] = self._stalls.get(bucket, 0.0) + stall_us

    def merge(self, other: "LatencyTimeline") -> None:
        """Fold ``other``'s buckets into this timeline (same bucket width).

        Shards record against independent virtual clocks over the same
        bucket grid, so merging is bucket-wise: sums and counts add, maxes
        take the max.  Used by the sharded runner to build the aggregate
        Fig. 1-style series.
        """
        if other.bucket_us != self.bucket_us:
            raise ReproError("cannot merge timelines with different bucket widths")
        for bucket, count in other._counts.items():
            self._sums[bucket] = self._sums.get(bucket, 0.0) + other._sums[bucket]
            self._counts[bucket] = self._counts.get(bucket, 0) + count
            self._maxes[bucket] = max(
                self._maxes.get(bucket, 0.0), other._maxes[bucket]
            )
        for bucket, stall in other._stalls.items():
            self._stalls[bucket] = self._stalls.get(bucket, 0.0) + stall

    def points(self) -> List[TimelinePoint]:
        return [
            TimelinePoint(
                start_us=bucket * self.bucket_us,
                count=self._counts[bucket],
                mean_latency_us=self._sums[bucket] / self._counts[bucket],
                max_latency_us=self._maxes[bucket],
                stall_us=self._stalls.get(bucket, 0.0),
            )
            for bucket in sorted(self._counts)
        ]

    def fluctuation_ratio(self) -> float:
        """Largest bucket mean over smallest bucket mean.

        The paper's motivating measurement: "the fluctuation extent of the
        write latency reaches up to 49.13 times compared with the smallest
        latency" (Fig. 1).
        """
        points = self.points()
        if not points:
            raise ReproError("no timeline points recorded")
        means = [point.mean_latency_us for point in points]
        smallest = min(means)
        if smallest <= 0:
            return float("inf")
        return max(means) / smallest
