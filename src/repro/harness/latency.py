"""Latency recording over virtual time.

Collects per-operation latencies (microseconds of virtual time) and
computes exact percentiles — the paper reports P90 through P99.99
(Fig. 8) — plus the per-interval average-latency timeline behind Fig. 1's
fluctuation plot.

Each :class:`LatencyRecorder` also feeds a streaming
:class:`~repro.obs.histogram.LatencyHistogram` (the observability layer's
log-bucketed percentile path): paper figures keep the exact sorted-sample
percentiles, while ``recorder.histogram`` answers the same queries in O(1)
memory for production-scale runs where storing every sample is off the
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ReproError
from ..obs.histogram import LatencyHistogram

#: The percentiles of the paper's Fig. 8.
PAPER_PERCENTILES = (90.0, 99.0, 99.9, 99.99)


class LatencyRecorder:
    """Accumulates latencies and answers percentile/mean queries.

    Exact percentiles come from the stored samples; the parallel
    :attr:`histogram` provides the streaming (bounded-memory) estimates.

    **Sampling mode.**  A 10M-operation run would otherwise hold 10M
    Python floats per recorder.  ``sample_stride=k`` stores every k-th
    sample; ``max_samples=n`` caps the stored list.  The histogram, the
    count, the mean, the minimum and the maximum stay *exact* in every
    mode (they are streamed, not sampled); only the stored-sample list is
    thinned.  Once any sample has been dropped, :meth:`percentile`
    answers from the histogram — within one log-bucket (``growth - 1``,
    5%) of the exact value — instead of pretending the sampled list is
    the population.  The default (``stride=1``, no cap) records exactly
    as before, which the sharded fingerprint tests rely on.
    """

    def __init__(
        self,
        sample_stride: int = 1,
        max_samples: Optional[int] = None,
    ) -> None:
        if sample_stride < 1:
            raise ReproError("sample_stride must be >= 1")
        if max_samples is not None and max_samples < 1:
            raise ReproError("max_samples must be >= 1 when set")
        self._values: List[float] = []
        self._sorted: Optional[np.ndarray] = None
        self._stride = sample_stride
        self._max_samples = max_samples
        #: True once any sample was not stored (strided out or over cap).
        self._lossy = sample_stride > 1
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0
        #: Streaming log-bucketed view of the same samples.
        self.histogram = LatencyHistogram()

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ReproError(f"negative latency {latency_us!r}")
        count = self._count
        self._count = count + 1
        self._sum += latency_us
        if latency_us > self._max:
            self._max = latency_us
        if latency_us < self._min:
            self._min = latency_us
        self.histogram.record(latency_us)
        if count % self._stride == 0:
            cap = self._max_samples
            if cap is None or len(self._values) < cap:
                self._values.append(latency_us)
                self._sorted = None
            else:
                self._lossy = True

    def record_many(self, latencies: Sequence[float]) -> None:
        """Record a chunk of latencies, in order.

        Equivalent to calling :meth:`record` once per value — same stored
        samples, same histogram, same running aggregates (the float sum
        accumulates sequentially in the same order) — with the per-call
        dispatch amortised for the chunked runner loop.
        """
        if not latencies:
            return
        stride = self._stride
        cap = self._max_samples
        count = self._count
        total = self._sum
        vmin = self._min
        vmax = self._max
        store = self._values
        push = store.append
        stored = len(store)
        for value in latencies:
            if value < 0:
                raise ReproError(f"negative latency {value!r}")
            if value > vmax:
                vmax = value
            if value < vmin:
                vmin = value
            total += value
            if count % stride == 0:
                if cap is None or stored < cap:
                    push(value)
                    stored += 1
                else:
                    self._lossy = True
            count += 1
        self._count = count
        self._sum = total
        self._min = vmin
        self._max = vmax
        self._sorted = None
        self.histogram.record_many(latencies)

    def merge_from(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's state into this one (shard aggregation)."""
        self._values.extend(other._values)
        self._sorted = None
        self._count += other._count
        self._sum += other._sum
        if other._max > self._max:
            self._max = other._max
        if other._min < self._min:
            self._min = other._min
        self._lossy = self._lossy or other._lossy
        self.histogram.merge(other.histogram)

    def __len__(self) -> int:
        """Total number of latencies recorded (not just those stored)."""
        return self._count

    @property
    def is_sampled(self) -> bool:
        """True when the stored-sample list no longer holds every sample."""
        return self._lossy

    @property
    def sample_count(self) -> int:
        """Number of samples actually stored (== ``len`` unless sampled)."""
        return len(self._values)

    def _ensure_sorted(self) -> np.ndarray:
        if self._sorted is None:
            self._sorted = np.sort(np.asarray(self._values, dtype=np.float64))
        return self._sorted

    def percentile(self, pct: float) -> float:
        """Percentile (0 < pct <= 100) of the recorded latencies.

        Exact (from the stored samples) until sampling drops any sample;
        after that, answered by the streaming histogram, which is within
        one log-bucket of exact.
        """
        if not 0 < pct <= 100:
            raise ReproError("percentile must lie in (0, 100]")
        if self._count == 0:
            raise ReproError("no latencies recorded")
        if self._lossy:
            return self.histogram.percentile(pct)
        data = self._ensure_sorted()
        index = min(data.size - 1, int(np.ceil(pct / 100.0 * data.size)) - 1)
        return float(data[max(0, index)])

    def percentiles(
        self, pcts: Sequence[float] = PAPER_PERCENTILES
    ) -> Dict[float, float]:
        return {pct: self.percentile(pct) for pct in pcts}

    def streaming_percentiles(
        self, pcts: Sequence[float] = PAPER_PERCENTILES
    ) -> Dict[float, float]:
        """Histogram-estimated percentiles (within one bucket of exact)."""
        return self.histogram.percentiles(pcts)

    def mean(self) -> float:
        if self._count == 0:
            raise ReproError("no latencies recorded")
        if not self._lossy:
            # Exact mode keeps the historical numpy pairwise-sum mean so
            # previously reported numbers reproduce bit for bit.
            return float(np.mean(self._values))
        return self._sum / self._count

    def maximum(self) -> float:
        if self._count == 0:
            raise ReproError("no latencies recorded")
        return self._max

    def minimum(self) -> float:
        if self._count == 0:
            raise ReproError("no latencies recorded")
        return self._min

    @property
    def values(self) -> Sequence[float]:
        """The stored samples (every sample unless sampling is enabled)."""
        return self._values


@dataclass
class TimelinePoint:
    """Average latency within one virtual-time bucket (Fig. 1 series).

    ``stall_us`` attributes the bucket's latency to back-pressure: the
    virtual time its operations spent in L0 throttling (slowdown delays,
    stop stalls) plus device-channel waits behind background compaction
    chunks.  Zero whenever the scheduler is off and no stop stall fired —
    a spike with large ``stall_us`` is compaction interference, not
    workload variance.
    """

    start_us: float
    count: int
    mean_latency_us: float
    max_latency_us: float
    stall_us: float = 0.0


class LatencyTimeline:
    """Buckets latencies by virtual time to expose fluctuation (Fig. 1).

    The paper plots "the average latency per second of all the requests";
    the bucket width is configurable because simulated runs compress time.
    """

    def __init__(self, bucket_us: float = 1_000_000.0) -> None:
        if bucket_us <= 0:
            raise ReproError("bucket width must be positive")
        self.bucket_us = bucket_us
        self._sums: Dict[int, float] = {}
        self._counts: Dict[int, int] = {}
        self._maxes: Dict[int, float] = {}
        self._stalls: Dict[int, float] = {}

    def record(
        self, timestamp_us: float, latency_us: float, stall_us: float = 0.0
    ) -> None:
        bucket = int(timestamp_us // self.bucket_us)
        self._sums[bucket] = self._sums.get(bucket, 0.0) + latency_us
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self._maxes[bucket] = max(self._maxes.get(bucket, 0.0), latency_us)
        if stall_us:
            self._stalls[bucket] = self._stalls.get(bucket, 0.0) + stall_us

    def merge(self, other: "LatencyTimeline") -> None:
        """Fold ``other``'s buckets into this timeline (same bucket width).

        Shards record against independent virtual clocks over the same
        bucket grid, so merging is bucket-wise: sums and counts add, maxes
        take the max.  Used by the sharded runner to build the aggregate
        Fig. 1-style series.
        """
        if other.bucket_us != self.bucket_us:
            raise ReproError("cannot merge timelines with different bucket widths")
        for bucket, count in other._counts.items():
            self._sums[bucket] = self._sums.get(bucket, 0.0) + other._sums[bucket]
            self._counts[bucket] = self._counts.get(bucket, 0) + count
            self._maxes[bucket] = max(
                self._maxes.get(bucket, 0.0), other._maxes[bucket]
            )
        for bucket, stall in other._stalls.items():
            self._stalls[bucket] = self._stalls.get(bucket, 0.0) + stall

    def points(self) -> List[TimelinePoint]:
        return [
            TimelinePoint(
                start_us=bucket * self.bucket_us,
                count=self._counts[bucket],
                mean_latency_us=self._sums[bucket] / self._counts[bucket],
                max_latency_us=self._maxes[bucket],
                stall_us=self._stalls.get(bucket, 0.0),
            )
            for bucket in sorted(self._counts)
        ]

    def fluctuation_ratio(self) -> float:
        """Largest bucket mean over smallest bucket mean.

        The paper's motivating measurement: "the fluctuation extent of the
        write latency reaches up to 49.13 times compared with the smallest
        latency" (Fig. 1).
        """
        points = self.points()
        if not points:
            raise ReproError("no timeline points recorded")
        means = [point.mean_latency_us for point in points]
        smallest = min(means)
        if smallest <= 0:
            return float("inf")
        return max(means) / smallest
