"""The workload runner: drive a DB with a workload spec, measure everything.

``run_workload`` executes the paper's measurement protocol:

1. build a fresh DB with the requested compaction policy over a fresh
   simulated device;
2. load ``preload_keys`` distinct keys (read-bearing workloads run against
   a populated store, as in §IV-A), drain maintenance, reset statistics;
3. execute the measured operations, recording each operation's virtual-time
   latency (split by kind) and the Fig. 1-style timeline;
4. return a :class:`RunResult` with throughput, percentiles, device I/O by
   category, engine counters and space usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Dict, List, Optional

from .latency import LatencyRecorder, LatencyTimeline
from ..errors import WorkloadError
from ..lsm.compaction.spec import resolve_factory
from ..lsm.config import LSMConfig
from ..lsm.db import DB
from ..obs.snapshot import MetricsSnapshot
from ..obs.tracer import Tracer
from ..ssd.flash import DeviceConfig
from ..ssd.profile import ENTERPRISE_PCIE, SSDProfile
from ..workload.spec import WorkloadSpec
from ..workload.ycsb import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    OP_RMW,
    OP_SCAN,
    WorkloadGenerator,
)

#: Factory producing a fresh policy instance per run (policies are
#: stateful).  Every harness entry point also accepts a registered policy
#: name or a :class:`~repro.lsm.compaction.spec.PolicySpec` wherever a
#: factory is expected (coerced through
#: :func:`~repro.lsm.compaction.spec.resolve_factory`).
PolicyFactory = Callable[[], object]


@dataclass
class RunResult:
    """Everything measured during one workload run."""

    workload: str
    policy: str
    operations: int
    elapsed_us: float
    latencies: LatencyRecorder
    write_latencies: LatencyRecorder
    read_latencies: LatencyRecorder
    scan_latencies: LatencyRecorder
    timeline: LatencyTimeline
    compaction_read_bytes: int
    compaction_write_bytes: int
    total_read_bytes: int
    total_write_bytes: int
    user_bytes_written: int
    write_amplification: float
    space_bytes: int
    live_bytes: int
    extra_space_bytes: int
    flush_count: int
    compaction_count: int
    link_count: int
    merge_count: int
    trivial_moves: int
    stall_events: int
    sstable_blocks_read: int
    bloom_negative_skips: int
    activity_share: Dict[str, float] = field(default_factory=dict)
    final_threshold: Optional[int] = None
    #: Unified metrics snapshot taken when the run finished (counters cover
    #: the measured window since the post-load reset).
    metrics: Optional[MetricsSnapshot] = None
    #: Virtual time the measured operations spent throttled (L0 slowdown
    #: delays + stop stalls); always present, non-zero mostly under the
    #: scheduler (``bg_threads >= 1``).
    stall_time_us: float = 0.0
    #: Foreground waits behind in-flight background compaction chunks on
    #: the device channel (scheduler only).
    device_wait_us: float = 0.0
    #: Flash/FTL quantities (docs/DEVICE.md); the defaults are what a
    #: flash-less run reports, so pickled results and old callers are
    #: unaffected.  ``write_amplification`` above stays *host* WA.
    device_write_amplification: float = 1.0
    total_write_amplification: float = 0.0
    gc_write_bytes: int = 0
    flash_bytes_programmed: int = 0
    blocks_erased: int = 0
    max_erase_count: int = 0

    @property
    def throughput_ops_s(self) -> float:
        """Operations per simulated second."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.operations / (self.elapsed_us / 1e6)

    @property
    def compaction_bytes_total(self) -> int:
        return self.compaction_read_bytes + self.compaction_write_bytes

    @property
    def mean_latency_us(self) -> float:
        return self.latencies.mean()

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by reports and tests."""
        return {
            "throughput_ops_s": self.throughput_ops_s,
            "mean_latency_us": self.mean_latency_us,
            "p99_us": self.latencies.percentile(99.0),
            "p999_us": self.latencies.percentile(99.9),
            "write_amplification": self.write_amplification,
            "device_write_amplification": self.device_write_amplification,
            "total_write_amplification": self.total_write_amplification,
            "compaction_gib": self.compaction_bytes_total / 2**30,
            "space_mib": self.space_bytes / 2**20,
        }


def build_db(
    policy_factory: PolicyFactory,
    config: Optional[LSMConfig] = None,
    profile: "SSDProfile | DeviceConfig" = ENTERPRISE_PCIE,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> DB:
    """Construct a fresh DB for one measured run.

    ``policy_factory`` may be a zero-arg factory, a registered policy
    name, or a :class:`~repro.lsm.compaction.spec.PolicySpec`.
    ``profile`` accepts a bare :class:`~repro.ssd.profile.SSDProfile`
    or a :class:`~repro.ssd.flash.DeviceConfig` (flash layer opt-in).
    """
    return DB(
        config=config if config is not None else LSMConfig(),
        policy=resolve_factory(policy_factory)(),
        profile=profile,
        seed=seed,
        tracer=tracer,
    )


#: Operations dispatched per chunk by the chunked runner loop.  Chunking
#: amortises the per-operation recorder calls (bulk ``record_many`` per
#: chunk) without changing any recorded value — the differential tests
#: pin chunked == per-op exactly.
DEFAULT_CHUNK_SIZE = 1024


def run_workload(
    spec: WorkloadSpec,
    policy_factory: PolicyFactory,
    config: Optional[LSMConfig] = None,
    profile: "SSDProfile | DeviceConfig" = ENTERPRISE_PCIE,
    timeline_bucket_us: float = 1_000_000.0,
    db: Optional[DB] = None,
    tracer: Optional[Tracer] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    sample_stride: int = 1,
    max_latency_samples: Optional[int] = None,
) -> RunResult:
    """Run one workload against one policy and measure it.

    Pass ``db`` to reuse a pre-built (e.g. pre-loaded) database; otherwise
    a fresh one is created and loaded per the spec.  Pass ``tracer`` (with
    sinks attached) to record the run's full event timeline; the load
    phase is traced too, separated from the measured phase by the
    measurement reset.  ``sample_stride`` / ``max_latency_samples``
    configure sampled latency recording for paper-scale runs (see
    :class:`~repro.harness.latency.LatencyRecorder`).
    """
    generator = WorkloadGenerator(spec)
    if db is None:
        db = build_db(policy_factory, config=config, profile=profile, tracer=tracer)
        for operation in generator.preload_operations():
            db.put(operation.key, operation.value)
        db.policy.maybe_compact()
        db.reset_measurements()
    return execute_operations(
        db,
        generator.operations(),
        workload_name=spec.name,
        timeline_bucket_us=timeline_bucket_us,
        chunk_size=chunk_size,
        sample_stride=sample_stride,
        max_latency_samples=max_latency_samples,
    )


def execute_operations(
    db: DB,
    operations,
    workload_name: str,
    timeline_bucket_us: float = 1_000_000.0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    sample_stride: int = 1,
    max_latency_samples: Optional[int] = None,
) -> RunResult:
    """Execute an explicit operation stream against a prepared DB.

    The measured core of :func:`run_workload`, split out so the sharded
    runner (:mod:`repro.shard.runner`) can drive a shard with a
    pre-partitioned slice of the trace through the *identical* loop —
    keeping single-store and sharded measurements comparable.

    ``chunk_size > 1`` (the default) drives the chunked dispatch loop:
    operations execute one at a time as before (per-op virtual-time
    effects are untouched), but latencies are buffered and bulk-loaded
    into the recorders once per chunk.  ``chunk_size <= 1`` selects the
    straight per-op loop; both produce bit-identical results and the
    differential suite keeps them honest.
    """
    recorders = {
        OP_PUT: LatencyRecorder(sample_stride, max_latency_samples),
        OP_DELETE: LatencyRecorder(sample_stride, max_latency_samples),
        OP_GET: LatencyRecorder(sample_stride, max_latency_samples),
        OP_SCAN: LatencyRecorder(sample_stride, max_latency_samples),
        OP_RMW: LatencyRecorder(sample_stride, max_latency_samples),
    }
    overall = LatencyRecorder(sample_stride, max_latency_samples)
    timeline = LatencyTimeline(bucket_us=timeline_bucket_us)
    clock = db.clock
    start_time = clock.now()
    if chunk_size > 1:
        count = _run_chunked(
            db, operations, recorders, overall, timeline, chunk_size
        )
    else:
        count = _run_per_op(db, operations, recorders, overall, timeline)

    elapsed = clock.now() - start_time
    device_stats = db.device.stats
    snapshot = db.metrics()
    live = db.version.total_file_bytes()
    extra = db.policy.extra_space_bytes()
    write_recorder = _merge_recorders(recorders[OP_PUT], recorders[OP_DELETE])
    final_threshold = getattr(db.policy, "threshold", None)
    return RunResult(
        workload=workload_name,
        policy=db.policy.name,
        operations=count,
        elapsed_us=elapsed,
        latencies=overall,
        write_latencies=write_recorder,
        read_latencies=recorders[OP_GET],
        scan_latencies=recorders[OP_SCAN],
        timeline=timeline,
        compaction_read_bytes=device_stats.compaction_bytes_read,
        compaction_write_bytes=device_stats.compaction_bytes_written,
        total_read_bytes=device_stats.total_bytes_read,
        total_write_bytes=device_stats.total_bytes_written,
        user_bytes_written=db.engine_stats.user_bytes_written,
        write_amplification=db.write_amplification(),
        space_bytes=live + extra,
        live_bytes=live,
        extra_space_bytes=extra,
        flush_count=db.engine_stats.flush_count,
        compaction_count=db.engine_stats.compaction_count,
        link_count=db.engine_stats.link_count,
        merge_count=db.engine_stats.merge_count,
        trivial_moves=db.engine_stats.trivial_moves,
        stall_events=db.engine_stats.stall_events,
        sstable_blocks_read=db.engine_stats.sstable_blocks_read,
        bloom_negative_skips=db.engine_stats.bloom_negative_skips,
        activity_share=db.engine_stats.activity_share(),
        final_threshold=final_threshold if isinstance(final_threshold, int) else None,
        metrics=snapshot,
        stall_time_us=float(db.registry.counter("engine.stall_time_us")),
        device_wait_us=float(db.registry.counter("sched.device_wait_us")),
        device_write_amplification=snapshot.device_write_amplification,
        total_write_amplification=snapshot.total_write_amplification,
        gc_write_bytes=snapshot.gc_write_bytes,
        flash_bytes_programmed=snapshot.flash_bytes_programmed,
        blocks_erased=snapshot.blocks_erased,
        max_erase_count=snapshot.max_erase_count,
    )


def _run_per_op(
    db: DB,
    operations,
    recorders: Dict[str, LatencyRecorder],
    overall: LatencyRecorder,
    timeline: LatencyTimeline,
) -> int:
    """The reference measurement loop: one dispatch per operation."""
    clock = db.clock
    count = 0
    # Stall attribution: throttle time (both modes) plus device-channel
    # waits behind background chunks (scheduler only).  Counter reads
    # do not touch the clock, so the scheduler-off timing is unchanged.
    counter = db.registry.counter
    stall_total = counter("engine.stall_time_us") + counter("sched.device_wait_us")

    for operation in operations:
        begin = clock.now()
        if operation.kind == OP_PUT:
            db.put(operation.key, operation.value)
        elif operation.kind == OP_GET:
            db.get(operation.key)
        elif operation.kind == OP_SCAN:
            db.scan(operation.key, operation.scan_length)
        elif operation.kind == OP_DELETE:
            db.delete(operation.key)
        elif operation.kind == OP_RMW:
            current = db.get(operation.key)
            db.put(operation.key, operation.value or current or b"")
        else:
            raise WorkloadError(f"unknown operation kind {operation.kind!r}")
        latency = clock.now() - begin
        stalled = counter("engine.stall_time_us") + counter("sched.device_wait_us")
        recorders[operation.kind].record(latency)
        overall.record(latency)
        timeline.record(begin, latency, stall_us=stalled - stall_total)
        stall_total = stalled
        count += 1
    return count


def _run_chunked(
    db: DB,
    operations,
    recorders: Dict[str, LatencyRecorder],
    overall: LatencyRecorder,
    timeline: LatencyTimeline,
    chunk_size: int,
) -> int:
    """Chunked measurement loop: identical effects, amortised bookkeeping.

    Operations still execute strictly one at a time against the DB (the
    virtual clock, stall attribution and maintenance interleaving are
    per-op by contract), but per-op recorder calls are replaced by one
    ``record_many`` per recorder per chunk.  Within a chunk each
    recorder receives its latencies in the same order the per-op loop
    would have appended them, so the recorded state is bit-identical.
    """
    clock = db.clock
    db_put = db.put
    db_get = db.get
    db_scan = db.scan
    db_delete = db.delete
    # Stall counters are read twice per operation; go straight to the
    # registry's counter dict (registry.reset() mutates it in place, so
    # the reference stays valid for the DB's lifetime).
    counters_get = db.registry._counters.get
    timeline_record = timeline.record
    stall_total = counters_get("engine.stall_time_us", 0) + counters_get(
        "sched.device_wait_us", 0
    )
    count = 0
    stream = iter(operations)
    while True:
        chunk = list(islice(stream, chunk_size))
        if not chunk:
            break
        per_kind: Dict[str, List[float]] = {}
        overall_latencies: List[float] = []
        push_overall = overall_latencies.append
        events: List[tuple] = []
        push_event = events.append
        for operation in chunk:
            kind = operation[0]
            begin = clock._now_us
            if kind == OP_PUT:
                db_put(operation[1], operation[2])
            elif kind == OP_GET:
                db_get(operation[1])
            elif kind == OP_SCAN:
                db_scan(operation[1], operation[3])
            elif kind == OP_DELETE:
                db_delete(operation[1])
            elif kind == OP_RMW:
                current = db_get(operation[1])
                db_put(operation[1], operation[2] or current or b"")
            else:
                raise WorkloadError(f"unknown operation kind {kind!r}")
            latency = clock._now_us - begin
            stalled = counters_get("engine.stall_time_us", 0) + counters_get(
                "sched.device_wait_us", 0
            )
            bucket = per_kind.get(kind)
            if bucket is None:
                bucket = per_kind[kind] = []
            bucket.append(latency)
            push_overall(latency)
            push_event((begin, latency, stalled - stall_total))
            stall_total = stalled
        for kind, latencies in per_kind.items():
            recorders[kind].record_many(latencies)
        overall.record_many(overall_latencies)
        for begin, latency, stall in events:
            timeline_record(begin, latency, stall_us=stall)
        count += len(chunk)
    return count


def _merge_recorders(*recorders: LatencyRecorder) -> LatencyRecorder:
    merged = LatencyRecorder()
    for recorder in recorders:
        merged.merge_from(recorder)
    return merged
