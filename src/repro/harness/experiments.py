"""Per-figure experiment definitions.

One function per table/figure of the paper's evaluation (§IV), each
returning plain data structures the benchmarks print and compare against
the paper's reported numbers.  All experiments share the simulation-scale
defaults (`DEFAULT_OPS` operations over `DEFAULT_KEY_SPACE` keys, 16-B
keys / 1-KB values as in §IV-A) and accept overrides so tests can run tiny
versions and benches can run larger ones.

Every sweep is expressed as a list of :class:`GridTask` items executed by
:func:`run_grid`, which runs them serially by default or across worker
processes when requested (``repro <experiment> --workers N``).  Each grid
point is an independent simulation over its own virtual device, so results
are bit-identical regardless of worker count or scheduling; ``run_grid``
preserves task order in its result list.

The absolute numbers differ from the paper's (their testbed: C++ LevelDB,
800 GB PCIe SSD, 10–30 M requests; ours: a Python engine over a simulated
device at ~10^5 requests).  What must match — and what the benches assert —
is the *shape*: who wins, roughly by how much, and where optima sit.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .latency import PAPER_PERCENTILES
from .runner import RunResult, run_workload
from ..lsm.compaction.spec import (
    PolicySpec,
    SpecFactory,
    available_policies,
    get_spec,
)
from ..lsm.config import LSMConfig
from ..ssd.flash import DeviceConfig, FlashSpec
from ..ssd.profile import ENTERPRISE_PCIE, SSDProfile, get_profile
from ..workload import spec as workloads
from ..workload.spec import WorkloadSpec

DEFAULT_OPS = 60_000
DEFAULT_KEY_SPACE = 20_000

#: Scan length used by the SCN experiments.  The paper scans 100 records
#: (~100 KB) against 2 MB SSTables — 5% of a file.  Our simulation-scale
#: SSTables are 64 KB, so the equivalent scan is ~6 records (~6 KB, 9% of
#: a file); keeping the paper's literal 100 would make every scan span
#: multiple files per level, a geometry the paper's testbed never sees.
SCALED_SCAN_LENGTH = 6


def experiment_config(**overrides: object) -> LSMConfig:
    """The shared engine configuration for paper experiments."""
    return LSMConfig(**overrides)  # type: ignore[arg-type]


def udc_factory() -> object:
    return get_spec("udc").build()


def ldc_factory(
    threshold: Optional[int] = None, adaptive: Optional[bool] = None
) -> Callable[[], object]:
    """Picklable parameterised LDC factory built from the registered spec
    (closures cannot cross process boundaries, and grid tasks must)."""
    overrides = {}
    if threshold is not None:
        overrides["threshold"] = threshold
    if adaptive is not None:
        overrides["adaptive"] = adaptive
    spec = get_spec("ldc")
    if overrides:
        spec = spec.derive(**overrides)
    return SpecFactory(spec)


def tiered_factory() -> object:
    return get_spec("tiered").build()


def delayed_factory() -> object:
    return get_spec("delayed").build()


BOTH_POLICIES: Sequence[Tuple[str, Callable[[], object]]] = (
    ("UDC", udc_factory),
    ("LDC", ldc_factory()),
)


@dataclass
class ComparisonRow:
    """One (workload, policy) measurement used across the figures."""

    workload: str
    policy: str
    result: RunResult


@dataclass
class ExperimentOutput:
    """Generic experiment result: rows plus free-form derived metrics."""

    name: str
    rows: List[ComparisonRow] = field(default_factory=list)
    derived: Dict[str, float] = field(default_factory=dict)

    def result_for(self, workload: str, policy: str) -> RunResult:
        for row in self.rows:
            if row.workload == workload and row.policy == policy:
                return row.result
        raise KeyError(f"no row for ({workload!r}, {policy!r})")


# ----------------------------------------------------------------------
# The experiment grid: declarative points, serial or multi-process
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridTask:
    """One independent (workload, policy, config, device) simulation.

    Every field must be picklable — tasks and their RunResults cross
    process boundaries when the grid runs with workers.
    """

    label: str
    spec: WorkloadSpec
    policy: str
    factory: Callable[[], object]
    config: Optional[LSMConfig] = None
    profile: "SSDProfile | DeviceConfig" = ENTERPRISE_PCIE
    timeline_bucket_us: float = 1_000_000.0


def _run_grid_task(task: GridTask) -> RunResult:
    """Top-level worker entry point (must be importable for pickling)."""
    return run_workload(
        task.spec,
        task.factory,
        config=task.config,
        profile=task.profile,
        timeline_bucket_us=task.timeline_bucket_us,
    )


#: Process count used when ``run_grid`` is called without ``workers``.
#: ``None`` or 1 means serial in-process execution.
_default_workers: Optional[int] = None


def set_default_workers(workers: Optional[int]) -> None:
    """Set the grid-wide worker count (the CLI's ``--workers`` flag)."""
    global _default_workers
    if workers is not None and workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    _default_workers = workers


def default_workers() -> Optional[int]:
    """Current grid-wide worker count (None = serial)."""
    return _default_workers


def run_grid(
    tasks: Iterable[GridTask], workers: Optional[int] = None
) -> List[RunResult]:
    """Run every task and return results in task order.

    Serial when ``workers`` (or the module default) is None or 1;
    otherwise the tasks are fanned out over a ``ProcessPoolExecutor``.
    ``executor.map`` preserves input ordering, and each task simulates its
    own device and virtual clock, so the result list is identical —
    ordering and values — whatever the worker count.
    """
    task_list = list(tasks)
    if workers is None:
        workers = _default_workers
    if workers is None or workers <= 1 or len(task_list) <= 1:
        return [_run_grid_task(task) for task in task_list]
    with ProcessPoolExecutor(max_workers=min(workers, len(task_list))) as pool:
        return list(pool.map(_run_grid_task, task_list))


def _grid_output(name: str, tasks: Sequence[GridTask]) -> ExperimentOutput:
    """Run a grid and fold the results into labelled comparison rows."""
    results = run_grid(tasks)
    output = ExperimentOutput(name=name)
    for task, result in zip(tasks, results):
        output.rows.append(ComparisonRow(task.label, task.policy, result))
    return output


def _run_matrix(
    name: str,
    specs: Sequence[WorkloadSpec],
    policies: Sequence[Tuple[str, Callable[[], object]]] = BOTH_POLICIES,
    config: Optional[LSMConfig] = None,
    profile: SSDProfile = ENTERPRISE_PCIE,
) -> ExperimentOutput:
    tasks = [
        GridTask(spec_item.name, spec_item, policy_name, factory, config, profile)
        for spec_item in specs
        for policy_name, factory in policies
    ]
    return _grid_output(name, tasks)


def _paper_mixes(
    names: Sequence[str], ops: int, key_space: int, **overrides: object
) -> List[WorkloadSpec]:
    return [
        workloads.TABLE_III[name](
            num_operations=ops, key_space=key_space, **overrides
        )
        for name in names
    ]


# ----------------------------------------------------------------------
# Fig. 1 — latency fluctuation of the stock (UDC) store
# ----------------------------------------------------------------------
def fig01_latency_fluctuation(
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
    bucket_us: float = 500.0,
) -> Dict[str, object]:
    """Average latency per virtual-time bucket under a mixed workload.

    The paper mixes 10 M reads with 10 M writes on stock LevelDB and
    observes write-latency fluctuation up to 49.13x between buckets.  The
    paper buckets by wall-clock second; our virtual timescale is ~10^4x
    compressed (small files, few ops), so the default bucket is scaled
    down accordingly — what matters is that a bucket holds a handful of
    operations, the granularity at which compaction stalls are visible.
    """
    spec_item = workloads.rwb(num_operations=ops, key_space=key_space)
    result = run_workload(
        spec_item, udc_factory, config=experiment_config(), timeline_bucket_us=bucket_us
    )
    points = result.timeline.points()
    return {
        "points": points,
        "fluctuation_ratio": result.timeline.fluctuation_ratio(),
        "result": result,
    }


# ----------------------------------------------------------------------
# Fig. 1 (scheduled) — interference from true background compaction
# ----------------------------------------------------------------------
def fig01_scheduled_interference(
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
    bg_threads: int = 1,
    bucket_us: float = 500.0,
) -> Dict[str, object]:
    """UDC vs LDC latency spread with compaction truly in the background.

    The mechanism experiment behind the paper's Fig. 1 / Figs. 8–9 story:
    with the virtual-time scheduler on (``bg_threads`` background
    threads), compaction chunks share the device channel with foreground
    I/O instead of being charged inline to the triggering operation.
    UDC's upper-level-driven rounds capture large tasks that occupy the
    channel for long windows — writes landing behind them absorb the wait
    — while LDC's lower-level-driven link-and-merge steps produce small
    tasks and correspondingly small waits.  The headline derived metric
    is the write p99/p50 spread per policy; the acceptance claim is
    ``spread(UDC) > spread(LDC)`` *from mechanism*: scheduling, channel
    arbitration and L0 throttling, not per-operation accounting.
    """
    config = experiment_config(bg_threads=bg_threads)
    spec_item = workloads.rwb(num_operations=ops, key_space=key_space)
    tasks = [
        GridTask(
            "RWB", spec_item, policy_name, factory, config,
            timeline_bucket_us=bucket_us,
        )
        for policy_name, factory in BOTH_POLICIES
    ]
    results = run_grid(tasks)
    by_policy: Dict[str, RunResult] = {}
    spreads: Dict[str, float] = {}
    for task, result in zip(tasks, results):
        writes = result.write_latencies
        spreads[task.policy] = writes.percentile(99.0) / writes.percentile(50.0)
        by_policy[task.policy] = result
    return {
        "results": by_policy,
        "p99_p50_spread": spreads,
        "stall_time_us": {
            policy: result.stall_time_us for policy, result in by_policy.items()
        },
        "device_wait_us": {
            policy: result.device_wait_us for policy, result in by_policy.items()
        },
        "points": {
            policy: result.timeline.points()
            for policy, result in by_policy.items()
        },
        "bg_threads": bg_threads,
    }


# ----------------------------------------------------------------------
# Fig. 1 (open loop) — queueing-inflated tails and SLO violations
# ----------------------------------------------------------------------
def fig01_open_loop(
    ops: int = 12_000,
    key_space: int = 4_000,
    queue_depth: int = 128,
    slo_us: float = 1_000.0,
    arrival: str = "poisson",
    seed: int = 7,
    bg_threads: int = 0,
    load_fractions: Sequence[float] = (0.25, 0.4, 0.6, 1.0),
    headline_fraction: float = 0.6,
    knee_slo_rate: float = 0.05,
    num_tenants: int = 1,
) -> Dict[str, object]:
    """UDC vs LDC under open-loop load: the client's view of Fig. 1.

    The closed-loop experiments measure *service time*; a client of the
    store measures queue wait **plus** service.  This experiment drives
    both policies from the same deterministic arrival sequence at offered
    loads expressed as fractions of UDC's *closed-loop capacity* (its
    saturation throughput), and reports queue-inflated percentiles and
    SLO-violation rates per load.

    The mechanism: with inline compaction accounting (``bg_threads=0``,
    the stock-LevelDB setting of the paper's Fig. 1), UDC charges a whole
    upper-level-driven compaction round to the single write that
    triggered it — a multi-millisecond service spike.  Every request
    arriving during that spike queues behind it, so the spike is
    *multiplied* by the arrival rate into a burst of SLO violations.
    LDC's lower-level-driven link step is metadata-cheap and its merges
    are smaller, so its service spikes — and therefore its queueing
    bursts — are far shorter.  The headline claim, asserted by the CI
    serve-smoke job: at the headline load (above UDC's knee, the lowest
    tested load where UDC's violation rate exceeds ``knee_slo_rate``),
    UDC's queue-inflated p99.9 *and* SLO-violation rate are strictly
    worse than LDC's.
    """
    from ..serve import ServeSpec, serve_workload

    config = experiment_config(bg_threads=bg_threads)
    spec_item = workloads.rwb(num_operations=ops, key_space=key_space)

    capacities: Dict[str, float] = {}
    for policy_name, factory in BOTH_POLICIES:
        closed = run_workload(spec_item, factory, config=config)
        capacities[policy_name] = closed.throughput_ops_s
    base_rate = capacities["UDC"]

    curves: Dict[str, List[Dict[str, float]]] = {"UDC": [], "LDC": []}
    for fraction in load_fractions:
        rate = base_rate * fraction
        for policy_name, factory in BOTH_POLICIES:
            serve_spec = ServeSpec(
                arrival=arrival,
                rate_ops_s=rate,
                num_tenants=num_tenants,
                queue_depth=queue_depth,
                slo_us=slo_us,
                seed=seed,
            )
            result = serve_workload(
                spec_item, factory, serve_spec, config=config
            )
            curves[policy_name].append(
                {
                    "load_fraction": fraction,
                    "offered_rate_ops_s": rate,
                    "throughput_ops_s": result.throughput_ops_s,
                    "mean_wait_us": result.mean_wait_us(),
                    "p50_us": result.total_latencies.percentile(50.0),
                    "p99_us": result.total_latencies.percentile(99.0),
                    "p999_us": result.total_latencies.percentile(99.9),
                    "slo_violation_rate": result.slo_violation_rate,
                    "rejection_rate": result.rejection_rate,
                    "rejected": float(result.rejected),
                }
            )

    knee_fraction: Optional[float] = None
    for row in curves["UDC"]:
        if row["slo_violation_rate"] > knee_slo_rate:
            knee_fraction = row["load_fraction"]
            break

    headline_index = min(
        range(len(load_fractions)),
        key=lambda i: abs(load_fractions[i] - headline_fraction),
    )
    udc_row = curves["UDC"][headline_index]
    ldc_row = curves["LDC"][headline_index]
    return {
        "curves": curves,
        "capacities": capacities,
        "base_rate_ops_s": base_rate,
        "load_fractions": tuple(load_fractions),
        "knee_fraction": knee_fraction,
        "headline": {
            "load_fraction": load_fractions[headline_index],
            "offered_rate_ops_s": udc_row["offered_rate_ops_s"],
            "above_knee": (
                knee_fraction is not None
                and load_fractions[headline_index] >= knee_fraction
            ),
            "udc_p999_us": udc_row["p999_us"],
            "ldc_p999_us": ldc_row["p999_us"],
            "udc_slo_violation_rate": udc_row["slo_violation_rate"],
            "ldc_slo_violation_rate": ldc_row["slo_violation_rate"],
            "udc_worse_p999": udc_row["p999_us"] > ldc_row["p999_us"],
            "udc_worse_slo": (
                udc_row["slo_violation_rate"] > ldc_row["slo_violation_rate"]
            ),
        },
        "slo_us": slo_us,
        "queue_depth": queue_depth,
        "arrival": arrival,
        "bg_threads": bg_threads,
    }


# ----------------------------------------------------------------------
# Table I — where the time goes (compaction dominates)
# ----------------------------------------------------------------------
def tab1_time_breakdown(
    ops: int = DEFAULT_OPS, key_space: int = DEFAULT_KEY_SPACE
) -> Dict[str, float]:
    """Virtual-time share per engine activity under pure insertion.

    Paper (perf on LevelDB, 10 M inserts): DoCompactionWork 61.4%,
    file system 20.9%, DoWrite 8.04%, others 9.66%.  Our analogue maps
    compaction -> DoCompactionWork, flush+wal -> file system,
    write -> DoWrite.
    """
    spec_item = workloads.wo(num_operations=ops, key_space=key_space)
    result = run_workload(spec_item, udc_factory, config=experiment_config())
    share = result.activity_share
    return {
        "DoCompactionWork": share.get("compaction", 0.0),
        "file system": share.get("flush", 0.0) + share.get("wal", 0.0),
        "DoWrite": share.get("write", 0.0),
        "Others": share.get("read", 0.0) + share.get("scan", 0.0),
    }


# ----------------------------------------------------------------------
# Fig. 7 — tuning UDC's fan-out alone does not work
# ----------------------------------------------------------------------
def fig07_fanout_udc(
    fan_outs: Sequence[int] = (3, 5, 10, 25, 50, 100),
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
) -> ExperimentOutput:
    """UDC write amplification and throughput across fan-outs (RWB)."""
    spec_item = workloads.rwb(num_operations=ops, key_space=key_space)
    tasks = [
        GridTask(
            f"fanout={fan_out}",
            spec_item,
            "UDC",
            udc_factory,
            experiment_config(fan_out=fan_out),
        )
        for fan_out in fan_outs
    ]
    return _grid_output("fig07", tasks)


# ----------------------------------------------------------------------
# Fig. 8 — tail latency percentiles, UDC vs LDC
# ----------------------------------------------------------------------
def fig08_tail_latency(
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
    percentiles: Sequence[float] = PAPER_PERCENTILES,
) -> Dict[str, Dict[float, float]]:
    """P90–P99.99 latencies for both policies on a 50/50 mix.

    Paper: P99.9 improves from 469.66 µs to 179.53 µs (2.62x) and P99.99
    from 2688.23 µs to 1305.96 µs.
    """
    spec_item = workloads.rwb(num_operations=ops, key_space=key_space)
    tasks = [
        GridTask(spec_item.name, spec_item, policy_name, factory, experiment_config())
        for policy_name, factory in BOTH_POLICIES
    ]
    results = run_grid(tasks)
    return {
        task.policy: result.latencies.percentiles(percentiles)
        for task, result in zip(tasks, results)
    }


# ----------------------------------------------------------------------
# Fig. 9 — average latency by workload
# ----------------------------------------------------------------------
def fig09_avg_latency(
    ops: int = DEFAULT_OPS, key_space: int = DEFAULT_KEY_SPACE
) -> ExperimentOutput:
    """Average latency of WH / RWB / RH for both policies.

    Paper: LDC's average latency drops to 43.3% (WH) and 45.6% (RWB) of
    UDC's; RH is comparable.
    """
    specs = _paper_mixes(("WH", "RWB", "RH"), ops, key_space)
    return _run_matrix("fig09", specs, config=experiment_config())


# ----------------------------------------------------------------------
# Fig. 10a/b — throughput; Fig. 10c — compaction I/O
# ----------------------------------------------------------------------
def fig10a_throughput_get(
    ops: int = DEFAULT_OPS, key_space: int = DEFAULT_KEY_SPACE
) -> ExperimentOutput:
    """Total throughput for WO/WH/RWB/RH/RO (paper: +78.0/+73.7/+80.2/+16/~0%)."""
    specs = _paper_mixes(("WO", "WH", "RWB", "RH", "RO"), ops, key_space)
    return _run_matrix("fig10a", specs, config=experiment_config())


def fig10b_throughput_scan(
    ops: Optional[int] = None, key_space: int = DEFAULT_KEY_SPACE
) -> ExperimentOutput:
    """Throughput for SCN-WH/RWB/RH (paper: +86.2/+81.1/+49.1%).

    Scans are ~100x heavier than point ops, so the default op count is
    reduced to keep wall-clock time in check.
    """
    if ops is None:
        ops = DEFAULT_OPS // 3
    specs = _paper_mixes(
        ("SCN-WH", "SCN-RWB", "SCN-RH"),
        ops,
        key_space,
        scan_length=SCALED_SCAN_LENGTH,
    )
    return _run_matrix("fig10b", specs, config=experiment_config())


def fig10c_compaction_io(
    ops: int = DEFAULT_OPS, key_space: int = DEFAULT_KEY_SPACE
) -> ExperimentOutput:
    """Compaction read/write bytes per workload (paper: LDC ~halves both)."""
    specs = _paper_mixes(("WO", "WH", "RWB", "RH"), ops, key_space)
    specs.append(
        workloads.scn_rwb(
            num_operations=max(1, ops // 3),
            key_space=key_space,
            scan_length=SCALED_SCAN_LENGTH,
        )
    )
    return _run_matrix("fig10c", specs, config=experiment_config())


# ----------------------------------------------------------------------
# Fig. 11 — uniform vs Zipf distributions
# ----------------------------------------------------------------------
def fig11_zipf(
    zipf_constants: Sequence[float] = (1.0, 2.0, 5.0),
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
) -> ExperimentOutput:
    """RWB throughput under uniform and Zipf key choice.

    Paper: both policies speed up as skew rises; LDC's edge grows from
    38.7% (uniform) to 67.3% (Zipf-5).
    """
    specs = [workloads.rwb(num_operations=ops, key_space=key_space)]
    for constant in zipf_constants:
        specs.append(
            workloads.rwb(
                num_operations=ops,
                key_space=key_space,
                distribution="zipf",
                zipf_constant=constant,
            ).with_overrides(name=f"Zipf{constant:g}")
        )
    return _run_matrix("fig11", specs, config=experiment_config())


# ----------------------------------------------------------------------
# Fig. 12a/d — SliceLink threshold sweep
# ----------------------------------------------------------------------
def fig12ad_slicelink_threshold(
    thresholds: Sequence[int] = (2, 5, 10, 20, 40),
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
) -> ExperimentOutput:
    """LDC throughput and compaction I/O across T_s (paper optimum: fan-out)."""
    spec_item = workloads.rwb(num_operations=ops, key_space=key_space)
    tasks = [
        GridTask(
            f"T_s={threshold}",
            spec_item,
            "LDC",
            ldc_factory(threshold=threshold),
            experiment_config(),
        )
        for threshold in thresholds
    ]
    tasks.append(
        GridTask("reference", spec_item, "UDC", udc_factory, experiment_config())
    )
    return _grid_output("fig12ad", tasks)


# ----------------------------------------------------------------------
# Fig. 12b/e — fan-out sweep for both policies
# ----------------------------------------------------------------------
def fig12be_fanout_sweep(
    fan_outs: Sequence[int] = (3, 5, 10, 25, 50, 100),
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
) -> ExperimentOutput:
    """Throughput / compaction I/O vs fan-out (paper: LDC wins 8.8–187.9%,
    UDC optimum ~3, LDC optimum ~25)."""
    spec_item = workloads.rwb(num_operations=ops, key_space=key_space)
    tasks = [
        GridTask(
            f"fanout={fan_out}",
            spec_item,
            policy_name,
            factory,
            experiment_config(fan_out=fan_out),
        )
        for fan_out in fan_outs
        for policy_name, factory in BOTH_POLICIES
    ]
    return _grid_output("fig12be", tasks)


# ----------------------------------------------------------------------
# Fig. 12c/f — Bloom filter size sweep (RWB)
# ----------------------------------------------------------------------
def fig12cf_bloom_rwb(
    bits_per_key: Sequence[int] = (10, 50, 100, 200),
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
) -> ExperimentOutput:
    """RWB performance across Bloom sizes (paper: flat from 10 bits/key up)."""
    spec_item = workloads.rwb(num_operations=ops, key_space=key_space)
    tasks = [
        GridTask(
            f"bits={bits}",
            spec_item,
            policy_name,
            factory,
            experiment_config(bloom_bits_per_key=bits),
        )
        for bits in bits_per_key
        for policy_name, factory in BOTH_POLICIES
    ]
    return _grid_output("fig12cf", tasks)


# ----------------------------------------------------------------------
# Fig. 13 — Bloom filters under a read-only workload
# ----------------------------------------------------------------------
def fig13_bloom_ro(
    bits_per_key: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
) -> Dict[int, Dict[str, float]]:
    """Data-block reads and filter size vs bits/key on a read-only store.

    Paper: block reads stop improving past ~16 bits/key; a 2-MB SSTable's
    filter is ~11.3 KB at 8 bits/key, growing to 67.3 KB at 128.
    """
    spec_item = workloads.ro(num_operations=ops, key_space=key_space)
    tasks = [
        GridTask(
            f"bits={bits}",
            spec_item,
            "LDC",
            ldc_factory(),
            experiment_config(bloom_bits_per_key=bits),
        )
        for bits in bits_per_key
    ]
    results = run_grid(tasks)
    out: Dict[int, Dict[str, float]] = {}
    for bits, task, result in zip(bits_per_key, tasks, results):
        out[bits] = {
            "block_reads": float(result.sstable_blocks_read),
            "bloom_skips": float(result.bloom_negative_skips),
            "reads": float(ops),
            "filter_bytes_per_table": _mean_filter_bytes(task.config, key_space),
        }
    return out


def _mean_filter_bytes(config: LSMConfig, key_space: int) -> float:
    """Expected Bloom size for one full SSTable under this config."""
    record_bytes = 16 + workloads.PAPER_VALUE_BYTES + 13
    keys_per_table = max(1, config.sstable_target_bytes // record_bytes)
    return keys_per_table * config.bloom_bits_per_key / 8.0


# ----------------------------------------------------------------------
# Fig. 14 — scalability in request count
# ----------------------------------------------------------------------
def fig14_scalability(
    request_counts: Sequence[int] = (20_000, 40_000, 80_000, 120_000),
    key_space_ratio: float = 0.33,
) -> ExperimentOutput:
    """RWB at growing request counts (paper: 5–30 M; LDC holds +39–65%
    throughput and -43–47% compaction I/O throughout)."""
    return _grid_output("fig14", _scaling_tasks(request_counts, key_space_ratio))


# ----------------------------------------------------------------------
# Fig. 15 — space efficiency
# ----------------------------------------------------------------------
def fig15_space(
    request_counts: Sequence[int] = (20_000, 40_000, 80_000, 120_000),
    key_space_ratio: float = 0.33,
) -> ExperimentOutput:
    """Final store size, UDC vs LDC (paper: LDC +3.37–10.0%, avg 6.78%).

    Our simulated trees are shallower than the paper's 10 GB store, so the
    frozen-region share is larger; the bench reports overhead alongside the
    bottom-level share to make the geometry dependence visible.
    """
    return _grid_output("fig15", _scaling_tasks(request_counts, key_space_ratio))


def _scaling_tasks(
    request_counts: Sequence[int], key_space_ratio: float
) -> List[GridTask]:
    """The shared grid of Figs. 14/15: RWB at growing request counts."""
    tasks = []
    for count in request_counts:
        key_space = max(1000, int(count * key_space_ratio))
        spec_item = workloads.rwb(num_operations=count, key_space=key_space)
        for policy_name, factory in BOTH_POLICIES:
            tasks.append(
                GridTask(
                    f"N={count}", spec_item, policy_name, factory,
                    experiment_config(),
                )
            )
    return tasks


# ----------------------------------------------------------------------
# Shard scaling (repro.shard — beyond the paper's single-store scope)
# ----------------------------------------------------------------------
def shard_scaling(
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
    workers: Optional[int] = None,
    partitioner: str = "hash",
) -> Dict[int, Dict[str, float]]:
    """RWB across shard counts: how partitioning changes the work itself.

    Two effects stack as shards grow: per-shard trees are smaller (fewer
    levels, less compaction work — write amplification falls), and the
    shard tasks execute on independent workers (wall-clock parallelism,
    bounded by the host's cores).  Virtual-time metrics are deterministic
    and worker-count-independent; ``wall_s`` is the only host-dependent
    column.
    """
    # Local import: experiments is imported during ``repro.harness`` init,
    # which repro.shard.runner itself imports — a module-level import here
    # would close that cycle.
    from ..shard.runner import run_sharded_workload

    if workers is None:
        workers = _default_workers or 1
    spec_item = workloads.rwb(num_operations=ops, key_space=key_space)
    out: Dict[int, Dict[str, float]] = {}
    for count in shard_counts:
        report = run_sharded_workload(
            spec_item,
            udc_factory,
            num_shards=count,
            partitioner=partitioner,
            workers=workers,
            config=experiment_config(),
        )
        out[count] = {
            "throughput_ops_s": report.throughput_ops_s,
            "write_amplification": report.write_amplification,
            "compaction_mib": report.metrics.compaction_bytes_total / 2**20,
            "p999_us": report.latencies.percentile(99.9),
            "wall_s": report.wall_s,
        }
    return out


# ----------------------------------------------------------------------
# Ablations (beyond the paper's figures)
# ----------------------------------------------------------------------
def ablation_adaptive_threshold(
    ops: int = DEFAULT_OPS, key_space: int = DEFAULT_KEY_SPACE
) -> ExperimentOutput:
    """Fixed vs self-adaptive T_s across read/write mixes (§III-B.4)."""
    tasks = [
        GridTask(
            mix_name,
            workloads.TABLE_III[mix_name](num_operations=ops, key_space=key_space),
            label,
            factory,
            experiment_config(),
        )
        for mix_name in ("WH", "RWB", "RH")
        for label, factory in (
            ("LDC-fixed", ldc_factory(adaptive=False)),
            ("LDC-adaptive", ldc_factory(adaptive=True)),
        )
    ]
    return _grid_output("ablation_adaptive", tasks)


def ablation_tiered_tail(
    ops: int = DEFAULT_OPS, key_space: int = DEFAULT_KEY_SPACE
) -> ExperimentOutput:
    """Measure the lazy baselines' tail latency (excluded from the paper's
    Fig. 8 because lazy schemes 'introduce much larger tail latency').

    Covers both lazy flavours the paper names: size-tiered (Cassandra /
    RocksDB-universal style) and delayed batching (dCompaction style).
    """
    spec_item = workloads.rwb(num_operations=ops, key_space=key_space)
    policies = (
        ("UDC", udc_factory),
        ("LDC", ldc_factory()),
        ("Tiered", tiered_factory),
        ("Delayed", delayed_factory),
    )
    return _run_matrix("ablation_tiered", [spec_item], policies, experiment_config())


def ablation_device_asymmetry(
    write_bandwidths: Sequence[float] = (100.0, 250.0, 1000.0, 2000.0),
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
) -> ExperimentOutput:
    """LDC's edge vs the device's read/write asymmetry (§I motivation).

    LDC trades reads for writes; on a symmetric device (write bandwidth ==
    read bandwidth) the trade buys less.
    """
    spec_item = workloads.rwb(num_operations=ops, key_space=key_space)
    tasks = [
        GridTask(
            f"w_bw={bandwidth:g}MB/s",
            spec_item,
            policy_name,
            factory,
            experiment_config(),
            ENTERPRISE_PCIE.scaled(write_bandwidth_mbps=bandwidth),
        )
        for bandwidth in write_bandwidths
        for policy_name, factory in BOTH_POLICIES
    ]
    return _grid_output("ablation_asymmetry", tasks)


# ----------------------------------------------------------------------
# Device WA — host, device (FTL/GC) and end-to-end write amplification
# ----------------------------------------------------------------------
#: Capacity margin used when ``fig_device_wa`` sizes its flash device:
#: ``logical_bytes = margin x`` the flash-off probe's final store size.
#: The probe runs UDC, the *smallest*-footprint policy at steady state
#: (LDC holds frozen slices beside the tree, tiered holds overlapping
#: runs), so the margin must leave every policy enough free-page slack
#: that device WA reflects its write pattern rather than raw capacity
#: starvation.  2x starves LDC (its footprint is ~1.7x UDC's here) and
#: inverts the paper's ordering; 2.5x restores it; 3x holds it with
#: comfortable headroom while still exercising GC relocation.
DEVICE_WA_SIZE_MARGIN = 3.0


def fig_device_wa(
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
    over_provisioning: float = 0.07,
    gc_policy: str = "greedy",
    size_margin: float = DEVICE_WA_SIZE_MARGIN,
    policies: Optional[Sequence[str]] = None,
    workload: str = "RWB",
) -> Dict[str, object]:
    """End-to-end write amplification per policy over the flash device.

    The paper's lifetime argument (§I, §IV-F) is about *total* writes the
    flash medium absorbs: host WA (engine writes / user writes) times
    device WA (pages the FTL programs / host writes, GC relocation
    included).  This experiment makes that product measurable:

    1. probe the workload flash-off under UDC to learn the store's
       steady-state footprint, and size a :class:`~repro.ssd.flash.
       FlashSpec` at ``size_margin x`` that footprint with the given
       over-provisioning;
    2. run every registered policy (or ``policies``) on that *same*
       device spec — same geometry, same OP, same GC policy — so the
       only variable is the compaction policy's write pattern;
    3. report host / device / total WA plus the GC and wear counters.

    Returns a dict with one row per policy and the derived winner by
    total WA.  The acceptance claim mirrors the paper: LDC's total WA
    beats UDC's at default over-provisioning, because its host-WA saving
    (fewer compaction rewrites) dominates the extra GC pressure from its
    frozen-region footprint.
    """
    spec_item = workloads.TABLE_III[workload](
        num_operations=ops, key_space=key_space
    )
    config = experiment_config()
    probe = run_workload(spec_item, udc_factory, config=config)
    logical_bytes = max(int(probe.space_bytes * size_margin), 1 << 20)
    flash = FlashSpec(
        logical_bytes=logical_bytes,
        over_provisioning=over_provisioning,
        gc_policy=gc_policy,
    )
    device = DeviceConfig(flash=flash)
    if policies is None:
        policies = list(available_policies())
    tasks = [
        GridTask(
            name,
            spec_item,
            name,
            SpecFactory(get_spec(name)),
            config,
            device,
        )
        for name in policies
    ]
    results = run_grid(tasks)
    rows: Dict[str, Dict[str, float]] = {}
    for task, result in zip(tasks, results):
        rows[task.policy] = {
            "host_wa": result.write_amplification,
            "device_wa": result.device_write_amplification,
            "total_wa": result.total_write_amplification,
            "gc_write_mib": result.gc_write_bytes / 2**20,
            "flash_programmed_mib": result.flash_bytes_programmed / 2**20,
            "blocks_erased": float(result.blocks_erased),
            "max_erase_count": float(result.max_erase_count),
            "throughput_ops_s": result.throughput_ops_s,
        }
    winner = min(rows, key=lambda name: rows[name]["total_wa"])
    return {
        "rows": rows,
        "winner_total_wa": winner,
        "flash": flash,
        "logical_bytes": logical_bytes,
        "probe_space_bytes": probe.space_bytes,
        "workload": spec_item.name,
        "ops": ops,
        "key_space": key_space,
    }


def format_device_wa_report(report: Dict[str, object]) -> str:
    """Render a ``fig_device_wa`` report as an aligned text table."""
    rows: Dict[str, Dict[str, float]] = report["rows"]  # type: ignore[assignment]
    flash: FlashSpec = report["flash"]  # type: ignore[assignment]
    lines = [
        f"Device write amplification — {report['workload']} "
        f"({report['ops']} ops over {report['key_space']} keys)",
        f"flash: {flash.logical_bytes / 2**20:.1f} MiB logical, "
        f"OP={flash.over_provisioning:.0%}, gc={flash.gc_policy}, "
        f"{flash.total_blocks} blocks x {flash.pages_per_block} pages "
        f"x {flash.page_bytes} B",
        "",
        f"{'policy':<16} {'host WA':>8} {'dev WA':>8} {'total WA':>9} "
        f"{'GC MiB':>8} {'erases':>7} {'max PE':>7}",
    ]
    for name, row in sorted(rows.items(), key=lambda kv: kv[1]["total_wa"]):
        lines.append(
            f"{name:<16} {row['host_wa']:>8.3f} {row['device_wa']:>8.3f} "
            f"{row['total_wa']:>9.3f} {row['gc_write_mib']:>8.2f} "
            f"{row['blocks_erased']:>7.0f} {row['max_erase_count']:>7.0f}"
        )
    lines.append("")
    lines.append(f"lowest total WA: {report['winner_total_wa']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Design-space explorer (`repro explore`) — spec x workload x device
# ----------------------------------------------------------------------
#: Default grid swept by ``repro explore``: every registered policy over
#: the paper's central mixes on the enterprise PCIe device.
DESIGN_SPACE_MIXES: Tuple[str, ...] = ("WO", "RWB", "RH")
DESIGN_SPACE_PROFILES: Tuple[str, ...] = ("enterprise-pcie",)


@dataclass(frozen=True)
class DesignPoint:
    """One (policy, workload, device) cell of the explorer grid."""

    policy: str
    workload: str
    profile: str
    throughput_ops_s: float
    p99_us: float
    p999_us: float
    write_amplification: float
    read_amplification: float
    compaction_mib: float
    space_mib: float
    stall_time_us: float
    #: FTL-level columns; identity values when the sweep ran flash-off.
    device_write_amplification: float = 1.0
    total_write_amplification: float = 0.0


def read_amplification(result: RunResult) -> float:
    """Device bytes read per user-requested byte (reads + scans).

    Mirrors ``RunResult.write_amplification``: total device read traffic
    (user reads, compaction reads, WAL recovery, ...) over the bytes the
    user actually asked for.  Zero when the workload never read.
    """
    counters = result.metrics.counters if result.metrics is not None else {}
    user = counters.get("device.read.user_read.bytes", 0) + counters.get(
        "device.read.user_scan.bytes", 0
    )
    if user <= 0:
        return 0.0
    return result.total_read_bytes / user


def design_space(
    policies: Optional[Sequence[object]] = None,
    mixes: Sequence[str] = DESIGN_SPACE_MIXES,
    profiles: Sequence[str] = DESIGN_SPACE_PROFILES,
    ops: int = DEFAULT_OPS,
    key_space: int = DEFAULT_KEY_SPACE,
    config: Optional[LSMConfig] = None,
    flash: Optional[FlashSpec] = None,
) -> Dict[str, object]:
    """Sweep policy spec x workload mix x device profile through the grid.

    ``policies`` may mix registered names and :class:`PolicySpec`
    instances; the default sweeps every policy in the registry.  Each
    cell is one independent :class:`GridTask` (so ``--workers`` fans the
    sweep out bit-identically).  Returns the comparison report behind
    ``repro explore``: one :class:`DesignPoint` per cell plus the
    per-(workload, device) winners on WA / RA / p99 / throughput.

    Passing ``flash`` mounts the same :class:`~repro.ssd.flash.FlashSpec`
    under every profile in the sweep; the points gain live device/total
    WA columns and the winner table a ``total_wa`` row.
    """
    if policies is None:
        policy_specs = [get_spec(name) for name in available_policies()]
    else:
        policy_specs = [
            item if isinstance(item, PolicySpec) else get_spec(str(item))
            for item in policies
        ]
    engine_config = config if config is not None else experiment_config()
    spec_items = _paper_mixes(mixes, ops, key_space)

    def _device(profile_name: str) -> "SSDProfile | DeviceConfig":
        profile = get_profile(profile_name)
        if flash is None:
            return profile
        return DeviceConfig(profile=profile, flash=flash)

    tasks = [
        GridTask(
            f"{pspec.name}/{spec_item.name}/{profile_name}",
            spec_item,
            pspec.name,
            SpecFactory(pspec),
            engine_config,
            _device(profile_name),
        )
        for profile_name in profiles
        for spec_item in spec_items
        for pspec in policy_specs
    ]
    results = run_grid(tasks)
    points = [
        DesignPoint(
            policy=task.policy,
            workload=task.spec.name,
            profile=task.profile.name,
            throughput_ops_s=result.throughput_ops_s,
            p99_us=result.latencies.percentile(99.0),
            p999_us=result.latencies.percentile(99.9),
            write_amplification=result.write_amplification,
            read_amplification=read_amplification(result),
            compaction_mib=result.compaction_bytes_total / 2**20,
            space_mib=result.space_bytes / 2**20,
            stall_time_us=result.stall_time_us,
            device_write_amplification=result.device_write_amplification,
            total_write_amplification=result.total_write_amplification,
        )
        for task, result in zip(tasks, results)
    ]
    winners: Dict[str, Dict[str, str]] = {}
    for workload, profile_name in sorted({(p.workload, p.profile) for p in points}):
        cell = [
            p for p in points if p.workload == workload and p.profile == profile_name
        ]
        best = {
            "write_amplification": min(
                cell, key=lambda p: p.write_amplification
            ).policy,
            "read_amplification": min(cell, key=lambda p: p.read_amplification).policy,
            "p99_us": min(cell, key=lambda p: p.p99_us).policy,
            "throughput_ops_s": max(cell, key=lambda p: p.throughput_ops_s).policy,
        }
        if flash is not None:
            best["total_write_amplification"] = min(
                cell, key=lambda p: p.total_write_amplification
            ).policy
        winners[f"{workload}@{profile_name}"] = best
    return {
        "points": points,
        "winners": winners,
        "policies": [spec.name for spec in policy_specs],
        "mixes": list(mixes),
        "profiles": list(profiles),
        "ops": ops,
        "key_space": key_space,
        "flash": flash,
    }


def format_design_report(report: Dict[str, object]) -> str:
    """Render a ``design_space`` report as the committed markdown table."""
    points: Sequence[DesignPoint] = report["points"]  # type: ignore[assignment]
    winners: Dict[str, Dict[str, str]] = report["winners"]  # type: ignore[assignment]
    flash = report.get("flash")
    lines = [
        "# Compaction design-space exploration",
        "",
        f"Grid: {len(report['policies'])} policies x "  # type: ignore[arg-type]
        f"{len(report['mixes'])} workloads x "  # type: ignore[arg-type]
        f"{len(report['profiles'])} devices "  # type: ignore[arg-type]
        f"({report['ops']} ops over {report['key_space']} keys per cell).",
        "",
        f"Policies: {', '.join(report['policies'])}.",  # type: ignore[arg-type]
    ]
    if flash is not None:
        lines += [
            "",
            f"Flash layer: {flash.logical_bytes / 2**20:.1f} MiB logical, "
            f"OP={flash.over_provisioning:.0%}, gc={flash.gc_policy}.",
        ]
    flash_cols = " dev WA | total WA |" if flash is not None else ""
    flash_seps = "---:|---:|" if flash is not None else ""
    lines += [
        "",
        "| policy | workload | device | ops/s | p99 (us) | WA | RA "
        f"| compaction (MiB) | space (MiB) |{flash_cols}",
        f"|---|---|---|---:|---:|---:|---:|---:|---:|{flash_seps}",
    ]
    for p in points:
        row = (
            f"| {p.policy} | {p.workload} | {p.profile} "
            f"| {p.throughput_ops_s:.0f} | {p.p99_us:.1f} "
            f"| {p.write_amplification:.2f} | {p.read_amplification:.2f} "
            f"| {p.compaction_mib:.2f} | {p.space_mib:.2f} |"
        )
        if flash is not None:
            row += (
                f" {p.device_write_amplification:.3f} "
                f"| {p.total_write_amplification:.2f} |"
            )
        lines.append(row)
    winner_flash_col = " lowest total WA |" if flash is not None else ""
    winner_flash_sep = "---|" if flash is not None else ""
    lines += [
        "",
        "## Winners per (workload, device)",
        "",
        f"| cell | lowest WA | lowest RA | lowest p99 | highest ops/s |"
        f"{winner_flash_col}",
        f"|---|---|---|---|---|{winner_flash_sep}",
    ]
    for cell, best in winners.items():
        row = (
            f"| {cell} | {best['write_amplification']} "
            f"| {best['read_amplification']} | {best['p99_us']} "
            f"| {best['throughput_ops_s']} |"
        )
        if flash is not None:
            row += f" {best['total_write_amplification']} |"
        lines.append(row)
    lines.append("")
    return "\n".join(lines)
