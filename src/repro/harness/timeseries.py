"""Periodic engine-state sampling during a run.

Some phenomena are invisible in end-of-run aggregates: the frozen region
breathing as links accumulate and merges recycle files, Level-0 filling
and draining around flush bursts, level sizes converging toward the
capacity schedule.  :class:`StateSampler` snapshots the engine every N
operations so benches and examples can show these dynamics over virtual
time (e.g. the frozen-region dynamics ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..lsm.db import DB


@dataclass(frozen=True)
class StateSample:
    """One snapshot of engine state."""

    op_index: int
    virtual_time_us: float
    level_files: tuple
    level_bytes: tuple
    frozen_bytes: int
    frozen_files: int
    linked_tables: int
    memtable_bytes: int
    total_space_bytes: int


class StateSampler:
    """Collects :class:`StateSample` snapshots every ``every_ops`` calls."""

    def __init__(self, db: DB, every_ops: int = 1000) -> None:
        if every_ops <= 0:
            raise ValueError("every_ops must be positive")
        self._db = db
        self._every = every_ops
        self._op_count = 0
        self.samples: List[StateSample] = []

    def tick(self) -> None:
        """Note one completed operation; snapshot at the sampling period."""
        self._op_count += 1
        if self._op_count % self._every == 0:
            self.samples.append(self.snapshot())

    def snapshot(self) -> StateSample:
        """Capture the engine's current structural state."""
        db = self._db
        version = db.version
        frozen_bytes = 0
        frozen_files = 0
        linked_tables = 0
        region = getattr(db.policy, "frozen", None)
        if region is not None:
            frozen_bytes = region.space_bytes
            frozen_files = len(region)
        for table in version.all_tables():
            if table.slice_links:
                linked_tables += 1
        return StateSample(
            op_index=self._op_count,
            virtual_time_us=db.clock.now(),
            level_files=tuple(len(files) for files in version.levels),
            level_bytes=tuple(
                version.level_data_size(level) for level in range(version.num_levels)
            ),
            frozen_bytes=frozen_bytes,
            frozen_files=frozen_files,
            linked_tables=linked_tables,
            memtable_bytes=db._memtable.approximate_bytes,
            total_space_bytes=db.space_bytes(),
        )

    # ------------------------------------------------------------------
    # Series accessors
    # ------------------------------------------------------------------
    def series(self, field: str) -> List[float]:
        """Extract one field across all samples."""
        return [getattr(sample, field) for sample in self.samples]

    def peak(self, field: str) -> float:
        values = self.series(field)
        return max(values) if values else 0.0

    def is_bounded(self, field: str, limit: float) -> bool:
        """True if the field never exceeded ``limit`` at any sample."""
        return all(value <= limit for value in self.series(field))
