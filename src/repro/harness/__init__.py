"""Measurement harness: runner, latency recording, reports, experiments."""

from .latency import (
    PAPER_PERCENTILES,
    LatencyRecorder,
    LatencyTimeline,
    TimelinePoint,
)
from .report import format_table, improvement, mib, paper_row, ratio
from .runner import PolicyFactory, RunResult, build_db, run_workload
from .timeseries import StateSample, StateSampler
from . import experiments

__all__ = [
    "LatencyRecorder",
    "LatencyTimeline",
    "TimelinePoint",
    "PAPER_PERCENTILES",
    "RunResult",
    "run_workload",
    "build_db",
    "PolicyFactory",
    "StateSampler",
    "StateSample",
    "format_table",
    "improvement",
    "ratio",
    "mib",
    "paper_row",
    "experiments",
]
