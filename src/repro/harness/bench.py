"""Wall-clock benchmark suite behind ``repro bench``.

Everything else in the harness measures *virtual* time — the simulated
device clock that the paper's figures are drawn in.  This module measures
the opposite axis: how fast the simulator itself runs on the host, in real
seconds.  That number bounds how large a reproduction we can afford (the
paper's evaluation is 10-30 M requests; ROADMAP: "as fast as the hardware
allows"), so it is tracked as a first-class artifact: every invocation
writes a ``BENCH_<name>.json`` snapshot that later PRs diff against.

The suite has two tiers:

* **micro** — isolated hot paths (Bloom probes, k-way merge throughput,
  memtable fill), catching regressions in one subsystem before they blur
  into end-to-end noise;
* **macro** — whole-engine runs through :func:`~repro.harness.runner.
  run_workload` (fillrandom, readrandom, and a UDC-vs-LDC comparison run),
  the numbers that decide how big the figure benchmarks may be.

``--quick`` shrinks every benchmark ~10x for CI smoke runs: the JSON is
still schema-complete, only the operation counts (and hence the noise
floor) differ.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .runner import run_workload
from ..core.ldc import LDCPolicy
from ..errors import UnknownBenchmarkError
from ..lsm.bloom import BloomFilter
from ..lsm.compaction.leveled import LeveledCompaction
from ..lsm.config import LSMConfig
from ..lsm.iterators import merge_records
from ..lsm.memtable import MemTable
from ..lsm.record import KVRecord
from ..shard.runner import run_sharded_workload
from ..workload import spec as workloads

#: Schema tag written into every BENCH_*.json (bump on breaking changes).
BENCH_SCHEMA = "repro-bench/v1"


@dataclass
class BenchResult:
    """One benchmark's wall-clock measurement."""

    name: str
    ops: int
    wall_s: float
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.ops / self.wall_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "ops": self.ops,
            "wall_s": round(self.wall_s, 6),
            "ops_per_sec": round(self.ops_per_sec, 1),
            "extra": {key: round(value, 6) for key, value in self.extra.items()},
        }


def _keys(count: int, width: int = 16) -> List[bytes]:
    return [str(index).zfill(width).encode("ascii") for index in range(count)]


# ----------------------------------------------------------------------
# Micro benchmarks
# ----------------------------------------------------------------------
def bench_bloom_probe(quick: bool = False) -> BenchResult:
    """Bloom filter probes: half present keys, half definite misses."""
    nkeys = 2_000 if quick else 10_000
    nprobes = 20_000 if quick else 200_000
    members = _keys(nkeys)
    absent = _keys(nkeys, width=16)
    absent = [b"x" + key[1:] for key in absent]  # same length, disjoint
    bloom = BloomFilter(members, bits_per_key=10)
    probes = [
        members[index % nkeys] if index % 2 == 0 else absent[index % nkeys]
        for index in range(nprobes)
    ]
    may_contain = bloom.may_contain
    start = time.perf_counter()
    hits = 0
    for key in probes:
        if may_contain(key):
            hits += 1
    wall = time.perf_counter() - start
    return BenchResult(
        "bloom_probe", nprobes, wall, extra={"positive_fraction": hits / nprobes}
    )


def bench_bloom_build(quick: bool = False) -> BenchResult:
    """Bloom filter construction throughput (keys inserted per second)."""
    nkeys = 2_000 if quick else 20_000
    rounds = 3 if quick else 10
    members = _keys(nkeys)
    start = time.perf_counter()
    for _ in range(rounds):
        BloomFilter(members, bits_per_key=10)
    wall = time.perf_counter() - start
    return BenchResult("bloom_build", nkeys * rounds, wall)


def bench_merge_throughput(quick: bool = False) -> BenchResult:
    """K-way merge of overlapping sorted runs (records merged per second)."""
    nstreams = 8
    per_stream = 2_000 if quick else 20_000
    streams: List[List[KVRecord]] = []
    seq = 0
    for stream in range(nstreams):
        records = []
        for index in range(per_stream):
            seq += 1
            key = str(index * nstreams + stream).zfill(16).encode("ascii")
            records.append(KVRecord(key, seq, 1, b"v" * 100))
        streams.append(records)
    start = time.perf_counter()
    merged = sum(1 for _ in merge_records([iter(s) for s in streams]))
    wall = time.perf_counter() - start
    return BenchResult(
        "merge_throughput", nstreams * per_stream, wall, extra={"merged": merged}
    )


def bench_memtable_fill(quick: bool = False) -> BenchResult:
    """Memtable (skip-list) inserts of shuffled keys per second."""
    count = 5_000 if quick else 50_000
    import random

    order = list(range(count))
    random.Random(7).shuffle(order)
    records = [
        KVRecord(str(index).zfill(16).encode("ascii"), index + 1, 1, b"v" * 64)
        for index in order
    ]
    table = MemTable(seed=0)
    add = table.add
    start = time.perf_counter()
    for record in records:
        add(record)
    wall = time.perf_counter() - start
    return BenchResult("memtable_fill", count, wall, extra={"records": len(table)})


# ----------------------------------------------------------------------
# Macro benchmarks (whole engine, wall-clock around run_workload)
# ----------------------------------------------------------------------
def _macro_spec(name: str, ops: int, keys: int, **overrides: object):
    factory = workloads.TABLE_III[name]
    return factory(num_operations=ops, key_space=keys, **overrides)


def bench_fillrandom(quick: bool = False) -> BenchResult:
    """Pure random insertion through the full engine (UDC policy)."""
    ops = 3_000 if quick else 30_000
    keys = max(500, ops // 3)
    spec = _macro_spec("WO", ops, keys)
    start = time.perf_counter()
    result = run_workload(spec, LeveledCompaction, config=LSMConfig())
    wall = time.perf_counter() - start
    return BenchResult(
        "fillrandom",
        ops,
        wall,
        extra={
            "sim_throughput_ops_s": result.throughput_ops_s,
            "write_amplification": result.write_amplification,
        },
    )


def bench_readrandom(quick: bool = False) -> BenchResult:
    """Random point lookups against a preloaded store (UDC policy).

    Runs with the LevelDB-equivalent block cache enabled (256 KB at our
    64 KB file scale — see ``LSMConfig.block_cache_bytes``) so the
    ``block_cache_hit_rate`` extra reflects a realistic read path; the
    cache was off in BENCH_pr7.json and earlier baselines, so this
    benchmark's trajectory has a config step at pr8.
    """
    ops = 3_000 if quick else 30_000
    keys = max(500, ops // 3)
    spec = _macro_spec("RO", ops, keys, preload_keys=keys)
    start = time.perf_counter()
    result = run_workload(
        spec, LeveledCompaction, config=LSMConfig(block_cache_bytes=256 * 1024)
    )
    wall = time.perf_counter() - start
    hits = result.metrics.get("cache.hits") if result.metrics else 0
    misses = result.metrics.get("cache.misses") if result.metrics else 0
    probes = hits + misses
    return BenchResult(
        "readrandom",
        ops,
        wall,
        extra={
            "sim_throughput_ops_s": result.throughput_ops_s,
            "block_cache_hit_rate": hits / probes if probes else 0.0,
        },
    )


def bench_udc_vs_ldc(quick: bool = False) -> BenchResult:
    """End-to-end RWB comparison run, both policies back to back.

    This is the figure benchmarks' inner loop; its wall-clock cost decides
    how large every reproduction sweep may be.
    """
    ops = 2_000 if quick else 20_000
    keys = max(500, ops // 3)
    spec = _macro_spec("RWB", ops, keys)
    start = time.perf_counter()
    udc = run_workload(spec, LeveledCompaction, config=LSMConfig())
    udc_wall = time.perf_counter() - start
    mid = time.perf_counter()
    ldc = run_workload(spec, LDCPolicy, config=LSMConfig())
    ldc_wall = time.perf_counter() - mid
    wall = udc_wall + ldc_wall
    return BenchResult(
        "udc_vs_ldc",
        2 * ops,
        wall,
        extra={
            "udc_wall_s": udc_wall,
            "ldc_wall_s": ldc_wall,
            "udc_sim_throughput_ops_s": udc.throughput_ops_s,
            "ldc_sim_throughput_ops_s": ldc.throughput_ops_s,
        },
    )


def bench_sched_interference(quick: bool = False) -> BenchResult:
    """The udc_vs_ldc pair with the background scheduler on (bg_threads=1).

    Scheduler-on runs pay extra host work per operation (chunk capture,
    channel arbitration, throttle checks), and the fig01s experiment plus
    the differential suite are built on this path — so its wall-clock
    cost is tracked separately from the scheduler-off macro pair.  The
    extras record the headline mechanism result (write p99/p50 spread per
    policy) so a bench artifact also documents the interference gap.
    """
    ops = 2_000 if quick else 12_000
    keys = max(500, ops // 3)
    spec = _macro_spec("RWB", ops, keys)
    config = LSMConfig(bg_threads=1)
    start = time.perf_counter()
    udc = run_workload(spec, LeveledCompaction, config=config)
    udc_wall = time.perf_counter() - start
    mid = time.perf_counter()
    ldc = run_workload(spec, LDCPolicy, config=config)
    ldc_wall = time.perf_counter() - mid

    def spread(result) -> float:
        writes = result.write_latencies
        return writes.percentile(99.0) / writes.percentile(50.0)

    return BenchResult(
        "sched_interference",
        2 * ops,
        udc_wall + ldc_wall,
        extra={
            "udc_wall_s": udc_wall,
            "ldc_wall_s": ldc_wall,
            "udc_p99_p50_spread": spread(udc),
            "ldc_p99_p50_spread": spread(ldc),
            "udc_stall_time_us": udc.stall_time_us,
            "ldc_stall_time_us": ldc.stall_time_us,
        },
    )


# ----------------------------------------------------------------------
# Sharded benchmarks (repro.shard over the same macro workloads)
# ----------------------------------------------------------------------
def _sharded_pair_wall(
    ops: int, keys: int, num_shards: int, workers: int
) -> Dict[str, object]:
    """Run the fillrandom+readrandom macro pair sharded; return timings.

    The pair is the scaling unit: a write-heavy leg (compaction-bound)
    and a read-heavy leg against a preloaded store (lookup-bound), the
    two costs sharding attacks — smaller trees compact less and probe
    fewer levels.
    """
    fill_spec = _macro_spec("WO", ops, keys)
    read_spec = _macro_spec("RO", ops, keys, preload_keys=keys)
    start = time.perf_counter()
    fill = run_sharded_workload(
        fill_spec, LeveledCompaction, num_shards, workers=workers,
        config=LSMConfig(),
    )
    read = run_sharded_workload(
        read_spec, LeveledCompaction, num_shards, workers=workers,
        config=LSMConfig(),
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "fill": fill,
        "read": read,
        "write_amplification": fill.write_amplification,
    }


def bench_sharded_fillrandom(quick: bool = False) -> BenchResult:
    """Random insertion through a 4-shard engine (hash partitioning).

    Directly comparable to ``fillrandom``: same spec, same policy, the
    trace split over four quarter-size trees.  The interesting extras are
    the write amplification (lower than the single store's — fewer levels
    per shard) and the per-shard operation balance.
    """
    ops = 3_000 if quick else 30_000
    keys = max(500, ops // 3)
    spec = _macro_spec("WO", ops, keys)
    start = time.perf_counter()
    report = run_sharded_workload(
        spec, LeveledCompaction, num_shards=4, workers=1, config=LSMConfig()
    )
    wall = time.perf_counter() - start
    balance = min(report.shard_operations) / max(1, max(report.shard_operations))
    return BenchResult(
        "sharded_fillrandom",
        ops,
        wall,
        extra={
            "sim_throughput_ops_s": report.throughput_ops_s,
            "write_amplification": report.write_amplification,
            "shard_balance": balance,
        },
    )


def bench_shard_scaling(quick: bool = False) -> BenchResult:
    """The shard-scaling curve on the fillrandom+readrandom macro pair.

    Three points: 1 shard (the PR 2 baseline), 4 shards executed serially
    (isolates the work reduction from smaller per-shard trees), and
    4 shards on 4 worker processes (adds host parallelism).  The serial
    and parallel sharded runs are asserted byte-identical in their
    aggregated metrics (``serial_parallel_identical``); ``cpu_count`` is
    recorded because the parallel point's wall-clock gain is bounded by
    ``min(workers, physical cores)`` — on a single-core host the curve
    shows the pure work-reduction term only.
    """
    ops = 3_000 if quick else 30_000
    keys = max(500, ops // 3)
    single = _sharded_pair_wall(ops, keys, num_shards=1, workers=1)
    serial = _sharded_pair_wall(ops, keys, num_shards=4, workers=1)
    parallel = _sharded_pair_wall(ops, keys, num_shards=4, workers=4)
    identical = (
        serial["fill"].fingerprint() == parallel["fill"].fingerprint()
        and serial["read"].fingerprint() == parallel["read"].fingerprint()
    )
    single_wall = single["wall_s"]
    return BenchResult(
        "shard_scaling",
        2 * ops,
        parallel["wall_s"],
        extra={
            "wall_1shard_s": single_wall,
            "wall_4shard_serial_s": serial["wall_s"],
            "wall_4shard_parallel_s": parallel["wall_s"],
            "speedup_4shard_serial": single_wall / serial["wall_s"],
            "speedup_4shard_parallel": single_wall / parallel["wall_s"],
            "serial_parallel_identical": 1.0 if identical else 0.0,
            "cpu_count": float(os.cpu_count() or 1),
            "write_amplification_1shard": single["write_amplification"],
            "write_amplification_4shard": serial["write_amplification"],
        },
    )


def bench_serve_tail(quick: bool = False) -> BenchResult:
    """The open-loop serving pair: queueing-inflated tails per policy.

    Drives UDC and LDC through :func:`~repro.serve.server.serve_workload`
    at the fig01_open_loop headline operating point (Poisson arrivals at
    60% of UDC's approximate closed-loop capacity, inline compaction,
    bounded queue).  The extras record the headline mechanism result —
    queue-inflated p99.9 and SLO-violation rate per policy — which the
    perf-smoke validation asserts (UDC strictly worse on both), so every
    bench artifact documents the serving-layer claim alongside its
    wall-clock cost.
    """
    from ..serve import ServeSpec, serve_workload

    ops = 2_000 if quick else 12_000
    keys = max(500, ops // 3)
    spec = _macro_spec("RWB", ops, keys)
    config = LSMConfig()
    serve_spec = ServeSpec(
        arrival="poisson",
        rate_ops_s=15_000.0,
        queue_depth=128,
        slo_us=1_000.0,
        seed=7,
    )
    start = time.perf_counter()
    udc = serve_workload(spec, LeveledCompaction, serve_spec, config=config)
    udc_wall = time.perf_counter() - start
    mid = time.perf_counter()
    ldc = serve_workload(spec, LDCPolicy, serve_spec, config=config)
    ldc_wall = time.perf_counter() - mid
    return BenchResult(
        "serve_tail",
        2 * ops,
        udc_wall + ldc_wall,
        extra={
            "udc_wall_s": udc_wall,
            "ldc_wall_s": ldc_wall,
            "udc_p999_us": udc.total_latencies.percentile(99.9),
            "ldc_p999_us": ldc.total_latencies.percentile(99.9),
            "udc_slo_violation_rate": udc.slo_violation_rate,
            "ldc_slo_violation_rate": ldc.slo_violation_rate,
            "udc_mean_wait_us": udc.mean_wait_us(),
            "ldc_mean_wait_us": ldc.mean_wait_us(),
        },
    )


# ----------------------------------------------------------------------
# Tier-2 benchmarks (paper scale; run only when named explicitly)
# ----------------------------------------------------------------------
def bench_paper_scale(quick: bool = False) -> BenchResult:
    """The macro pair at the paper's evaluation scale: 10M operations.

    5M random inserts (WO) followed by 5M point lookups (RO) against a
    preloaded store — the workload sizes of the paper's §IV runs that
    ROADMAP targets.  Latency recording is strided (1 in 100, capped) so
    the run holds histograms, not 10M floats; percentiles then come from
    the streaming histogram (see ``LatencyRecorder``).

    Tier 2: excluded from the default suite, run via
    ``repro bench --only paper_scale`` (the workflow_dispatch
    ``paper-scale`` CI job does exactly that).  The environment knob
    ``REPRO_PAPER_SCALE_OPS`` overrides the per-phase operation count —
    the weekly ``paper-scale-smoke`` CI job sets it to 500k (1M total
    ops) so the schema-complete run fits a small wall-time budget.
    """
    ops = 100_000 if quick else 5_000_000
    ops_override = os.environ.get("REPRO_PAPER_SCALE_OPS")
    if ops_override:
        ops = max(1, int(ops_override))
    keys = max(10_000, ops // 10)
    stride = 100
    cap = 100_000
    fill_spec = _macro_spec("WO", ops, keys)
    start = time.perf_counter()
    fill = run_workload(
        fill_spec,
        LeveledCompaction,
        config=LSMConfig(),
        sample_stride=stride,
        max_latency_samples=cap,
    )
    fill_wall = time.perf_counter() - start
    read_spec = _macro_spec("RO", ops, keys, preload_keys=keys)
    mid = time.perf_counter()
    read = run_workload(
        read_spec,
        LeveledCompaction,
        config=LSMConfig(),
        sample_stride=stride,
        max_latency_samples=cap,
    )
    read_wall = time.perf_counter() - mid
    return BenchResult(
        "paper_scale",
        2 * ops,
        fill_wall + read_wall,
        extra={
            "fill_wall_s": fill_wall,
            "read_wall_s": read_wall,
            "fill_sim_throughput_ops_s": fill.throughput_ops_s,
            "read_sim_throughput_ops_s": read.throughput_ops_s,
            "fill_p99_us": fill.latencies.percentile(99.0),
            "read_p99_us": read.latencies.percentile(99.0),
            "write_amplification": fill.write_amplification,
            "latency_sample_stride": float(stride),
        },
    )


#: The fixed suite, in execution order.
BENCHMARKS: Dict[str, Callable[[bool], BenchResult]] = {
    "bloom_probe": bench_bloom_probe,
    "bloom_build": bench_bloom_build,
    "merge_throughput": bench_merge_throughput,
    "memtable_fill": bench_memtable_fill,
    "fillrandom": bench_fillrandom,
    "readrandom": bench_readrandom,
    "udc_vs_ldc": bench_udc_vs_ldc,
    "sched_interference": bench_sched_interference,
    "sharded_fillrandom": bench_sharded_fillrandom,
    "shard_scaling": bench_shard_scaling,
    "serve_tail": bench_serve_tail,
}

#: Paper-scale runs; named explicitly (``--only``), never in the default
#: suite — a full run is minutes, not seconds.
TIER2_BENCHMARKS: Dict[str, Callable[[bool], BenchResult]] = {
    "paper_scale": bench_paper_scale,
}


def run_bench(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    profile_dir: Optional[str] = None,
) -> List[BenchResult]:
    """Run the requested benchmarks (default: the whole suite), in order.

    With ``profile_dir`` set, each benchmark runs under :mod:`cProfile`
    and its stats are dumped to ``<profile_dir>/PROFILE_<name>.pstats``
    (load with ``pstats.Stats`` to sort/inspect).  Profiling inflates
    wall times several-fold, so profiled numbers are for finding hot
    spots, never for the before/after tables.
    """
    runnable = {**BENCHMARKS, **TIER2_BENCHMARKS}
    selected = list(BENCHMARKS) if names is None else list(names)
    unknown = [name for name in selected if name not in runnable]
    if unknown:
        raise UnknownBenchmarkError(unknown, tuple(runnable))
    results = []
    for name in selected:
        if progress is not None:
            progress(name)
        if profile_dir is not None:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                results.append(runnable[name](quick))
            finally:
                profiler.disable()
            profiler.dump_stats(
                os.path.join(profile_dir, f"PROFILE_{name}.pstats")
            )
        else:
            results.append(runnable[name](quick))
    return results


def bench_report(
    results: Sequence[BenchResult], name: str, quick: bool
) -> Dict[str, object]:
    """Assemble the JSON document written to ``BENCH_<name>.json``."""
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "quick": quick,
        "unix_time": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benchmarks": {result.name: result.to_dict() for result in results},
    }


def write_bench_report(report: Dict[str, object], out_dir: str = ".") -> str:
    """Write the report as ``<out_dir>/BENCH_<name>.json``; return the path."""
    path = os.path.join(out_dir, f"BENCH_{report['name']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


#: Filename pattern of the committed per-PR baselines.
_HISTORY_PATTERN = r"^BENCH_pr(\d+)\.json$"


def load_bench_history(directory: str = ".") -> "List[tuple]":
    """Load every committed ``BENCH_pr<N>.json``, ordered by PR number.

    Returns ``(pr_number, report_dict)`` pairs.  Reports that fail to
    parse are skipped (a truncated artifact must not take down the
    history view for the rest).
    """
    import re

    pattern = re.compile(_HISTORY_PATTERN)
    entries = []
    for filename in os.listdir(directory):
        match = pattern.match(filename)
        if not match:
            continue
        try:
            with open(
                os.path.join(directory, filename), encoding="utf-8"
            ) as handle:
                report = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        entries.append((int(match.group(1)), report))
    entries.sort(key=lambda entry: entry[0])
    return entries


def history_table(entries: "List[tuple]") -> str:
    """Markdown perf-trajectory table over the committed baselines.

    One row per report (PR order), one column per benchmark carrying its
    ``ops_per_sec`` (wall-clock ops/s of the *host*, the number the
    ``--compare`` gate diffs); benchmarks absent from a report show
    ``—`` (suites grew over time).  The final column tracks the macro
    ``fillrandom`` speedup relative to the first report that has it.
    """
    names: List[str] = []
    for _, report in entries:
        for bench_name in report.get("benchmarks", {}):
            if bench_name not in names:
                names.append(bench_name)
    lines = [
        "| report | " + " | ".join(names) + " | fillrandom vs first |",
        "|---" * (len(names) + 2) + "|",
    ]
    fill_base: Optional[float] = None
    for number, report in entries:
        benches = report.get("benchmarks", {})
        cells = []
        for bench_name in names:
            data = benches.get(bench_name)
            rate = data.get("ops_per_sec") if data else None
            cells.append(f"{rate:,.0f}" if rate else "—")
        fill = benches.get("fillrandom", {}).get("ops_per_sec")
        if fill and fill_base is None:
            fill_base = fill
        trajectory = f"{fill / fill_base:.2f}x" if fill and fill_base else "—"
        lines.append(
            f"| pr{number} | " + " | ".join(cells) + f" | {trajectory} |"
        )
    return "\n".join(lines)


def compare_reports(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, float]:
    """Per-benchmark speedup factors (after ops/sec over before ops/sec)."""
    out: Dict[str, float] = {}
    before_benches = before.get("benchmarks", {})
    after_benches = after.get("benchmarks", {})
    for bench_name, data in after_benches.items():  # type: ignore[union-attr]
        base = before_benches.get(bench_name)  # type: ignore[union-attr]
        if not base or not base.get("ops_per_sec"):
            continue
        out[bench_name] = data["ops_per_sec"] / base["ops_per_sec"]
    return out


def diff_reports(
    before: Dict[str, object],
    after: Dict[str, object],
    threshold: float = 0.9,
) -> Dict[str, object]:
    """Regression-gating diff of two ``repro-bench/v1`` reports.

    A benchmark *regresses* when its speedup factor (after over before)
    falls below ``threshold`` — e.g. 0.9 tolerates 10% slowdown, which is
    roughly the noise floor of the quick CI suite.  Benchmarks present
    only in ``before`` are reported as ``missing`` (a silently dropped
    benchmark must fail the gate too); benchmarks only in ``after`` are
    ``added`` and never gate.
    """
    if not 0 < threshold <= 1:
        raise ValueError(f"threshold must lie in (0, 1], got {threshold}")
    for label, report in (("before", before), ("after", after)):
        if report.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"{label} report has schema {report.get('schema')!r}, "
                f"expected {BENCH_SCHEMA!r}"
            )
    speedups = compare_reports(before, after)
    before_benches = before.get("benchmarks", {})
    after_benches = after.get("benchmarks", {})
    return {
        "threshold": threshold,
        "speedups": speedups,
        "regressions": {
            name: factor for name, factor in speedups.items() if factor < threshold
        },
        "missing": sorted(set(before_benches) - set(after_benches)),
        "added": sorted(set(after_benches) - set(before_benches)),
    }
