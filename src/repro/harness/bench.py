"""Wall-clock benchmark suite behind ``repro bench``.

Everything else in the harness measures *virtual* time — the simulated
device clock that the paper's figures are drawn in.  This module measures
the opposite axis: how fast the simulator itself runs on the host, in real
seconds.  That number bounds how large a reproduction we can afford (the
paper's evaluation is 10-30 M requests; ROADMAP: "as fast as the hardware
allows"), so it is tracked as a first-class artifact: every invocation
writes a ``BENCH_<name>.json`` snapshot that later PRs diff against.

The suite has two tiers:

* **micro** — isolated hot paths (Bloom probes, k-way merge throughput,
  memtable fill), catching regressions in one subsystem before they blur
  into end-to-end noise;
* **macro** — whole-engine runs through :func:`~repro.harness.runner.
  run_workload` (fillrandom, readrandom, and a UDC-vs-LDC comparison run),
  the numbers that decide how big the figure benchmarks may be.

``--quick`` shrinks every benchmark ~10x for CI smoke runs: the JSON is
still schema-complete, only the operation counts (and hence the noise
floor) differ.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .runner import run_workload
from ..core.ldc import LDCPolicy
from ..lsm.bloom import BloomFilter
from ..lsm.compaction.leveled import LeveledCompaction
from ..lsm.config import LSMConfig
from ..lsm.iterators import merge_records
from ..lsm.memtable import MemTable
from ..lsm.record import KVRecord
from ..workload import spec as workloads

#: Schema tag written into every BENCH_*.json (bump on breaking changes).
BENCH_SCHEMA = "repro-bench/v1"


@dataclass
class BenchResult:
    """One benchmark's wall-clock measurement."""

    name: str
    ops: int
    wall_s: float
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.ops / self.wall_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "ops": self.ops,
            "wall_s": round(self.wall_s, 6),
            "ops_per_sec": round(self.ops_per_sec, 1),
            "extra": {key: round(value, 6) for key, value in self.extra.items()},
        }


def _keys(count: int, width: int = 16) -> List[bytes]:
    return [str(index).zfill(width).encode("ascii") for index in range(count)]


# ----------------------------------------------------------------------
# Micro benchmarks
# ----------------------------------------------------------------------
def bench_bloom_probe(quick: bool = False) -> BenchResult:
    """Bloom filter probes: half present keys, half definite misses."""
    nkeys = 2_000 if quick else 10_000
    nprobes = 20_000 if quick else 200_000
    members = _keys(nkeys)
    absent = _keys(nkeys, width=16)
    absent = [b"x" + key[1:] for key in absent]  # same length, disjoint
    bloom = BloomFilter(members, bits_per_key=10)
    probes = [
        members[index % nkeys] if index % 2 == 0 else absent[index % nkeys]
        for index in range(nprobes)
    ]
    may_contain = bloom.may_contain
    start = time.perf_counter()
    hits = 0
    for key in probes:
        if may_contain(key):
            hits += 1
    wall = time.perf_counter() - start
    return BenchResult(
        "bloom_probe", nprobes, wall, extra={"positive_fraction": hits / nprobes}
    )


def bench_bloom_build(quick: bool = False) -> BenchResult:
    """Bloom filter construction throughput (keys inserted per second)."""
    nkeys = 2_000 if quick else 20_000
    rounds = 3 if quick else 10
    members = _keys(nkeys)
    start = time.perf_counter()
    for _ in range(rounds):
        BloomFilter(members, bits_per_key=10)
    wall = time.perf_counter() - start
    return BenchResult("bloom_build", nkeys * rounds, wall)


def bench_merge_throughput(quick: bool = False) -> BenchResult:
    """K-way merge of overlapping sorted runs (records merged per second)."""
    nstreams = 8
    per_stream = 2_000 if quick else 20_000
    streams: List[List[KVRecord]] = []
    seq = 0
    for stream in range(nstreams):
        records = []
        for index in range(per_stream):
            seq += 1
            key = str(index * nstreams + stream).zfill(16).encode("ascii")
            records.append(KVRecord(key, seq, 1, b"v" * 100))
        streams.append(records)
    start = time.perf_counter()
    merged = sum(1 for _ in merge_records([iter(s) for s in streams]))
    wall = time.perf_counter() - start
    return BenchResult(
        "merge_throughput", nstreams * per_stream, wall, extra={"merged": merged}
    )


def bench_memtable_fill(quick: bool = False) -> BenchResult:
    """Memtable (skip-list) inserts of shuffled keys per second."""
    count = 5_000 if quick else 50_000
    import random

    order = list(range(count))
    random.Random(7).shuffle(order)
    records = [
        KVRecord(str(index).zfill(16).encode("ascii"), index + 1, 1, b"v" * 64)
        for index in order
    ]
    table = MemTable(seed=0)
    add = table.add
    start = time.perf_counter()
    for record in records:
        add(record)
    wall = time.perf_counter() - start
    return BenchResult("memtable_fill", count, wall, extra={"records": len(table)})


# ----------------------------------------------------------------------
# Macro benchmarks (whole engine, wall-clock around run_workload)
# ----------------------------------------------------------------------
def _macro_spec(name: str, ops: int, keys: int, **overrides: object):
    factory = workloads.TABLE_III[name]
    return factory(num_operations=ops, key_space=keys, **overrides)


def bench_fillrandom(quick: bool = False) -> BenchResult:
    """Pure random insertion through the full engine (UDC policy)."""
    ops = 3_000 if quick else 30_000
    keys = max(500, ops // 3)
    spec = _macro_spec("WO", ops, keys)
    start = time.perf_counter()
    result = run_workload(spec, LeveledCompaction, config=LSMConfig())
    wall = time.perf_counter() - start
    return BenchResult(
        "fillrandom",
        ops,
        wall,
        extra={
            "sim_throughput_ops_s": result.throughput_ops_s,
            "write_amplification": result.write_amplification,
        },
    )


def bench_readrandom(quick: bool = False) -> BenchResult:
    """Random point lookups against a preloaded store (UDC policy)."""
    ops = 3_000 if quick else 30_000
    keys = max(500, ops // 3)
    spec = _macro_spec("RO", ops, keys, preload_keys=keys)
    start = time.perf_counter()
    result = run_workload(spec, LeveledCompaction, config=LSMConfig())
    wall = time.perf_counter() - start
    return BenchResult(
        "readrandom",
        ops,
        wall,
        extra={"sim_throughput_ops_s": result.throughput_ops_s},
    )


def bench_udc_vs_ldc(quick: bool = False) -> BenchResult:
    """End-to-end RWB comparison run, both policies back to back.

    This is the figure benchmarks' inner loop; its wall-clock cost decides
    how large every reproduction sweep may be.
    """
    ops = 2_000 if quick else 20_000
    keys = max(500, ops // 3)
    spec = _macro_spec("RWB", ops, keys)
    start = time.perf_counter()
    udc = run_workload(spec, LeveledCompaction, config=LSMConfig())
    udc_wall = time.perf_counter() - start
    mid = time.perf_counter()
    ldc = run_workload(spec, LDCPolicy, config=LSMConfig())
    ldc_wall = time.perf_counter() - mid
    wall = udc_wall + ldc_wall
    return BenchResult(
        "udc_vs_ldc",
        2 * ops,
        wall,
        extra={
            "udc_wall_s": udc_wall,
            "ldc_wall_s": ldc_wall,
            "udc_sim_throughput_ops_s": udc.throughput_ops_s,
            "ldc_sim_throughput_ops_s": ldc.throughput_ops_s,
        },
    )


#: The fixed suite, in execution order.
BENCHMARKS: Dict[str, Callable[[bool], BenchResult]] = {
    "bloom_probe": bench_bloom_probe,
    "bloom_build": bench_bloom_build,
    "merge_throughput": bench_merge_throughput,
    "memtable_fill": bench_memtable_fill,
    "fillrandom": bench_fillrandom,
    "readrandom": bench_readrandom,
    "udc_vs_ldc": bench_udc_vs_ldc,
}


def run_bench(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run the requested benchmarks (default: the whole suite), in order."""
    selected = list(BENCHMARKS) if names is None else list(names)
    unknown = [name for name in selected if name not in BENCHMARKS]
    if unknown:
        known = ", ".join(BENCHMARKS)
        raise KeyError(f"unknown benchmark(s) {unknown}; known: {known}")
    results = []
    for name in selected:
        if progress is not None:
            progress(name)
        results.append(BENCHMARKS[name](quick))
    return results


def bench_report(
    results: Sequence[BenchResult], name: str, quick: bool
) -> Dict[str, object]:
    """Assemble the JSON document written to ``BENCH_<name>.json``."""
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "quick": quick,
        "unix_time": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benchmarks": {result.name: result.to_dict() for result in results},
    }


def write_bench_report(report: Dict[str, object], out_dir: str = ".") -> str:
    """Write the report as ``<out_dir>/BENCH_<name>.json``; return the path."""
    import os

    path = os.path.join(out_dir, f"BENCH_{report['name']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def compare_reports(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, float]:
    """Per-benchmark speedup factors (after ops/sec over before ops/sec)."""
    out: Dict[str, float] = {}
    before_benches = before.get("benchmarks", {})
    after_benches = after.get("benchmarks", {})
    for bench_name, data in after_benches.items():  # type: ignore[union-attr]
        base = before_benches.get(bench_name)  # type: ignore[union-attr]
        if not base or not base.get("ops_per_sec"):
            continue
        out[bench_name] = data["ops_per_sec"] / base["ops_per_sec"]
    return out
