"""ShardedDB: one keyspace partitioned across N independent engines.

Each shard is a full :class:`~repro.lsm.db.DB` — its own simulated device,
virtual clock, memtable, version set and metrics registry — so shards
share *nothing* and their simulated counters stay bit-exact no matter
which process runs them.  The partitioner (hash or range,
:mod:`repro.shard.partition`) decides key ownership; the facade keeps the
single-store API:

* ``put``/``get``/``delete`` route to the owning shard;
* ``scan`` merges per-shard iterators — shards own disjoint key sets, so
  the merge is a straight k-way ascending interleave;
* ``snapshot`` pins each shard's last write sequence number, giving a
  consistent cut of the fleet (per-shard sequence order is total);
* ``metrics`` returns the aggregate view, ``combined_metrics`` adds the
  ``shard.<i>.`` namespaces (:mod:`repro.obs.aggregate`).

Background compaction scheduling is per-shard too: a config with
``bg_threads >= 1`` gives every shard its own
:class:`~repro.sched.scheduler.CompactionScheduler` with its own device
channel and background threads — no cross-shard bandwidth coupling, so
serial and parallel shard execution stay bit-identical.

Why shard a *simulated* store at all?  Two reasons the paper's scaling
analysis cares about: N quarter-size trees do less compaction work than
one big tree (lower write amplification — fewer levels to drag data
through), and independent shards execute on independent workers with no
coordination, which is where wall-clock speedup comes from on multi-core
hosts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .partition import Partitioner, make_partitioner
from ..errors import ConfigError, ReproError
from ..faults.plan import FaultPlan
from ..lsm.compaction.spec import resolve_factory
from ..lsm.config import LSMConfig
from ..lsm.db import DB
from ..obs.aggregate import aggregate_snapshots, combined_view
from ..obs.snapshot import MetricsSnapshot
from ..ssd.flash import DeviceConfig
from ..ssd.profile import ENTERPRISE_PCIE, SSDProfile

#: Factory producing a fresh policy instance (one per shard; policies are
#: stateful and must never be shared between engines).  A registered
#: policy name or a PolicySpec is accepted wherever a factory is (coerced
#: via :func:`~repro.lsm.compaction.spec.resolve_factory`).
PolicyFactory = Callable[[], object]


@dataclass(frozen=True)
class ShardedSnapshot:
    """A consistent cut of the fleet: one pinned sequence per shard.

    Each shard's writes are totally ordered by its sequence counter, so
    pinning ``last_sequence`` per shard captures exactly the writes
    applied before the snapshot.  ``t_us`` records each shard's virtual
    time at the pin for reporting.
    """

    sequences: Tuple[int, ...]
    t_us: Tuple[float, ...]

    @property
    def num_shards(self) -> int:
        return len(self.sequences)

    def sequence_of(self, shard_index: int) -> int:
        return self.sequences[shard_index]


class ShardedDB:
    """N independent DB shards behind the single-store API.

    Parameters
    ----------
    num_shards:
        How many independent engines to run.
    policy_factory:
        Called once per shard to build its compaction policy (policies are
        stateful; sharing one instance would corrupt both trees).
    partitioner:
        A :class:`~repro.shard.partition.Partitioner`, or ``None`` to
        build one from ``partitioner_kind`` (+ ``key_space`` for range).
    config / profile:
        Shared engine geometry and device profile; every shard gets its
        own simulated device built from the same profile.  A
        :class:`~repro.ssd.flash.DeviceConfig` gives each shard its own
        independent flash/FTL layer from the same spec.
    seed:
        Base seed; shard ``i`` uses ``seed + i`` so shard memtables are
        independent but the whole fleet is reproducible.
    fault_plans:
        Optional per-shard :class:`~repro.faults.plan.FaultPlan` sequence
        (``None`` entries leave that shard fault-free).  Each shard owns
        its own device, so plans are independent — the crash-point
        harness arms one shard at a time.
    """

    def __init__(
        self,
        num_shards: int,
        policy_factory: PolicyFactory,
        partitioner: Optional[Partitioner] = None,
        partitioner_kind: str = "hash",
        key_space: int = 0,
        config: Optional[LSMConfig] = None,
        profile: "SSDProfile | DeviceConfig" = ENTERPRISE_PCIE,
        seed: int = 0,
        fault_plans: Optional[Sequence[Optional["FaultPlan"]]] = None,
    ) -> None:
        if num_shards <= 0:
            raise ConfigError("num_shards must be positive")
        if partitioner is None:
            partitioner = make_partitioner(partitioner_kind, num_shards, key_space)
        if partitioner.num_shards != num_shards:
            raise ConfigError(
                f"partitioner covers {partitioner.num_shards} shards, "
                f"engine has {num_shards}"
            )
        if fault_plans is not None and len(fault_plans) != num_shards:
            raise ConfigError(
                f"fault_plans covers {len(fault_plans)} shards, "
                f"engine has {num_shards}"
            )
        self.partitioner = partitioner
        self.config = config if config is not None else LSMConfig()
        self.profile = profile
        policy_factory = resolve_factory(policy_factory)
        self.shards: List[DB] = [
            DB(
                config=self.config,
                policy=policy_factory(),
                profile=profile,
                seed=seed + index,
                fault_plan=fault_plans[index] if fault_plans is not None else None,
            )
            for index in range(num_shards)
        ]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, key: bytes) -> int:
        return self.partitioner.shard_of(key)

    def shard_for(self, key: bytes) -> DB:
        return self.shards[self.partitioner.shard_of(key)]

    # ------------------------------------------------------------------
    # Single-store API
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        self.shard_for(key).put(key, value)

    def get(self, key: bytes) -> Optional[bytes]:
        return self.shard_for(key).get(key)

    def delete(self, key: bytes) -> None:
        self.shard_for(key).delete(key)

    def multi_get(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Batched point lookups; results align with ``keys``.

        Keys are grouped by owning shard and each group runs through the
        shard's :meth:`~repro.lsm.db.DB.multi_get` fast path, so the
        per-shard simulated effects are identical to issuing the same
        keys through :meth:`get` one at a time (shards share nothing, and
        within a shard the batch preserves the caller's key order).
        """
        shard_of = self.partitioner.shard_of
        groups: List[List[bytes]] = [[] for _ in self.shards]
        slots: List[List[int]] = [[] for _ in self.shards]
        for position, key in enumerate(keys):
            index = shard_of(key)
            groups[index].append(key)
            slots[index].append(position)
        results: List[Optional[bytes]] = [None] * sum(len(group) for group in groups)
        for shard, group, positions in zip(self.shards, groups, slots):
            if not group:
                continue
            for position, value in zip(positions, shard.multi_get(group)):
                results[position] = value
        return results

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, bytes]]:
        """Up to ``count`` live pairs with key >= start, fleet-wide order.

        Every shard answers locally, then a k-way heap merge interleaves
        the (disjoint) per-shard results into global key order.  Each
        shard is asked for ``count`` pairs — ownership of the next
        ``count`` global keys could in the worst case sit entirely on one
        shard, so less would risk gaps.
        """
        per_shard = [shard.scan(start_key, count) for shard in self.shards]
        merged = heapq.merge(*per_shard)
        return [pair for _, pair in zip(range(count), merged)]

    def snapshot(self) -> ShardedSnapshot:
        """Pin every shard's current last write sequence (and clock)."""
        return ShardedSnapshot(
            sequences=tuple(shard.last_sequence for shard in self.shards),
            t_us=tuple(shard.clock.now() for shard in self.shards),
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def shard_metrics(self) -> List[MetricsSnapshot]:
        """Each shard's own snapshot, in shard order."""
        return [shard.metrics() for shard in self.shards]

    def metrics(self) -> MetricsSnapshot:
        """Aggregate view: counter-wise sums, ``t_us`` = slowest shard."""
        return aggregate_snapshots(self.shard_metrics())

    def combined_metrics(self) -> MetricsSnapshot:
        """Aggregate sums plus per-shard ``shard.<i>.`` namespaces."""
        return combined_view(self.shard_metrics())

    def reset_measurements(self) -> None:
        for shard in self.shards:
            shard.reset_measurements()

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def maybe_compact(self) -> None:
        """Drain outstanding maintenance on every shard."""
        for shard in self.shards:
            shard.policy.maybe_compact()

    def drain_scheduler(self) -> None:
        """Pay every shard's outstanding background compaction debt.

        Shards built with ``config.bg_threads >= 1`` each own an
        independent :class:`~repro.sched.scheduler.CompactionScheduler`
        (shared-nothing extends to scheduling: per-shard threads, per-
        shard device channels).  This advances each shard's clock past its
        in-flight chunks — the fleet analogue of joining the compaction
        threads.  No-op when the scheduler is off.
        """
        for shard in self.shards:
            if shard.sched is not None:
                shard.sched.drain()

    def crash_and_recover(self) -> int:
        """Crash-recover every shard; returns total records replayed.

        Shards share nothing, so fleet recovery is per-shard recovery in
        shard order (a real deployment would recover them in parallel;
        virtual clocks make the order irrelevant here).
        """
        return sum(shard.crash_and_recover() for shard in self.shards)

    def check_invariants(self) -> None:
        """Run every shard's cross-layer invariant checks."""
        for shard in self.shards:
            shard.check_invariants()

    def logical_items(self) -> List[Tuple[bytes, bytes]]:
        """Every live pair fleet-wide, key-ordered, off the clock."""
        streams = [list(shard.logical_items()) for shard in self.shards]
        return list(heapq.merge(*streams))

    def describe(self) -> str:
        lines = [
            f"ShardedDB: {self.num_shards} shards, "
            f"partitioner={self.partitioner.describe()}"
        ]
        for index, shard in enumerate(self.shards):
            lines.append(f"--- shard {index} ---")
            lines.append(shard.describe())
        return "\n".join(lines)

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedDB":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def split_by_shard(
    operations: Sequence, partitioner: Partitioner
) -> List[List]:
    """Partition an operation trace by owning shard, preserving order.

    Scans route to the shard owning the *start* key; a cross-shard scan
    executed this way measures only the owning shard's range-read cost
    (documented approximation — the workload traces drive disjoint
    per-shard stores, and the ``ShardedDB.scan`` API does the full k-way
    merge when result correctness matters).
    """
    if any(not hasattr(op, "key") for op in operations[:1]):
        raise ReproError("operations must expose a .key attribute")
    buckets: List[List] = [[] for _ in range(partitioner.num_shards)]
    shard_of = partitioner.shard_of
    for operation in operations:
        buckets[shard_of(operation.key)].append(operation)
    return buckets
