"""Keyspace partitioners: which shard owns which key.

A partitioner is a pure, picklable function from key bytes to a shard
index.  Determinism across processes is non-negotiable — the parallel
shard runner routes the same trace on the driver and re-derives nothing
in the workers — so hashing uses CRC-32 (standardised, seed-free) rather
than Python's per-process-salted ``hash()``.

Two strategies ship:

* :class:`HashPartitioner` — uniform key scatter.  Balances load for any
  key distribution but destroys key locality: a range scan touches every
  shard.
* :class:`RangePartitioner` — ordered split points.  Preserves locality
  (a scan usually stays within one shard) at the cost of load skew when
  the key distribution is not uniform over the split points.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import List, Sequence

from ..errors import ConfigError


class Partitioner(ABC):
    """Deterministic mapping from key bytes to a shard index."""

    #: Short identifier used in reports and the CLI ("hash", "range").
    kind: str = "abstract"

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ConfigError("num_shards must be positive")
        self.num_shards = num_shards

    @abstractmethod
    def shard_of(self, key: bytes) -> int:
        """The index in ``[0, num_shards)`` of the shard owning ``key``."""

    def describe(self) -> str:
        return f"{self.kind}({self.num_shards} shards)"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashPartitioner(Partitioner):
    """CRC-32 hash partitioning: uniform scatter, no locality.

    ``crc32`` is standardised (RFC 1952), byte-stable across platforms and
    processes, and cheap enough to sit on the put/get hot path.
    """

    kind = "hash"

    def shard_of(self, key: bytes) -> int:
        return zlib.crc32(key) % self.num_shards


class RangePartitioner(Partitioner):
    """Split-point partitioning: shard ``i`` owns keys < ``boundaries[i]``.

    ``boundaries`` are ``num_shards - 1`` strictly increasing keys; shard 0
    owns everything below the first boundary, the last shard everything at
    or above the final one (half-open ranges, like SSTable responsibility
    ranges).
    """

    kind = "range"

    def __init__(self, boundaries: Sequence[bytes]) -> None:
        super().__init__(len(boundaries) + 1)
        bounds = list(boundaries)
        for boundary in bounds:
            if not isinstance(boundary, bytes) or not boundary:
                raise ConfigError("range boundaries must be non-empty bytes")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ConfigError("range boundaries must be strictly increasing")
        self.boundaries: List[bytes] = bounds

    def shard_of(self, key: bytes) -> int:
        return bisect_right(self.boundaries, key)

    @classmethod
    def for_decimal_keyspace(
        cls, num_shards: int, key_space: int, key_bytes: int = 16
    ) -> "RangePartitioner":
        """Even split points for the workload generator's key encoding.

        The generator encodes key index ``i`` as ``str(i).zfill(key_bytes)``
        so lexicographic order equals numeric order; splitting the index
        space evenly therefore splits the byte space evenly too.
        """
        if num_shards <= 0:
            raise ConfigError("num_shards must be positive")
        if key_space < num_shards:
            raise ConfigError("key_space must be at least num_shards")
        boundaries = [
            str(key_space * index // num_shards).zfill(key_bytes).encode("ascii")
            for index in range(1, num_shards)
        ]
        return cls(boundaries)

    def describe(self) -> str:
        return f"range({self.num_shards} shards, {len(self.boundaries)} bounds)"


#: Registered partitioner kinds for CLI/spec lookups.
PARTITIONER_KINDS = ("hash", "range")


def make_partitioner(
    kind: str,
    num_shards: int,
    key_space: int = 0,
    key_bytes: int = 16,
) -> Partitioner:
    """Build a partitioner by kind name.

    ``range`` needs the key-space geometry to place its split points; the
    workload-driven callers (CLI, bench, experiments) pass it through from
    the spec.
    """
    if kind == "hash":
        return HashPartitioner(num_shards)
    if kind == "range":
        if num_shards == 1:
            return RangePartitioner([])
        if key_space <= 0:
            raise ConfigError(
                "range partitioning requires key_space to derive split points"
            )
        return RangePartitioner.for_decimal_keyspace(
            num_shards, key_space, key_bytes
        )
    raise ConfigError(
        f"unknown partitioner kind {kind!r}; known: {', '.join(PARTITIONER_KINDS)}"
    )
