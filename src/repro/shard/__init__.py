"""Sharded multi-store engine: N independent DBs behind one API.

The scaling layer on top of :class:`~repro.lsm.db.DB`:

* :mod:`repro.shard.partition` — deterministic keyspace partitioners
  (hash via CRC-32, range via split points);
* :mod:`repro.shard.db` — :class:`ShardedDB`, the single-store facade
  (routed put/get/delete, k-way merged scans, per-shard-sequence
  snapshots, aggregated metrics);
* :mod:`repro.shard.runner` — shard-parallel workload execution with
  bit-identical serial/parallel aggregation.

Quickstart
----------
>>> from repro import LDCPolicy
>>> from repro.shard import ShardedDB
>>> db = ShardedDB(num_shards=4, policy_factory=LDCPolicy)
>>> db.put(b"user1", b"hello")
>>> db.get(b"user1")
b'hello'
"""

from .db import ShardedDB, ShardedSnapshot, split_by_shard
from .partition import (
    HashPartitioner,
    PARTITIONER_KINDS,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)
from .runner import (
    ShardedRunReport,
    ShardTask,
    merge_shard_results,
    run_sharded_workload,
)

__all__ = [
    "ShardedDB",
    "ShardedSnapshot",
    "split_by_shard",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "make_partitioner",
    "PARTITIONER_KINDS",
    "ShardTask",
    "ShardedRunReport",
    "run_sharded_workload",
    "merge_shard_results",
]
