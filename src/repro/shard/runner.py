"""Shard-parallel workload execution with deterministic aggregation.

The measurement protocol for a sharded run:

1. generate the workload trace **once** on the driver (the trace is a
   function of the spec's seed alone, so it is identical however the run
   executes);
2. split the preload and measured streams by owning shard
   (:func:`~repro.shard.db.split_by_shard` — order-preserving, pure);
3. build one picklable :class:`ShardTask` per shard and execute them —
   in-process when ``workers`` is 1, else fanned out over a
   ``ProcessPoolExecutor`` exactly like the PR 2 experiment grid
   (``executor.map`` preserves shard order);
4. fold the per-shard results into one :class:`ShardedRunReport`:
   counter-wise metric sums, histogram/recorder merges, bucket-wise
   timeline merges, with every fold key-sorted or shard-ordered.

The determinism contract: each shard simulates its own device and
virtual clock and touches nothing shared, so steps 3–4 produce
**bit-identical** aggregates for serial and parallel execution — the only
thing the worker count may change is wall-clock time.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .db import PolicyFactory, split_by_shard
from .partition import Partitioner, make_partitioner
from ..errors import ConfigError
from ..harness.latency import LatencyRecorder, LatencyTimeline
from ..harness.runner import RunResult, execute_operations, _merge_recorders
from ..lsm.compaction.spec import resolve_factory
from ..lsm.config import LSMConfig
from ..lsm.db import DB
from ..obs.aggregate import aggregate_snapshots, combined_view
from ..obs.snapshot import MetricsSnapshot
from ..ssd.flash import DeviceConfig
from ..ssd.profile import ENTERPRISE_PCIE, SSDProfile
from ..workload.spec import WorkloadSpec
from ..workload.ycsb import Operation, WorkloadGenerator


@dataclass(frozen=True)
class ShardTask:
    """One shard's slice of a sharded run — picklable end to end.

    Operations are plain ``NamedTuple``s of bytes, factories follow the
    grid's picklable-factory pattern, and the resulting ``RunResult``
    ships back whole, exactly like a :class:`~repro.harness.experiments.
    GridTask` round trip.
    """

    shard_index: int
    workload_name: str
    preload: Tuple[Operation, ...]
    operations: Tuple[Operation, ...]
    factory: PolicyFactory
    config: Optional[LSMConfig] = None
    profile: "SSDProfile | DeviceConfig" = ENTERPRISE_PCIE
    seed: int = 0
    timeline_bucket_us: float = 1_000_000.0


def _run_shard_task(task: ShardTask) -> RunResult:
    """Top-level worker entry point (must be importable for pickling).

    Mirrors ``run_workload``'s protocol — preload, drain maintenance,
    reset, measure — through the identical
    :func:`~repro.harness.runner.execute_operations` loop, so one shard
    of a sharded run is measured exactly like a standalone store.
    """
    db = DB(
        config=task.config if task.config is not None else LSMConfig(),
        policy=task.factory(),
        profile=task.profile,
        seed=task.seed,
    )
    for operation in task.preload:
        db.put(operation.key, operation.value)
    db.policy.maybe_compact()
    db.reset_measurements()
    return execute_operations(
        db,
        task.operations,
        workload_name=task.workload_name,
        timeline_bucket_us=task.timeline_bucket_us,
    )


@dataclass
class ShardedRunReport:
    """Everything measured during one sharded run, per shard and folded."""

    workload: str
    policy: str
    partitioner: str
    num_shards: int
    workers: int
    operations: int
    #: Slowest shard's measured virtual time — the parallel-completion
    #: semantics: the run is done when its last shard is.
    elapsed_us: float
    #: Real (host) seconds spent executing the shard tasks; the only
    #: field that may differ between serial and parallel execution.
    wall_s: float
    shard_results: List[RunResult] = field(default_factory=list)
    #: Counter-wise sums under the original keys (``engine.puts`` is the
    #: fleet total).
    metrics: Optional[MetricsSnapshot] = None
    #: Aggregate plus per-shard ``shard.<i>.`` namespaces.
    combined_metrics: Optional[MetricsSnapshot] = None
    latencies: Optional[LatencyRecorder] = None
    write_latencies: Optional[LatencyRecorder] = None
    read_latencies: Optional[LatencyRecorder] = None
    scan_latencies: Optional[LatencyRecorder] = None
    timeline: Optional[LatencyTimeline] = None

    @property
    def throughput_ops_s(self) -> float:
        """Operations per simulated second (virtual completion time)."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.operations / (self.elapsed_us / 1e6)

    @property
    def write_amplification(self) -> float:
        return self.metrics.write_amplification if self.metrics else 0.0

    @property
    def device_write_amplification(self) -> float:
        """Fleet device WA over the summed counters (1.0 without flash).

        Both numerator (programmed bytes + stream remainders) and
        denominator (host write bytes) sum correctly across shards, so
        the aggregate snapshot's ratio is the fleet ratio.  Per-shard
        wear detail (e.g. max erase counts, which do *not* sum) lives in
        ``combined_metrics``'s ``shard.<i>.`` namespaces.
        """
        return self.metrics.device_write_amplification if self.metrics else 1.0

    @property
    def total_write_amplification(self) -> float:
        return self.metrics.total_write_amplification if self.metrics else 0.0

    @property
    def shard_operations(self) -> List[int]:
        return [result.operations for result in self.shard_results]

    def fingerprint(self) -> tuple:
        """Every deterministic aggregate, for bit-identity assertions.

        Excludes ``wall_s`` (host time) and nothing else: if any of this
        differs between a serial and a parallel run, the determinism
        contract is broken.
        """
        assert self.metrics is not None and self.latencies is not None
        return (
            self.workload,
            self.policy,
            self.partitioner,
            self.num_shards,
            self.operations,
            self.elapsed_us,
            tuple(self.shard_operations),
            tuple(result.elapsed_us for result in self.shard_results),
            tuple(sorted(self.metrics.counters.items())),
            tuple(sorted(self.metrics.gauges.items())),
            tuple(self.latencies.values),
            tuple(
                (point.start_us, point.count, point.mean_latency_us,
                 point.max_latency_us)
                for point in self.timeline.points()
            ) if self.timeline is not None else (),
        )

    def summary(self) -> Dict[str, float]:
        return {
            "throughput_ops_s": self.throughput_ops_s,
            "write_amplification": self.write_amplification,
            "elapsed_virtual_s": self.elapsed_us / 1e6,
            "wall_s": self.wall_s,
            "num_shards": float(self.num_shards),
            "workers": float(self.workers),
        }


def run_sharded_workload(
    spec: WorkloadSpec,
    policy_factory: PolicyFactory,
    num_shards: int,
    partitioner: Union[str, Partitioner] = "hash",
    workers: int = 1,
    config: Optional[LSMConfig] = None,
    profile: "SSDProfile | DeviceConfig" = ENTERPRISE_PCIE,
    timeline_bucket_us: float = 1_000_000.0,
    seed: int = 0,
) -> ShardedRunReport:
    """Run one workload across ``num_shards`` engines, possibly in parallel.

    ``policy_factory`` may be a zero-arg factory, a registered policy
    name, or a :class:`~repro.lsm.compaction.spec.PolicySpec`.
    ``partitioner`` is a kind name (``"hash"`` / ``"range"``) or a
    pre-built :class:`Partitioner` covering ``num_shards``.  ``workers``
    bounds the process fan-out; 1 executes every shard in-process.  The
    report's deterministic content (:meth:`ShardedRunReport.fingerprint`)
    is identical for any ``workers`` value.
    """
    if workers < 1:
        raise ConfigError("workers must be >= 1")
    policy_factory = resolve_factory(policy_factory)
    if isinstance(partitioner, str):
        partitioner = make_partitioner(
            partitioner, num_shards, key_space=spec.key_space,
            key_bytes=spec.key_bytes,
        )
    if partitioner.num_shards != num_shards:
        raise ConfigError(
            f"partitioner covers {partitioner.num_shards} shards, "
            f"run requested {num_shards}"
        )

    generator = WorkloadGenerator(spec)
    preload_buckets = split_by_shard(
        list(generator.preload_operations()), partitioner
    )
    measured_buckets = split_by_shard(list(generator.operations()), partitioner)
    tasks = [
        ShardTask(
            shard_index=index,
            workload_name=spec.name,
            preload=tuple(preload_buckets[index]),
            operations=tuple(measured_buckets[index]),
            factory=policy_factory,
            config=config,
            profile=profile,
            seed=seed + index,
            timeline_bucket_us=timeline_bucket_us,
        )
        for index in range(num_shards)
    ]

    start = time.perf_counter()
    if workers == 1 or num_shards == 1:
        results = [_run_shard_task(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=min(workers, num_shards)) as pool:
            results = list(pool.map(_run_shard_task, tasks))
    wall_s = time.perf_counter() - start

    return merge_shard_results(
        results,
        workload=spec.name,
        partitioner=partitioner.describe(),
        workers=workers,
        wall_s=wall_s,
        timeline_bucket_us=timeline_bucket_us,
    )


def merge_shard_results(
    results: List[RunResult],
    workload: str,
    partitioner: str,
    workers: int,
    wall_s: float,
    timeline_bucket_us: float = 1_000_000.0,
) -> ShardedRunReport:
    """Fold per-shard RunResults into one report, deterministically.

    Every fold is order-fixed (shard order) and value-commutative
    (sums, histogram adds, bucket maxes), so the merged report depends
    only on the per-shard results — not on who computed them or when.
    """
    if not results:
        raise ConfigError("cannot merge zero shard results")
    snapshots = [result.metrics for result in results]
    assert all(snapshot is not None for snapshot in snapshots)
    timeline = LatencyTimeline(bucket_us=timeline_bucket_us)
    for result in results:
        timeline.merge(result.timeline)
    return ShardedRunReport(
        workload=workload,
        policy=results[0].policy,
        partitioner=partitioner,
        num_shards=len(results),
        workers=workers,
        operations=sum(result.operations for result in results),
        elapsed_us=max(result.elapsed_us for result in results),
        wall_s=wall_s,
        shard_results=results,
        metrics=aggregate_snapshots(snapshots),
        combined_metrics=combined_view(snapshots),
        latencies=_merge_recorders(*(r.latencies for r in results)),
        write_latencies=_merge_recorders(*(r.write_latencies for r in results)),
        read_latencies=_merge_recorders(*(r.read_latencies for r in results)),
        scan_latencies=_merge_recorders(*(r.scan_latencies for r in results)),
        timeline=timeline,
    )
