"""Legacy setup shim.

The sandbox this repository is developed in has no network access and no
``wheel`` package, so PEP 660 editable installs fail with
``invalid command 'bdist_wheel'``.  This shim enables the legacy editable
path::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
