"""Partitioners must be total, deterministic and process-stable.

The shard runner routes a trace on the driver and trusts the workers to
see the same ownership; any per-process variation (e.g. Python's salted
``hash()``) would silently break the determinism contract.
"""

from __future__ import annotations

import pickle
import zlib

import pytest

from repro.errors import ConfigError
from repro.shard.partition import (
    HashPartitioner,
    RangePartitioner,
    make_partitioner,
)


def _decimal_keys(count: int, key_bytes: int = 16) -> list:
    return [str(i).zfill(key_bytes).encode("ascii") for i in range(count)]


class TestHashPartitioner:
    def test_covers_all_shards_and_stays_in_range(self) -> None:
        part = HashPartitioner(4)
        seen = set()
        for key in _decimal_keys(2000):
            shard = part.shard_of(key)
            assert 0 <= shard < 4
            seen.add(shard)
        assert seen == {0, 1, 2, 3}

    def test_is_crc32_not_salted_hash(self) -> None:
        part = HashPartitioner(7)
        for key in (b"a", b"key-42", b"0000000000000123"):
            assert part.shard_of(key) == zlib.crc32(key) % 7

    def test_roughly_balanced(self) -> None:
        part = HashPartitioner(4)
        counts = [0, 0, 0, 0]
        for key in _decimal_keys(8000):
            counts[part.shard_of(key)] += 1
        assert min(counts) > 0.7 * max(counts)

    def test_pickle_roundtrip_preserves_routing(self) -> None:
        part = HashPartitioner(5)
        clone = pickle.loads(pickle.dumps(part))
        for key in _decimal_keys(200):
            assert clone.shard_of(key) == part.shard_of(key)

    def test_rejects_nonpositive_shards(self) -> None:
        with pytest.raises(ConfigError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_boundary_semantics(self) -> None:
        part = RangePartitioner([b"b", b"m"])
        assert part.num_shards == 3
        assert part.shard_of(b"a") == 0
        assert part.shard_of(b"b") == 1  # boundaries belong to the right
        assert part.shard_of(b"l") == 1
        assert part.shard_of(b"m") == 2
        assert part.shard_of(b"z") == 2

    def test_decimal_keyspace_split_is_even_and_total(self) -> None:
        part = RangePartitioner.for_decimal_keyspace(4, key_space=1000)
        counts = [0, 0, 0, 0]
        for key in _decimal_keys(1000):
            counts[part.shard_of(key)] += 1
        assert counts == [250, 250, 250, 250]

    def test_preserves_order_across_shards(self) -> None:
        part = RangePartitioner.for_decimal_keyspace(4, key_space=1000)
        keys = _decimal_keys(1000)
        shards = [part.shard_of(key) for key in keys]
        assert shards == sorted(shards)  # ranges, so ownership is monotone

    def test_rejects_unsorted_boundaries(self) -> None:
        with pytest.raises(ConfigError):
            RangePartitioner([b"m", b"b"])

    def test_rejects_empty_boundary(self) -> None:
        with pytest.raises(ConfigError):
            RangePartitioner([b""])

    def test_single_shard_owns_everything(self) -> None:
        part = RangePartitioner([])
        assert part.num_shards == 1
        assert part.shard_of(b"anything") == 0


class TestMakePartitioner:
    def test_hash_kind(self) -> None:
        part = make_partitioner("hash", 4)
        assert isinstance(part, HashPartitioner)
        assert part.num_shards == 4

    def test_range_kind_needs_key_space(self) -> None:
        with pytest.raises(ConfigError):
            make_partitioner("range", 4)
        part = make_partitioner("range", 4, key_space=1000)
        assert isinstance(part, RangePartitioner)
        assert part.num_shards == 4

    def test_range_single_shard_needs_no_key_space(self) -> None:
        part = make_partitioner("range", 1)
        assert part.shard_of(b"k") == 0

    def test_unknown_kind(self) -> None:
        with pytest.raises(ConfigError):
            make_partitioner("modulo", 4)
