"""Unit and property tests for SSTables: lookups, ranges, block costing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EngineError
from repro.lsm.config import LSMConfig
from repro.lsm.keys import key_successor
from repro.lsm.record import put_record
from repro.lsm.sstable import SSTable

CONFIG = LSMConfig(
    memtable_bytes=2048,
    sstable_target_bytes=2048,
    block_bytes=256,
    bloom_bits_per_key=10,
)


def make_table(count: int = 50, value_bytes: int = 20, file_id: int = 1) -> SSTable:
    records = [
        put_record(str(i).zfill(8).encode(), b"v" * value_bytes, i) for i in range(count)
    ]
    return SSTable.from_records(file_id, records, CONFIG)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(EngineError):
            SSTable.from_records(1, [], CONFIG)

    def test_unsorted_rejected(self):
        records = [put_record(b"b", b"v", 1), put_record(b"a", b"v", 2)]
        with pytest.raises(EngineError, match="sorted"):
            SSTable.from_records(1, records, CONFIG)

    def test_duplicate_keys_rejected(self):
        records = [put_record(b"a", b"v", 1), put_record(b"a", b"w", 2)]
        with pytest.raises(EngineError):
            SSTable.from_records(1, records, CONFIG)

    def test_metadata(self):
        table = make_table(10)
        assert table.min_key == b"00000000"
        assert table.max_key == b"00000009"
        assert table.num_records == 10
        assert table.data_size == sum(r.encoded_size for r in table.records)

    def test_blocks_cover_all_records(self):
        table = make_table(100)
        assert table.num_blocks >= 2
        assert sum(table._block_bytes) == table.data_size

    def test_fresh_table_has_no_ldc_state(self):
        table = make_table(5)
        assert table.slice_links == []
        assert table.linked_bytes == 0
        assert not table.frozen
        assert table.refcount == 0


class TestPointLookup:
    def test_hit(self):
        table = make_table(20)
        record = table.get(b"00000007")
        assert record is not None and record.key == b"00000007"

    def test_miss_inside_range(self):
        table = make_table(20)
        assert table.get(b"0000000x") is None

    def test_miss_outside_range(self):
        table = make_table(20)
        assert table.get(b"99999999") is None

    def test_covers_key(self):
        table = make_table(20)
        assert table.covers_key(b"00000010")
        assert not table.covers_key(b"99999999")

    def test_block_bytes_for_key_inside(self):
        table = make_table(100)
        nbytes = table.block_bytes_for_key(b"00000050")
        assert nbytes in table._block_bytes

    def test_block_bytes_for_key_outside_is_zero(self):
        table = make_table(10)
        assert table.block_bytes_for_key(b"zzzz") == 0

    def test_point_read_cost_is_one_block(self):
        """A point lookup never charges more than the largest block."""
        table = make_table(200)
        for index in range(0, 200, 13):
            nbytes = table.block_bytes_for_key(str(index).zfill(8).encode())
            assert 0 < nbytes <= max(table._block_bytes)


class TestRangeQueries:
    def test_records_in_full_range(self):
        table = make_table(30)
        assert len(table.records_in_range(None, None)) == 30

    def test_records_in_subrange(self):
        table = make_table(30)
        records = table.records_in_range(b"00000010", b"00000020")
        assert [r.key for r in records] == [
            str(i).zfill(8).encode() for i in range(10, 20)
        ]

    def test_empty_range(self):
        table = make_table(30)
        assert list(table.records_in_range(b"5", b"4")) == []
        assert table.bytes_in_range(b"5", b"4") == 0
        assert table.block_bytes_in_range(b"5", b"4") == 0

    def test_bytes_in_range_matches_sum(self):
        table = make_table(60)
        lo, hi = b"00000010", b"00000040"
        expected = sum(r.encoded_size for r in table.records_in_range(lo, hi))
        assert table.bytes_in_range(lo, hi) == expected

    def test_count_in_range(self):
        table = make_table(60)
        assert table.count_in_range(b"00000010", b"00000040") == 30

    def test_block_bytes_at_least_data_bytes(self):
        """Whole blocks are the I/O unit: block cost >= data size."""
        table = make_table(200)
        lo, hi = b"00000050", b"00000150"
        assert table.block_bytes_in_range(lo, hi) >= table.bytes_in_range(lo, hi)

    def test_block_bytes_full_range_is_file_size(self):
        table = make_table(100)
        assert table.block_bytes_in_range(None, None) == table.data_size

    @given(
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=0, max_value=120),
    )
    @settings(max_examples=40)
    def test_range_queries_consistent(self, a, b):
        table = make_table(100)
        lo = str(min(a, b)).zfill(8).encode()
        hi = str(max(a, b)).zfill(8).encode()
        records = table.records_in_range(lo, hi)
        assert table.count_in_range(lo, hi) == len(records)
        assert table.bytes_in_range(lo, hi) == sum(r.encoded_size for r in records)
        if records:
            assert table.block_bytes_in_range(lo, hi) >= table.bytes_in_range(lo, hi)
        for record in records:
            assert lo <= record.key < hi

    @given(st.integers(min_value=0, max_value=99))
    @settings(max_examples=30)
    def test_singleton_range_via_successor(self, index):
        """[k, succ(k)) selects exactly key k."""
        table = make_table(100)
        key = str(index).zfill(8).encode()
        records = table.records_in_range(key, key_successor(key))
        assert [r.key for r in records] == [key]
