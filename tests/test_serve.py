"""Unit tests for the open-loop serving layer (repro.serve).

Covers the arrival processes (rates, determinism, tenant merging), the
bounded request queue (disciplines, rejection, conservation ledger),
admission control with engine back-pressure, the serving loop's
wait/service decomposition, per-tenant SLO accounting and namespaced
metrics, and the sharded serve report.
"""

import numpy as np
import pytest

from repro import BackpressureError, ConfigError, DB, QueueFullError
from repro.errors import AdmissionError
from repro.lsm.config import LSMConfig
from repro.serve import (
    DiurnalProcess,
    OnOffProcess,
    PoissonProcess,
    Request,
    RequestQueue,
    ServeSpec,
    Tenant,
    admission_bound,
    make_arrival_process,
    merge_tenant_arrivals,
    run_sharded_serve,
    serve_workload,
    split_rate,
)
from repro.workload import rwb
from repro.workload.ycsb import OP_GET, OP_PUT, Operation


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def take(iterator, count):
    return [next(iterator) for _ in range(count)]


# ----------------------------------------------------------------------
# Tenants
# ----------------------------------------------------------------------
class TestTenant:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Tenant(name="", rate_ops_s=1.0)
        with pytest.raises(ConfigError):
            Tenant(name="t", rate_ops_s=0.0)
        with pytest.raises(ConfigError):
            Tenant(name="t", rate_ops_s=1.0, population=0)

    def test_population_aggregation(self):
        crowd = Tenant.of_population("crowd", users=1_000_000,
                                     per_user_rate_ops_s=0.5)
        assert crowd.rate_ops_s == 500_000.0
        assert crowd.population == 1_000_000
        assert crowd.per_user_rate_ops_s == 0.5

    def test_split_rate(self):
        tenants = split_rate(9000.0, 3)
        assert [t.name for t in tenants] == ["t0", "t1", "t2"]
        assert sum(t.rate_ops_s for t in tenants) == pytest.approx(9000.0)


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
class TestArrivalProcesses:
    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="closed"):
            make_arrival_process("weibull", 100.0)

    def test_poisson_mean_rate(self):
        process = PoissonProcess(10_000.0)
        gaps = take(process.intervals(rng()), 20_000)
        assert np.mean(gaps) == pytest.approx(100.0, rel=0.05)

    def test_arrivals_are_interval_prefix_sums(self):
        process = PoissonProcess(5_000.0)
        gaps = take(process.intervals(rng(3)), 100)
        stamps = take(process.arrivals(rng(3)), 100)
        assert stamps == pytest.approx(np.cumsum(gaps))

    def test_onoff_preserves_average_rate(self):
        process = OnOffProcess(10_000.0, burst=4.0, on_fraction=0.2)
        gaps = take(process.intervals(rng(1)), 60_000)
        assert np.mean(gaps) == pytest.approx(100.0, rel=0.1)

    def test_onoff_is_burstier_than_poisson(self):
        poisson = take(PoissonProcess(10_000.0).intervals(rng(2)), 30_000)
        onoff = take(
            OnOffProcess(10_000.0, burst=4.0, on_fraction=0.2).intervals(rng(2)),
            30_000,
        )
        assert np.std(onoff) > np.std(poisson)

    def test_onoff_validation(self):
        with pytest.raises(ConfigError):
            OnOffProcess(100.0, burst=1.0)
        with pytest.raises(ConfigError):
            OnOffProcess(100.0, burst=6.0, on_fraction=0.2)
        with pytest.raises(ConfigError):
            OnOffProcess(100.0, on_fraction=1.5)

    def test_diurnal_preserves_average_rate(self):
        process = DiurnalProcess(10_000.0, day_us=100_000.0)
        gaps = take(process.intervals(rng(4)), 60_000)
        assert np.mean(gaps) == pytest.approx(100.0, rel=0.1)

    def test_diurnal_rate_follows_profile(self):
        process = DiurnalProcess(
            1_000.0, profile=(0.5, 2.0), day_us=1_000.0
        )
        # Profile mean is 1.25 -> normalised slots are 0.4 and 1.6.
        assert process.rate_at(0.0) == pytest.approx(400.0)
        assert process.rate_at(600.0) == pytest.approx(1600.0)
        assert process.rate_at(1_100.0) == pytest.approx(400.0)

    def test_diurnal_validation(self):
        with pytest.raises(ConfigError):
            DiurnalProcess(100.0, profile=(1.0,))
        with pytest.raises(ConfigError):
            DiurnalProcess(100.0, profile=(1.0, -1.0))


# ----------------------------------------------------------------------
# Tenant merging
# ----------------------------------------------------------------------
class TestMergeTenantArrivals:
    def test_time_ordered_and_complete(self):
        tenants = split_rate(12_000.0, 3)
        merged = merge_tenant_arrivals(tenants, "poisson", 7, 500)
        assert len(merged) == 500
        stamps = [t for t, _ in merged]
        assert stamps == sorted(stamps)

    def test_all_tenants_represented(self):
        tenants = split_rate(12_000.0, 4)
        merged = merge_tenant_arrivals(tenants, "poisson", 7, 2_000)
        indices = {index for _, index in merged}
        assert indices == {0, 1, 2, 3}

    def test_deterministic_in_seed(self):
        tenants = split_rate(8_000.0, 2)
        one = merge_tenant_arrivals(tenants, "onoff", 13, 300)
        two = merge_tenant_arrivals(tenants, "onoff", 13, 300)
        assert one == two
        other = merge_tenant_arrivals(tenants, "onoff", 14, 300)
        assert one != other

    def test_adding_a_tenant_preserves_existing_streams(self):
        # Per-tenant streams come from SeedSequence children, so tenant
        # 0's private timestamps are identical whether it has 1 or 3
        # peers — only the interleaving changes.
        two = merge_tenant_arrivals(split_rate(4_000.0, 2), "poisson", 7, 400)
        tenants3 = split_rate(4_000.0, 2) + [Tenant("extra", 100.0)]
        three = merge_tenant_arrivals(tenants3, "poisson", 7, 400)
        stamps_t0_two = [t for t, i in two if i == 0][:50]
        stamps_t0_three = [t for t, i in three if i == 0][:50]
        assert stamps_t0_two == stamps_t0_three


# ----------------------------------------------------------------------
# Request queue
# ----------------------------------------------------------------------
def request(seq: int, priority: int = 0) -> Request:
    return Request(
        seq=seq,
        arrival_us=float(seq),
        tenant_index=0,
        operation=Operation(OP_GET, b"k"),
        priority=priority,
    )


class TestRequestQueue:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RequestQueue(0)
        with pytest.raises(ConfigError):
            RequestQueue(4, discipline="lifo")

    def test_fifo_order(self):
        queue = RequestQueue(8)
        for seq in range(5):
            queue.offer(request(seq))
        assert [queue.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_priority_order_with_fifo_ties(self):
        queue = RequestQueue(8, discipline="priority")
        queue.offer(request(0, priority=5))
        queue.offer(request(1, priority=1))
        queue.offer(request(2, priority=5))
        queue.offer(request(3, priority=1))
        assert [queue.pop().seq for _ in range(4)] == [1, 3, 0, 2]

    def test_rejects_when_full(self):
        queue = RequestQueue(2)
        queue.offer(request(0))
        queue.offer(request(1))
        with pytest.raises(QueueFullError) as excinfo:
            queue.offer(request(2))
        assert excinfo.value.depth == 2
        assert isinstance(excinfo.value, AdmissionError)
        assert queue.stats.rejected == 1

    def test_effective_capacity_shrinks_bound(self):
        queue = RequestQueue(8)
        queue.offer(request(0))
        with pytest.raises(QueueFullError):
            queue.offer(request(1), effective_capacity=1)
        # The shrunken bound never exceeds the configured capacity.
        queue.offer(request(2), effective_capacity=100)

    def test_conservation_ledger(self):
        queue = RequestQueue(2)
        queue.offer(request(0))
        queue.offer(request(1))
        with pytest.raises(QueueFullError):
            queue.offer(request(2))
        queue.reject_external()
        queue.pop()
        queue.complete()
        assert queue.stats.arrived == 4
        assert queue.stats.admitted == 2
        assert queue.stats.rejected == 2
        assert queue.stats.completed == 1
        queue.stats.check_conservation(queue.depth)

    def test_pop_empty_raises(self):
        with pytest.raises(ConfigError):
            RequestQueue(2).pop()
        with pytest.raises(ConfigError):
            RequestQueue(2, discipline="priority").pop()

    def test_fifo_compaction_keeps_order(self):
        queue = RequestQueue(10_000)
        for seq in range(6_000):
            queue.offer(request(seq))
        popped = [queue.pop().seq for _ in range(5_000)]
        assert popped == list(range(5_000))
        for seq in range(6_000, 6_100):
            queue.offer(request(seq))
        rest = [queue.pop().seq for _ in range(queue.depth)]
        assert rest == list(range(5_000, 6_100))


# ----------------------------------------------------------------------
# Admission control / back-pressure
# ----------------------------------------------------------------------
def tiny_config(**overrides: object) -> LSMConfig:
    defaults = dict(
        memtable_bytes=2048,
        sstable_target_bytes=2048,
        block_bytes=512,
        fan_out=4,
        level1_capacity_bytes=4096,
        max_levels=6,
    )
    defaults.update(overrides)
    return LSMConfig(**defaults)


def db_at_throttle(state: str) -> DB:
    """A real DB whose :meth:`throttle_state` reads ``state``.

    Synchronous mode self-heals — a put that crosses a trigger drains L0
    before returning — so rather than out-writing the engine we fill L0
    to its natural sub-trigger occupancy and pin the cached thresholds
    relative to what we observe.
    """
    db = DB(policy="udc", config=tiny_config())
    value = b"v" * 600
    key = 0
    while len(db.version.levels[0]) < 1:
        db.put(str(key).zfill(16).encode(), value)
        key += 1
    files = len(db.version.levels[0])
    if state == "none":
        db._l0_slowdown, db._l0_stop = files + 1, files + 2
    elif state == "slowdown":
        db._l0_slowdown, db._l0_stop = files, files + 1
    elif state == "stop":
        db._l0_slowdown, db._l0_stop = files, files
    else:  # pragma: no cover - test helper misuse
        raise AssertionError(state)
    return db


class TestAdmissionControl:
    def test_throttle_state_transitions(self):
        for state in ("none", "slowdown", "stop"):
            assert db_at_throttle(state).throttle_state() == state

    def test_fresh_store_is_unthrottled(self):
        assert DB(policy="udc", config=tiny_config()).throttle_state() == "none"

    def test_stop_raises_backpressure_for_writes_only(self):
        db = db_at_throttle("stop")
        serve = ServeSpec(rate_ops_s=1000.0, queue_depth=8)
        write = Operation(OP_PUT, b"k", b"v")
        read = Operation(OP_GET, b"k")
        with pytest.raises(BackpressureError) as excinfo:
            admission_bound(db, serve, write, tenant="gold")
        assert excinfo.value.tenant == "gold"
        assert isinstance(excinfo.value, AdmissionError)
        assert admission_bound(db, serve, read) is None

    def test_slowdown_halves_write_bound(self):
        db = db_at_throttle("slowdown")
        serve = ServeSpec(rate_ops_s=1000.0, queue_depth=8)
        write = Operation(OP_PUT, b"k", b"v")
        assert admission_bound(db, serve, write) == 4
        assert admission_bound(db, serve, Operation(OP_GET, b"k")) is None

    def test_unthrottled_store_imposes_no_bound(self):
        db = db_at_throttle("none")
        serve = ServeSpec(rate_ops_s=1000.0, queue_depth=8)
        assert admission_bound(db, serve, Operation(OP_PUT, b"k", b"v")) is None

    def test_backpressure_flag_disables_the_gate(self):
        db = db_at_throttle("stop")
        serve = ServeSpec(rate_ops_s=1000.0, backpressure=False)
        write = Operation(OP_PUT, b"k", b"v")
        assert admission_bound(db, serve, write) is None


# ----------------------------------------------------------------------
# The serving loop
# ----------------------------------------------------------------------
SPEC = rwb(num_operations=1_200, key_space=400)


class TestServeWorkload:
    def test_unsaturated_load_completes_everything(self):
        serve = ServeSpec(arrival="poisson", rate_ops_s=2_000.0,
                          queue_depth=64, slo_us=5_000.0)
        result = serve_workload(SPEC, "udc", serve)
        assert result.arrived == SPEC.num_operations
        assert result.completed + result.rejected == result.arrived
        assert result.admitted == result.completed

    def test_wait_plus_service_equals_total(self):
        serve = ServeSpec(arrival="poisson", rate_ops_s=20_000.0,
                          queue_depth=64)
        result = serve_workload(SPEC, "udc", serve)
        waits = list(result.wait_latencies.values)
        services = list(result.service_latencies.values)
        totals = list(result.total_latencies.values)
        assert len(waits) == len(services) == len(totals) == result.completed
        for wait, service, total in zip(waits, services, totals):
            assert total == pytest.approx(wait + service)

    def test_open_loop_waits_exceed_closed_loop(self):
        # Above the knee, queue wait dominates: open-loop p99 must exceed
        # the same store's closed-loop (service-only) p99.
        serve = ServeSpec(arrival="poisson", rate_ops_s=60_000.0,
                          queue_depth=128)
        open_result = serve_workload(SPEC, "udc", serve)
        closed = serve_workload(SPEC, "udc", ServeSpec(arrival="closed"))
        assert (
            open_result.total_latencies.percentile(99.0)
            > closed.total_latencies.percentile(99.0)
        )
        assert open_result.mean_wait_us() > 0.0

    def test_deterministic_fingerprint(self):
        serve = ServeSpec(arrival="onoff", rate_ops_s=10_000.0, seed=5)
        one = serve_workload(SPEC, "ldc", serve)
        two = serve_workload(SPEC, "ldc", serve)
        assert one.fingerprint() == two.fingerprint()

    def test_tight_queue_rejects_under_overload(self):
        serve = ServeSpec(arrival="poisson", rate_ops_s=60_000.0,
                          queue_depth=2, slo_us=500.0)
        result = serve_workload(SPEC, "udc", serve)
        assert result.rejected_full > 0
        assert result.rejection_rate > 0.0
        # Rejections count as SLO violations.
        assert result.slo_violation_rate >= result.rejection_rate

    def test_per_tenant_stats_and_metrics(self):
        serve = ServeSpec(arrival="poisson", rate_ops_s=8_000.0,
                          num_tenants=3, slo_us=1_000.0)
        result = serve_workload(SPEC, "udc", serve)
        assert len(result.tenant_stats) == 3
        assert sum(s.completed for s in result.tenant_stats) == result.completed
        snapshot = result.tenant_metrics()
        for stats in result.tenant_stats:
            scoped = snapshot.component(f"tenant.{stats.tenant.name}")
            assert scoped["serve.completed"] == stats.completed

    def test_tenant_slo_override(self):
        tenants = (
            Tenant("gold", 4_000.0, slo_us=50.0),
            Tenant("bulk", 4_000.0),
        )
        serve = ServeSpec(arrival="poisson", rate_ops_s=8_000.0,
                          tenants=tenants, slo_us=100_000.0)
        result = serve_workload(SPEC, "udc", serve)
        gold, bulk = result.tenant_stats
        assert gold.slo_us == 50.0
        assert bulk.slo_us == 100_000.0
        assert gold.slo_violation_rate >= bulk.slo_violation_rate

    def test_priority_discipline_favors_low_priority_value(self):
        tenants = (
            Tenant("gold", 30_000.0, priority=0),
            Tenant("bulk", 30_000.0, priority=9),
        )
        serve = ServeSpec(arrival="poisson", rate_ops_s=60_000.0,
                          tenants=tenants, discipline="priority",
                          queue_depth=128)
        result = serve_workload(SPEC, "udc", serve)
        gold, bulk = result.tenant_stats
        assert gold.completed > 0 and bulk.completed > 0
        assert (
            gold.wait_latencies.mean() < bulk.wait_latencies.mean()
        )

    def test_empty_tenants_tuple_rejected(self):
        with pytest.raises(ConfigError):
            ServeSpec(tenants=()).resolve_tenants()


# ----------------------------------------------------------------------
# Sharded serving
# ----------------------------------------------------------------------
class TestShardedServe:
    def test_counts_and_fold(self):
        serve = ServeSpec(arrival="poisson", rate_ops_s=10_000.0)
        report = run_sharded_serve(SPEC, "udc", serve, num_shards=2)
        assert report.num_shards == 2
        assert report.arrived == SPEC.num_operations
        assert report.completed == sum(
            result.completed for result in report.shard_results
        )
        assert report.elapsed_us == max(
            result.elapsed_us for result in report.shard_results
        )
        assert len(report.total_latencies) == report.completed

    def test_deterministic(self):
        serve = ServeSpec(arrival="poisson", rate_ops_s=10_000.0)
        one = run_sharded_serve(SPEC, "ldc", serve, num_shards=2)
        two = run_sharded_serve(SPEC, "ldc", serve, num_shards=2)
        assert one.fingerprint() == two.fingerprint()

    def test_closed_loop_is_rejected(self):
        with pytest.raises(ConfigError):
            run_sharded_serve(
                SPEC, "udc", ServeSpec(arrival="closed"), num_shards=2
            )

    def test_combined_metrics_namespaces_shards(self):
        serve = ServeSpec(arrival="poisson", rate_ops_s=10_000.0)
        report = run_sharded_serve(SPEC, "udc", serve, num_shards=2)
        shard0 = report.combined_metrics.component("shard.0")
        assert shard0  # per-shard namespace survives the fold
