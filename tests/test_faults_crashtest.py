"""Tests for the crash-point enumeration harness (repro.faults.crashtest)."""

import pytest

from repro import DelayedCompaction, LDCPolicy, LeveledCompaction, TieredCompaction
from repro.faults import crashtest
from repro.lsm.config import LSMConfig


def small_config() -> LSMConfig:
    """Even smaller geometry than the harness default: fast exhaustive runs."""
    return LSMConfig(
        memtable_bytes=1024,
        sstable_target_bytes=1024,
        block_bytes=256,
        fan_out=4,
        level1_capacity_bytes=2048,
        max_levels=6,
        bloom_bits_per_key=10,
        slicelink_threshold=4,
    )


class TestWorkloadGenerator:
    def test_deterministic(self):
        a = crashtest.build_operations(300, 50, seed=7)
        b = crashtest.build_operations(300, 50, seed=7)
        assert a == b
        c = crashtest.build_operations(300, 50, seed=8)
        assert a != c

    def test_mixes_all_op_kinds(self):
        kinds = {op[0] for op in crashtest.build_operations(500, 50, seed=0)}
        assert kinds == {"put", "delete", "batch", "get", "scan"}

    def test_op_effect_batch(self):
        op = ("batch", ((b"a", b"1"), (b"b", None), (b"a", b"2")))
        assert crashtest._op_effect(op) == {b"a": b"2", b"b": None}
        assert crashtest._op_effect(("get", b"a")) == {}


class TestReferenceRun:
    def test_counts_ios_and_maintenance(self):
        ops = crashtest.build_operations(400, 60, seed=1)
        ref = crashtest.run_reference(
            ops, LeveledCompaction, config=small_config(), seed=1
        )
        assert ref.total_ios > 0
        assert ref.flushes >= 1
        assert 0 < ref.final_items <= 60

    def test_ldc_reference_links_and_merges(self):
        """The default acceptance geometry drives LDC links AND merges."""
        ops = crashtest.build_operations(2000, 200, seed=0)
        ref = crashtest.run_reference(ops, LDCPolicy, seed=0)
        assert ref.flushes >= 1
        assert ref.links >= 1
        assert ref.merges >= 1


class TestCrashPoints:
    def test_single_point_fires_and_recovers(self):
        ops = crashtest.build_operations(300, 50, seed=2)
        result = crashtest.run_crash_point(
            ops, LeveledCompaction, 10, config=small_config(), seed=2
        )
        assert result.fired
        assert result.crash_category is not None
        assert result.ok, result.errors

    def test_overshoot_index_never_fires(self):
        ops = crashtest.build_operations(50, 20, seed=3)
        result = crashtest.run_crash_point(
            ops, LeveledCompaction, 10**9, config=small_config(), seed=3
        )
        assert not result.fired
        assert result.ok, result.errors

    @pytest.mark.parametrize("torn", [0.0, 0.5, 1.0])
    def test_torn_fractions_recover(self, torn):
        ops = crashtest.build_operations(300, 50, seed=4)
        result = crashtest.run_crash_point(
            ops,
            LeveledCompaction,
            5,
            config=small_config(),
            seed=4,
            torn_fraction=torn,
        )
        assert result.fired
        assert result.ok, result.errors


class TestFullEnumeration:
    @pytest.mark.parametrize(
        "factory, name",
        [
            (LeveledCompaction, "udc"),
            (LDCPolicy, "ldc"),
            (TieredCompaction, "tiered"),
            (DelayedCompaction, "delayed"),
        ],
    )
    def test_exhaustive_small_run(self, factory, name):
        report = crashtest.run_crashtest(
            factory,
            policy_name=name,
            num_ops=220,
            num_keys=40,
            seed=0,
            stride=1,
            config=small_config(),
        )
        assert report.points_run == report.reference.total_ios
        assert report.points_fired == report.points_run
        assert report.ok, report.summary()
        assert "PASS" in report.summary()

    def test_stride_samples(self):
        report = crashtest.run_crashtest(
            LeveledCompaction,
            policy_name="udc",
            num_ops=220,
            num_keys=40,
            seed=0,
            stride=7,
            config=small_config(),
        )
        expected = len(range(1, report.reference.shard_ios[0] + 1, 7))
        assert report.points_run == expected
        assert report.ok, report.summary()

    def test_progress_callback(self):
        seen = []
        crashtest.run_crashtest(
            LeveledCompaction,
            num_ops=120,
            num_keys=30,
            stride=11,
            config=small_config(),
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen
        assert seen[-1][0] == seen[-1][1] == len(seen)

    def test_invalid_stride_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            crashtest.run_crashtest(LeveledCompaction, stride=0)


class TestShardedCrashtest:
    def test_sharded_enumeration(self):
        """One shard armed per point; fleet recovery keeps the oracle."""
        report = crashtest.run_crashtest(
            LeveledCompaction,
            policy_name="udc",
            num_ops=300,
            num_keys=400,  # wide key space so per-shard memtables fill
            seed=0,
            stride=17,
            shards=2,
            config=small_config(),
        )
        assert report.shards == 2
        armed = {result.shard for result in report.results}
        assert armed == {0, 1}
        assert report.ok, report.summary()

    def test_sharded_reference_counts_all_devices(self):
        ops = crashtest.build_operations(200, 300, seed=0)
        ref = crashtest.run_reference(
            ops, LeveledCompaction, config=small_config(), seed=0, shards=2
        )
        assert len(ref.shard_ios) == 2
        assert all(ios > 0 for ios in ref.shard_ios)


class TestFlashCrashtest:
    """Crash points with an FTL mounted: GC relocations are in-schedule."""

    def test_flash_reference_preserves_logical_behaviour(self):
        """Mounting the FTL changes device traffic, never engine results."""
        ops = crashtest.build_operations(1200, 150, seed=0)
        plain = crashtest.run_reference(
            ops, LDCPolicy, config=small_config(), seed=0
        )
        flashed = crashtest.run_reference(
            ops,
            LDCPolicy,
            config=small_config(),
            seed=0,
            flash=crashtest.CRASHTEST_FLASH_SPEC,
        )
        assert flashed.flushes == plain.flushes
        assert flashed.links == plain.links
        assert flashed.merges == plain.merges
        assert flashed.final_items == plain.final_items
        # GC relocation charges make the flash run strictly busier.
        assert flashed.total_ios > plain.total_ios

    @pytest.mark.parametrize(
        "factory, name", [(LeveledCompaction, "udc"), (LDCPolicy, "ldc")]
    )
    def test_flash_crash_sweep_recovers(self, factory, name):
        report = crashtest.run_crashtest(
            factory,
            policy_name=name,
            num_ops=1200,
            num_keys=150,
            seed=0,
            stride=37,
            config=small_config(),
            flash=crashtest.CRASHTEST_FLASH_SPEC,
        )
        assert report.points_fired == report.points_run
        assert report.ok, report.summary()

    @staticmethod
    def gc_io_indices(factory, ops):
        """1-based charged-I/O indices of GC relocation traffic.

        A fault-free flash run emits one ``device_read``/``device_write``
        trace event per charged transfer — but the fault plan counts the
        *host* write before the GC charges it triggers (the checkpoint
        fires on entry, the relocations nest inside), while the trace
        logs the nested GC events first.  Reconstruct count order by
        moving each triggering host write ahead of its buffered GC
        events.
        """
        from repro import DB, RingBufferSink, Tracer
        from repro.ssd.flash import DeviceConfig

        ring = RingBufferSink(capacity=1 << 20)
        tracer = Tracer()
        tracer.add_sink(ring)
        db = DB(
            config=small_config(),
            policy=factory(),
            profile=DeviceConfig(flash=crashtest.CRASHTEST_FLASH_SPEC),
            tracer=tracer,
        )
        for op in ops:
            crashtest._execute(db, op)
        order = []
        pending_gc = []
        for event in ring.events_of("device_read", "device_write"):
            category = event.fields["category"]
            if category in ("gc_read", "gc_write"):
                pending_gc.append(category)
            elif pending_gc:
                # GC only ever nests inside a host write's charge.
                assert event.kind == "device_write", event
                order.append(category)
                order.extend(pending_gc)
                pending_gc = []
            else:
                order.append(category)
        assert not pending_gc
        return [
            index
            for index, category in enumerate(order, start=1)
            if category in ("gc_read", "gc_write")
        ]

    @pytest.mark.parametrize(
        "factory, name", [(LeveledCompaction, "udc"), (LDCPolicy, "ldc")]
    )
    def test_flash_crash_point_mid_gc_recovers(self, factory, name):
        """A crash landing exactly on a GC charge leaves the store whole."""
        ops = crashtest.build_operations(1200, 150, seed=0)
        gc_points = self.gc_io_indices(factory, ops)
        assert gc_points, f"{name}: workload produced no GC relocations"
        for io_index, torn in zip(gc_points[:4], (0.0, 0.5, 1.0, 0.0)):
            result = crashtest.run_crash_point(
                ops,
                factory,
                io_index,
                config=small_config(),
                seed=0,
                torn_fraction=torn,
                flash=crashtest.CRASHTEST_FLASH_SPEC,
            )
            assert result.fired
            assert result.crash_category in ("gc_read", "gc_write"), (
                result.crash_category
            )
            assert result.ok, result.errors


class TestCorruptionSweep:
    @pytest.mark.parametrize("factory, name", [(LeveledCompaction, "udc"), (LDCPolicy, "ldc")])
    def test_all_delivered_corruptions_detected(self, factory, name):
        report = crashtest.run_corruption_test(
            factory,
            policy_name=name,
            num_ops=400,
            num_keys=60,
            seed=0,
            corruptions=10,
            config=small_config(),
        )
        assert report.scheduled > 0
        assert report.delivered > 0
        assert report.detected == report.delivered
        assert report.missed == 0
        assert report.ok
        assert "PASS" in report.summary()
