"""Shared fixtures for the test suite.

The ``tiny_config`` fixture shrinks every size knob so that flushes and
compactions happen within a few hundred operations, letting unit tests
exercise deep-tree behaviour quickly.
"""

from __future__ import annotations

import random

import pytest

from repro import DB, LDCPolicy, LeveledCompaction, TieredCompaction
from repro.lsm.config import LSMConfig


@pytest.fixture
def tiny_config() -> LSMConfig:
    """A configuration that compacts early and often."""
    return LSMConfig(
        memtable_bytes=2048,
        sstable_target_bytes=2048,
        block_bytes=512,
        fan_out=4,
        level1_capacity_bytes=4096,
        max_levels=6,
        bloom_bits_per_key=10,
        slicelink_threshold=4,
    )


@pytest.fixture
def udc_db(tiny_config: LSMConfig) -> DB:
    return DB(config=tiny_config, policy=LeveledCompaction())


@pytest.fixture
def ldc_db(tiny_config: LSMConfig) -> DB:
    return DB(config=tiny_config, policy=LDCPolicy())


@pytest.fixture
def tiered_db(tiny_config: LSMConfig) -> DB:
    return DB(config=tiny_config, policy=TieredCompaction())


@pytest.fixture(params=["udc", "ldc", "tiered"])
def any_db(request: pytest.FixtureRequest, tiny_config: LSMConfig) -> DB:
    """Parametrised fixture running a test against every policy."""
    policies = {
        "udc": LeveledCompaction,
        "ldc": LDCPolicy,
        "tiered": TieredCompaction,
    }
    return DB(config=tiny_config, policy=policies[request.param]())


def key_of(index: int, width: int = 12) -> bytes:
    """Fixed-width numeric key used throughout the tests."""
    return str(index).zfill(width).encode()


@pytest.fixture
def seeded_rng() -> random.Random:
    return random.Random(0xC0FFEE)
