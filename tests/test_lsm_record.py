"""Unit tests for record types and version-resolution helpers."""

from hypothesis import given, strategies as st

from repro.lsm.record import (
    KIND_DELETE,
    KIND_PUT,
    RECORD_OVERHEAD_BYTES,
    KVRecord,
    delete_record,
    drop_tombstones,
    newest_wins,
    put_record,
    visible_value,
)


class TestConstruction:
    def test_put_record(self):
        record = put_record(b"k", b"v", 7)
        assert record == KVRecord(b"k", 7, KIND_PUT, b"v")
        assert not record.is_tombstone

    def test_delete_record(self):
        record = delete_record(b"k", 9)
        assert record.kind == KIND_DELETE
        assert record.is_tombstone
        assert record.value == b""

    def test_encoded_size(self):
        record = put_record(b"abc", b"xyzw", 1)
        assert record.encoded_size == 3 + 4 + RECORD_OVERHEAD_BYTES

    def test_tombstone_encoded_size_excludes_value(self):
        record = delete_record(b"abc", 1)
        assert record.encoded_size == 3 + RECORD_OVERHEAD_BYTES


class TestNewestWins:
    def test_empty(self):
        assert newest_wins([]) == []

    def test_single(self):
        record = put_record(b"a", b"1", 1)
        assert newest_wins([record]) == [record]

    def test_keeps_highest_seq(self):
        old = put_record(b"a", b"old", 1)
        new = put_record(b"a", b"new", 5)
        assert newest_wins([old, new]) == [new]
        assert newest_wins([new, old]) == [new]

    def test_tombstone_shadows_put(self):
        put = put_record(b"a", b"v", 1)
        tomb = delete_record(b"a", 2)
        assert newest_wins([put, tomb]) == [tomb]

    def test_put_after_delete_resurrects(self):
        tomb = delete_record(b"a", 1)
        put = put_record(b"a", b"v", 2)
        assert newest_wins([tomb, put]) == [put]

    def test_multiple_keys_preserved(self):
        records = [
            put_record(b"a", b"1", 1),
            put_record(b"a", b"2", 3),
            put_record(b"b", b"3", 2),
        ]
        result = newest_wins(records)
        assert [r.key for r in result] == [b"a", b"b"]
        assert result[0].value == b"2"

    @given(
        st.lists(
            st.tuples(
                st.binary(min_size=1, max_size=4),
                st.integers(min_value=0, max_value=10_000),
                st.booleans(),
            ),
            max_size=150,
        )
    )
    def test_matches_dict_model(self, triples):
        """newest_wins over a key-sorted stream == max-seq per key."""
        records = [
            delete_record(key, seq) if is_delete else put_record(key, bytes([seq % 256]), seq)
            for key, seq, is_delete in triples
        ]
        # Make seqs unique to avoid tie ambiguity, then sort by key.
        records = [
            KVRecord(r.key, index, r.kind, r.value) for index, r in enumerate(records)
        ]
        records.sort(key=lambda r: (r.key, r.seq))
        expected = {}
        for record in records:
            if record.key not in expected or record.seq > expected[record.key].seq:
                expected[record.key] = record
        result = newest_wins(records)
        assert {r.key: r for r in result} == expected
        assert [r.key for r in result] == sorted(expected)


class TestHelpers:
    def test_drop_tombstones(self):
        records = [put_record(b"a", b"1", 1), delete_record(b"b", 2)]
        assert drop_tombstones(records) == [records[0]]

    def test_visible_value(self):
        assert visible_value(None) is None
        assert visible_value(delete_record(b"a", 1)) is None
        assert visible_value(put_record(b"a", b"v", 1)) == b"v"
