"""Hypothesis properties of the serving layer's queueing machinery.

Five contracts, over *arbitrary* parameters rather than the seeded
examples of the unit suite:

1. **Seeded determinism** — a merged tenant arrival sequence is a pure
   function of ``(tenants, kind, seed)``: same seed ⇒ identical
   timestamps and tenant labels, different seed ⇒ a different sequence.
2. **Interval/arrival consistency** — for every process family, the
   n-th arrival timestamp equals the running sum of the first n
   inter-arrival gaps drawn from an identically-seeded generator: the
   virtual clock advances by exactly the gaps, nothing else.
3. **Conservation** — under any interleaving of offers, pops and
   completions, the queue ledger balances: every arrival is admitted or
   rejected, every admitted request is completed or still queued.
4. **M/D/1 wait monotonicity** — with deterministic service, raising the
   offered load (holding the arrival sample paths comparable) never
   reduces the mean queue wait.  This is the queueing-theory sanity
   check that the open-loop simulation actually behaves like a queue.
5. **Long-run mean rate** — every process family's empirical mean
   inter-arrival over a long sample matches ``1e6 / rate_ops_s``: the
   modulation (bursts, diurnal profile) reshapes the arrivals but must
   not change the offered load.  This is the property a broken MMPP
   boundary-crossing construction silently violates.
"""

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.serve import (
    RequestQueue,
    Request,
    make_arrival_process,
    merge_tenant_arrivals,
    split_rate,
)
from repro.workload.ycsb import OP_GET, Operation

KINDS = ("poisson", "onoff", "diurnal")

LOOSE = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# 1. Seeded determinism
# ----------------------------------------------------------------------
class TestSeededDeterminism:
    @given(
        kind=st.sampled_from(KINDS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        tenants=st.integers(min_value=1, max_value=5),
        count=st.integers(min_value=1, max_value=200),
    )
    @LOOSE
    def test_same_seed_same_sequence(self, kind, seed, tenants, count):
        population = split_rate(10_000.0, tenants)
        one = merge_tenant_arrivals(population, kind, seed, count)
        two = merge_tenant_arrivals(population, kind, seed, count)
        assert one == two

    @given(
        kind=st.sampled_from(KINDS),
        seed=st.integers(min_value=0, max_value=2**31 - 2),
    )
    @LOOSE
    def test_different_seed_different_sequence(self, kind, seed):
        population = split_rate(10_000.0, 2)
        one = merge_tenant_arrivals(population, kind, seed, 100)
        two = merge_tenant_arrivals(population, kind, seed + 1, 100)
        assert one != two

    @given(
        kind=st.sampled_from(KINDS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        count=st.integers(min_value=2, max_value=300),
    )
    @LOOSE
    def test_merge_is_time_ordered(self, kind, seed, count):
        population = split_rate(8_000.0, 3)
        merged = merge_tenant_arrivals(population, kind, seed, count)
        stamps = [stamp for stamp, _ in merged]
        assert stamps == sorted(stamps)
        assert all(stamp > 0 for stamp in stamps)


# ----------------------------------------------------------------------
# 2. Arrivals are the running sum of the intervals
# ----------------------------------------------------------------------
class TestIntervalArrivalConsistency:
    @given(
        kind=st.sampled_from(KINDS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rate=st.floats(min_value=10.0, max_value=1e6),
        count=st.integers(min_value=1, max_value=300),
    )
    @LOOSE
    def test_nth_arrival_is_prefix_sum(self, kind, seed, rate, count):
        process = make_arrival_process(kind, rate)
        gap_rng = np.random.default_rng(seed)
        stamp_rng = np.random.default_rng(seed)
        gaps = process.intervals(gap_rng)
        stamps = process.arrivals(stamp_rng)
        running = 0.0
        for _ in range(count):
            gap = next(gaps)
            assert gap >= 0.0
            running += gap
            assert next(stamps) == running


# ----------------------------------------------------------------------
# 3. Conservation under arbitrary interleavings
# ----------------------------------------------------------------------
def _request(seq: int, priority: int) -> Request:
    return Request(
        seq=seq,
        arrival_us=float(seq),
        tenant_index=0,
        operation=Operation(OP_GET, b"k"),
        priority=priority,
    )


class TestConservation:
    @given(
        events=st.lists(
            st.tuples(
                st.sampled_from(("offer", "serve", "external")),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=300,
        ),
        capacity=st.integers(min_value=1, max_value=8),
        discipline=st.sampled_from(("fifo", "priority")),
    )
    @LOOSE
    def test_ledger_balances_at_every_step(self, events, capacity, discipline):
        queue = RequestQueue(capacity, discipline)
        in_flight = 0
        seq = 0
        for action, priority in events:
            if action == "offer":
                try:
                    queue.offer(_request(seq, priority))
                except Exception:
                    pass
                seq += 1
            elif action == "external":
                queue.reject_external()
            elif queue.depth:
                queue.pop()
                in_flight += 1
            if in_flight:  # a popped request completes before the next event
                queue.complete()
                in_flight -= 1
            queue.stats.check_conservation(queue.depth)
        stats = queue.stats
        assert stats.arrived == stats.admitted + stats.rejected
        assert stats.admitted == stats.completed + queue.depth

    @given(
        priorities=st.lists(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=64
        )
    )
    @LOOSE
    def test_priority_pop_order_is_stable_sort(self, priorities):
        queue = RequestQueue(len(priorities), discipline="priority")
        for seq, priority in enumerate(priorities):
            queue.offer(_request(seq, priority))
        popped = [queue.pop() for _ in range(len(priorities))]
        expected = sorted(
            range(len(priorities)), key=lambda seq: (priorities[seq], seq)
        )
        assert [request.seq for request in popped] == expected


# ----------------------------------------------------------------------
# 4. M/D/1 mean-wait monotonicity in offered load
# ----------------------------------------------------------------------
def mean_wait_md1(service_us: float, rate_ops_s: float, seed: int,
                  count: int = 400) -> float:
    """Mean queue wait of an M/D/1 queue simulated the serve-loop way.

    One deterministic server, unbounded FIFO: service begins at
    ``max(arrival, previous completion)`` — the same recurrence the
    serving loop induces on the DB clock.  Scaling the rate rescales the
    *same* exponential sample path, so waits are comparable across loads.
    """
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1e6 / rate_ops_s, size=count)
    arrivals = np.cumsum(gaps)
    free_at = 0.0
    wait_total = 0.0
    for arrival in arrivals:
        begin = max(arrival, free_at)
        wait_total += begin - arrival
        free_at = begin + service_us
    return wait_total / count


# ----------------------------------------------------------------------
# 5. Long-run mean inter-arrival matches the configured rate
# ----------------------------------------------------------------------

#: Per-kind cycle parameters chosen so a 60k-gap sample spans many
#: burst/quiet cycles (onoff) or virtual days (diurnal); the sample mean
#: then estimates the long-run rate to within a few percent, while the
#: pre-fix MMPP boundary bug sat 12-25% high under this configuration.
RATE_CONFIGS = (
    ("poisson", 10_000.0, ()),
    ("onoff", 2_000.0, (("mean_cycle_us", 25_000.0),)),
    ("diurnal", 5_000.0, (("day_us", 100_000.0),)),
)


class TestLongRunMeanRate:
    @given(
        config=st.sampled_from(RATE_CONFIGS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(
        max_examples=9,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_mean_interarrival_matches_configured_rate(self, config, seed):
        kind, rate, params = config
        process = make_arrival_process(kind, rate, **dict(params))
        rng = np.random.default_rng(seed)
        gaps = np.fromiter(
            itertools.islice(process.intervals(rng), 60_000), dtype=float
        )
        assert float(np.mean(gaps)) == pytest.approx(1e6 / rate, rel=0.08)


class TestMD1Monotonicity:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        service_us=st.floats(min_value=5.0, max_value=200.0),
        low=st.floats(min_value=0.1, max_value=0.85),
        step=st.floats(min_value=1.05, max_value=3.0),
    )
    @LOOSE
    def test_mean_wait_is_monotone_in_offered_load(
        self, seed, service_us, low, step
    ):
        capacity = 1e6 / service_us  # ops/s the deterministic server can do
        lows = mean_wait_md1(service_us, capacity * low, seed)
        highs = mean_wait_md1(service_us, capacity * low * step, seed)
        assert highs >= lows

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @LOOSE
    def test_heavy_load_waits_dominate_light_load(self, seed):
        service_us = 50.0
        capacity = 1e6 / service_us
        light = mean_wait_md1(service_us, 0.2 * capacity, seed)
        heavy = mean_wait_md1(service_us, 1.5 * capacity, seed)
        assert heavy > light
        assert heavy > service_us  # saturated: waits exceed a service time
