"""Integration tests for the workload runner and reports."""

import pytest

from repro import LDCPolicy, LeveledCompaction
from repro.harness.report import format_table, improvement, mib, paper_row, ratio
from repro.harness.runner import run_workload
from repro.lsm.config import LSMConfig
from repro.workload import ro, rwb, scn_rwb, wo, ycsb_f

SMALL = LSMConfig(
    memtable_bytes=4096,
    sstable_target_bytes=4096,
    block_bytes=1024,
    fan_out=4,
    level1_capacity_bytes=8192,
    slicelink_threshold=4,
)


def small_rwb(**overrides):
    defaults = dict(
        num_operations=2000, key_space=500, value_bytes=64, preload_keys=500
    )
    defaults.update(overrides)
    return rwb(**defaults)


class TestRunWorkload:
    def test_basic_run_produces_metrics(self):
        result = run_workload(small_rwb(), LeveledCompaction, config=SMALL)
        assert result.operations == 2000
        assert result.elapsed_us > 0
        assert result.throughput_ops_s > 0
        assert result.mean_latency_us > 0
        assert len(result.latencies) == 2000
        assert result.workload == "RWB"
        assert result.policy == "udc"

    def test_latency_split_by_kind(self):
        result = run_workload(small_rwb(), LeveledCompaction, config=SMALL)
        assert len(result.write_latencies) + len(result.read_latencies) == 2000
        assert len(result.write_latencies) == pytest.approx(1000, abs=150)

    def test_preload_not_measured(self):
        """Loaded keys must not count toward measured operations or I/O."""
        result = run_workload(
            ro(num_operations=500, key_space=300, preload_keys=300, value_bytes=64),
            LeveledCompaction,
            config=SMALL,
        )
        assert result.operations == 500
        assert result.user_bytes_written == 0  # read-only measured phase
        assert len(result.write_latencies) == 0

    def test_scan_workload(self):
        result = run_workload(
            scn_rwb(
                num_operations=400,
                key_space=300,
                preload_keys=300,
                value_bytes=64,
                scan_length=10,
            ),
            LeveledCompaction,
            config=SMALL,
        )
        assert len(result.scan_latencies) > 0

    def test_rmw_workload_runs(self):
        result = run_workload(
            ycsb_f(num_operations=300, key_space=200, preload_keys=200, value_bytes=64),
            LeveledCompaction,
            config=SMALL,
        )
        assert result.operations == 300

    def test_ldc_policy_counters_surface(self):
        result = run_workload(
            small_rwb(num_operations=4000), LDCPolicy, config=SMALL
        )
        assert result.policy == "ldc"
        assert result.link_count > 0
        assert result.final_threshold == SMALL.slicelink_threshold

    def test_deterministic(self):
        a = run_workload(small_rwb(), LeveledCompaction, config=SMALL)
        b = run_workload(small_rwb(), LeveledCompaction, config=SMALL)
        assert a.elapsed_us == b.elapsed_us
        assert a.compaction_bytes_total == b.compaction_bytes_total
        assert a.latencies.percentile(99) == b.latencies.percentile(99)

    def test_summary_keys(self):
        result = run_workload(small_rwb(), LeveledCompaction, config=SMALL)
        summary = result.summary()
        assert {"throughput_ops_s", "p999_us", "write_amplification"} <= set(summary)

    def test_write_only_counts_user_bytes(self):
        result = run_workload(
            wo(num_operations=1000, key_space=300, value_bytes=64),
            LeveledCompaction,
            config=SMALL,
        )
        assert result.user_bytes_written == 1000 * (16 + 64 + 13)

    def test_timeline_collected(self):
        result = run_workload(
            small_rwb(), LeveledCompaction, config=SMALL, timeline_bucket_us=10_000
        )
        assert len(result.timeline.points()) >= 1


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [("alpha", 1.0), ("b", 123456.0)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "alpha" in lines[3]

    def test_improvement(self):
        assert improvement(150.0, 100.0) == "+50.0%"
        assert improvement(50.0, 100.0) == "-50.0%"
        assert improvement(1.0, 0.0) == "n/a"

    def test_ratio(self):
        assert ratio(262.0, 100.0) == "2.62x"
        assert ratio(1.0, 0.0) == "n/a"

    def test_mib(self):
        assert mib(2**20) == 1.0

    def test_paper_row(self):
        row = paper_row("P99.9", "469.66us", "123.4us")
        assert "paper" in row and "measured" in row
