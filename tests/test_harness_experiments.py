"""Tiny-scale smoke tests for every per-figure experiment entry point.

The benchmarks run these at realistic scale and assert the paper's shapes;
here we only check each function runs end-to-end and returns the expected
structure — fast enough for the unit suite.
"""

import pytest

from repro.harness import experiments

OPS = 1500
KEYS = 600


class TestFigureExperiments:
    def test_fig01(self):
        out = experiments.fig01_latency_fluctuation(ops=OPS, key_space=KEYS)
        assert out["fluctuation_ratio"] >= 1.0
        assert len(out["points"]) >= 1

    def test_fig01_scheduled_interference(self):
        """The PR's headline mechanism claim, pinned as an acceptance test.

        With compaction truly in the background (scheduler on), UDC's
        large captured rounds occupy the device channel and trip L0
        throttling in bursts, so its write p99/p50 spread must strictly
        exceed LDC's — the interference asymmetry the paper's Fig. 1 and
        Figs. 8-9 motivate.  The margin at these parameters is ~80x vs
        ~1.3x, so the strict inequality is far from a knife edge.
        """
        out = experiments.fig01_scheduled_interference(ops=6000, key_space=3000)
        spreads = out["p99_p50_spread"]
        assert spreads["UDC"] > spreads["LDC"]
        # The interference is real and attributed: both policies throttle,
        # foreground I/O measurably waits behind background chunks, and
        # the timeline's stall attribution marks the spike buckets.
        assert out["stall_time_us"]["UDC"] > 0
        assert out["device_wait_us"]["UDC"] > 0
        assert any(point.stall_us > 0 for point in out["points"]["UDC"])

    def test_fig01_open_loop(self):
        """The serving-layer acceptance claim, pinned at test scale.

        At a fixed offered load above the UDC knee, UDC's queue-inflated
        p99.9 AND its SLO violation rate must be strictly worse than
        LDC's.  Mechanism: with inline compaction (the paper's stock
        setting) UDC charges whole rounds to single triggering writes —
        multi-ms service spikes that build a queue every request behind
        them inherits; LDC's link-and-merge steps are too small to.  The
        margin is 2-4x across seeds and scales, so the strict
        inequalities are far from a knife edge.
        """
        out = experiments.fig01_open_loop(ops=2000, key_space=700)
        head = out["headline"]
        assert head["above_knee"]
        assert head["udc_worse_p999"]
        assert head["udc_worse_slo"]
        assert head["udc_p999_us"] > head["ldc_p999_us"]
        assert head["udc_slo_violation_rate"] > head["ldc_slo_violation_rate"]
        # Both curves cover every tested load, in offered-rate order.
        for policy in ("UDC", "LDC"):
            curve = out["curves"][policy]
            assert len(curve) == len(out["load_fractions"])
            rates = [row["offered_rate_ops_s"] for row in curve]
            assert rates == sorted(rates)

    def test_tab1(self):
        shares = experiments.tab1_time_breakdown(ops=OPS, key_space=KEYS)
        assert set(shares) == {"DoCompactionWork", "file system", "DoWrite", "Others"}
        assert sum(shares.values()) == pytest.approx(1.0, abs=0.01)

    def test_fig07(self):
        out = experiments.fig07_fanout_udc(fan_outs=(3, 10), ops=OPS, key_space=KEYS)
        assert len(out.rows) == 2
        assert all(row.policy == "UDC" for row in out.rows)

    def test_fig08(self):
        out = experiments.fig08_tail_latency(ops=OPS, key_space=KEYS)
        assert set(out) == {"UDC", "LDC"}
        assert set(out["UDC"]) == {90.0, 99.0, 99.9, 99.99}

    def test_fig09(self):
        out = experiments.fig09_avg_latency(ops=OPS, key_space=KEYS)
        assert out.result_for("WH", "UDC").mean_latency_us > 0
        assert out.result_for("RH", "LDC").mean_latency_us > 0

    def test_fig10a(self):
        out = experiments.fig10a_throughput_get(ops=OPS, key_space=KEYS)
        assert len(out.rows) == 10  # 5 mixes x 2 policies
        assert out.result_for("WO", "LDC").throughput_ops_s > 0

    def test_fig10b(self):
        out = experiments.fig10b_throughput_scan(ops=OPS, key_space=KEYS)
        assert len(out.rows) == 6

    def test_fig10c(self):
        out = experiments.fig10c_compaction_io(ops=OPS, key_space=KEYS)
        assert out.result_for("WO", "UDC").compaction_bytes_total >= 0

    def test_fig11(self):
        out = experiments.fig11_zipf(zipf_constants=(1.0,), ops=OPS, key_space=KEYS)
        names = {row.workload for row in out.rows}
        assert names == {"RWB", "Zipf1"}

    def test_fig12ad(self):
        out = experiments.fig12ad_slicelink_threshold(
            thresholds=(2, 10), ops=OPS, key_space=KEYS
        )
        labels = {row.workload for row in out.rows}
        assert labels == {"T_s=2", "T_s=10", "reference"}

    def test_fig12be(self):
        out = experiments.fig12be_fanout_sweep(fan_outs=(4,), ops=OPS, key_space=KEYS)
        assert len(out.rows) == 2

    def test_fig12cf(self):
        out = experiments.fig12cf_bloom_rwb(bits_per_key=(10,), ops=OPS, key_space=KEYS)
        assert len(out.rows) == 2

    def test_fig13(self):
        out = experiments.fig13_bloom_ro(bits_per_key=(4, 16), ops=OPS, key_space=KEYS)
        assert set(out) == {4, 16}
        assert out[4]["block_reads"] >= out[16]["block_reads"]
        assert out[16]["filter_bytes_per_table"] == 4 * out[4]["filter_bytes_per_table"]

    def test_fig14(self):
        out = experiments.fig14_scalability(request_counts=(OPS,))
        assert len(out.rows) == 2

    def test_fig15(self):
        out = experiments.fig15_space(request_counts=(OPS,))
        ldc = out.result_for(f"N={OPS}", "LDC")
        assert ldc.space_bytes >= ldc.live_bytes

    def test_missing_row_raises(self):
        out = experiments.fig14_scalability(request_counts=(OPS,))
        with pytest.raises(KeyError):
            out.result_for("nope", "UDC")


class TestAblations:
    def test_adaptive(self):
        out = experiments.ablation_adaptive_threshold(ops=OPS, key_space=KEYS)
        assert len(out.rows) == 6
        adaptive = out.result_for("WH", "LDC-adaptive")
        assert adaptive.final_threshold is not None

    def test_tiered(self):
        out = experiments.ablation_tiered_tail(ops=OPS, key_space=KEYS)
        policies = {row.policy for row in out.rows}
        assert policies == {"UDC", "LDC", "Tiered", "Delayed"}

    def test_asymmetry(self):
        out = experiments.ablation_device_asymmetry(
            write_bandwidths=(250.0, 2000.0), ops=OPS, key_space=KEYS
        )
        assert len(out.rows) == 4


class TestDeviceWA:
    def test_fig_device_wa_structure(self):
        report = experiments.fig_device_wa(ops=OPS, key_space=KEYS)
        rows = report["rows"]
        assert set(rows) == set(experiments.available_policies())
        for row in rows.values():
            assert row["device_wa"] >= 1.0
            assert row["total_wa"] == pytest.approx(
                row["host_wa"] * row["device_wa"], rel=1e-6
            )
            assert row["blocks_erased"] >= 0
        winner = min(rows, key=lambda name: rows[name]["total_wa"])
        assert report["winner_total_wa"] == winner
        # Capacity comes from the flash-off probe times the margin.
        assert report["flash"].logical_bytes == max(
            int(report["probe_space_bytes"] * experiments.DEVICE_WA_SIZE_MARGIN),
            1 << 20,
        )
        rendered = experiments.format_device_wa_report(report)
        assert "total WA" in rendered and "lowest total WA" in rendered

    def test_fig_device_wa_rejects_bad_op(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            experiments.fig_device_wa(
                ops=OPS, key_space=KEYS, over_provisioning=-0.5
            )
