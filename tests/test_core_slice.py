"""Unit tests for slices and SliceLinks."""

import pytest

from repro.core.slice import Slice, attach_slice, detach_all_slices, slices_newest_first
from repro.errors import EngineError
from repro.lsm.config import LSMConfig
from repro.lsm.keys import key_successor
from repro.lsm.record import put_record
from repro.lsm.sstable import SSTable

CONFIG = LSMConfig(
    memtable_bytes=2048,
    sstable_target_bytes=2048,
    block_bytes=256,
)

_ids = iter(range(1, 1000))


def frozen_table(lo: int, hi: int) -> SSTable:
    records = [
        put_record(str(i).zfill(6).encode(), b"v" * 20, i) for i in range(lo, hi)
    ]
    table = SSTable.from_records(next(_ids), records, CONFIG)
    table.frozen = True
    return table


def active_table(lo: int, hi: int) -> SSTable:
    records = [
        put_record(str(i).zfill(6).encode(), b"v" * 20, i) for i in range(lo, hi)
    ]
    return SSTable.from_records(next(_ids), records, CONFIG)


class TestSlice:
    def test_requires_frozen_source(self):
        with pytest.raises(EngineError, match="frozen"):
            Slice(active_table(0, 10), None, None, link_seq=1)

    def test_size_and_count_reflect_range(self):
        source = frozen_table(0, 100)
        piece = Slice(source, b"000020", b"000030", link_seq=1)
        assert piece.record_count == 10
        assert piece.size_bytes == source.bytes_in_range(b"000020", b"000030")

    def test_full_range_slice(self):
        source = frozen_table(0, 50)
        piece = Slice(source, None, None, link_seq=1)
        assert piece.record_count == 50
        assert piece.size_bytes == source.data_size

    def test_point_lookup_respects_bounds(self):
        source = frozen_table(0, 100)
        piece = Slice(source, b"000020", b"000030", link_seq=1)
        assert piece.get(b"000025") is not None
        assert piece.get(b"000050") is None  # in source, outside slice
        assert piece.covers_key(b"000020")
        assert not piece.covers_key(b"000030")  # hi is exclusive

    def test_records_sorted_within_range(self):
        source = frozen_table(0, 100)
        piece = Slice(source, b"000010", b"000015", link_seq=1)
        assert [r.key for r in piece.records()] == [
            str(i).zfill(6).encode() for i in range(10, 15)
        ]

    def test_records_in_range_intersects(self):
        source = frozen_table(0, 100)
        piece = Slice(source, b"000010", b"000050", link_seq=1)
        records = piece.records_in_range(b"000040", b"000060")
        assert [r.key for r in records] == [
            str(i).zfill(6).encode() for i in range(40, 50)
        ]

    def test_read_cost_bounded_by_file_and_at_least_data(self):
        source = frozen_table(0, 200)
        piece = Slice(source, b"000050", b"000060", link_seq=1)
        cost = piece.read_block_bytes()
        assert piece.size_bytes <= cost <= source.data_size

    def test_point_read_cost(self):
        source = frozen_table(0, 200)
        piece = Slice(source, b"000050", b"000060", link_seq=1)
        assert piece.point_read_block_bytes(b"000055") > 0
        assert piece.point_read_block_bytes(b"000070") == 0

    def test_scan_cost_zero_outside(self):
        source = frozen_table(0, 100)
        piece = Slice(source, b"000010", b"000020", link_seq=1)
        assert piece.scan_block_bytes(b"000050", None) == 0


class TestAttachDetach:
    def test_attach_updates_linked_bytes(self):
        target = active_table(0, 10)
        source = frozen_table(10, 30)
        piece = Slice(source, b"000010", b"000020", link_seq=1)
        attach_slice(target, piece)
        assert target.slice_links == [piece]
        assert target.linked_bytes == piece.size_bytes

    def test_attach_to_frozen_target_rejected(self):
        target = frozen_table(0, 10)
        source = frozen_table(10, 30)
        piece = Slice(source, None, None, link_seq=1)
        with pytest.raises(EngineError):
            attach_slice(target, piece)

    def test_detach_all(self):
        target = active_table(0, 10)
        source = frozen_table(10, 30)
        for seq in range(3):
            attach_slice(target, Slice(source, None, None, link_seq=seq))
        detached = detach_all_slices(target)
        assert len(detached) == 3
        assert target.slice_links == []
        assert target.linked_bytes == 0

    def test_newest_first_ordering(self):
        target = active_table(0, 10)
        source = frozen_table(10, 30)
        pieces = [Slice(source, None, None, link_seq=seq) for seq in (2, 9, 5)]
        for piece in pieces:
            attach_slice(target, piece)
        ordered = slices_newest_first(target)
        assert [p.link_seq for p in ordered] == [9, 5, 2]
