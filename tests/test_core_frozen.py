"""Unit tests for the frozen region (refcounted delayed GC)."""

import pytest

from repro.core.frozen import FrozenRegion
from repro.errors import EngineError
from repro.lsm.config import LSMConfig
from repro.lsm.record import put_record
from repro.lsm.sstable import SSTable

CONFIG = LSMConfig()
_ids = iter(range(1, 1000))


def make_table(count: int = 10) -> SSTable:
    records = [put_record(str(i).zfill(6).encode(), b"v" * 10, i) for i in range(count)]
    return SSTable.from_records(next(_ids), records, CONFIG)


class TestFreeze:
    def test_freeze_marks_table(self):
        region = FrozenRegion()
        table = make_table()
        region.freeze(table, references=3)
        assert table.frozen
        assert table.refcount == 3
        assert table in region
        assert len(region) == 1
        assert region.space_bytes == table.data_size

    def test_zero_references_rejected(self):
        with pytest.raises(EngineError):
            FrozenRegion().freeze(make_table(), references=0)

    def test_double_freeze_rejected(self):
        region = FrozenRegion()
        table = make_table()
        region.freeze(table, references=1)
        with pytest.raises(EngineError, match="already"):
            region.freeze(table, references=1)

    def test_table_with_links_cannot_freeze(self):
        """Paper §III-D: an SSTable with SliceLinks cannot be linked down."""
        region = FrozenRegion()
        target = make_table()
        source = make_table()
        source.frozen = True
        from repro.core.slice import Slice, attach_slice

        attach_slice(target, Slice(source, None, None, link_seq=1))
        with pytest.raises(EngineError, match="SliceLinks"):
            region.freeze(target, references=1)


class TestRelease:
    def test_release_decrements(self):
        region = FrozenRegion()
        table = make_table()
        region.freeze(table, references=2)
        assert region.release(table) is False
        assert table.refcount == 1
        assert table in region

    def test_final_release_recycles(self):
        region = FrozenRegion()
        table = make_table()
        region.freeze(table, references=2)
        region.release(table)
        assert region.release(table) is True
        assert table not in region
        assert not table.frozen
        assert region.space_bytes == 0
        assert region.total_recycled == 1

    def test_release_unfrozen_rejected(self):
        with pytest.raises(EngineError):
            FrozenRegion().release(make_table())

    def test_space_accounts_multiple_files(self):
        region = FrozenRegion()
        a, b = make_table(20), make_table(30)
        region.freeze(a, references=1)
        region.freeze(b, references=1)
        assert region.space_bytes == a.data_size + b.data_size
        region.release(a)
        assert region.space_bytes == b.data_size

    def test_counters(self):
        region = FrozenRegion()
        for _ in range(3):
            table = make_table()
            region.freeze(table, references=1)
            region.release(table)
        assert region.total_frozen_ever == 3
        assert region.total_recycled == 3


class TestInvariants:
    def test_clean_region_passes(self):
        region = FrozenRegion()
        region.freeze(make_table(), references=2)
        region.check_invariants()

    def test_space_drift_detected(self):
        region = FrozenRegion()
        region.freeze(make_table(), references=1)
        region._space_bytes += 7
        with pytest.raises(EngineError, match="space"):
            region.check_invariants()
