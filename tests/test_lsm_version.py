"""Unit tests for the version set (levels, overlaps, scoring)."""

import pytest

from repro.errors import EngineError
from repro.lsm.config import LSMConfig
from repro.lsm.keys import key_successor
from repro.lsm.record import put_record
from repro.lsm.sstable import SSTable
from repro.lsm.version import VersionSet

CONFIG = LSMConfig(
    memtable_bytes=2048,
    sstable_target_bytes=2048,
    block_bytes=512,
    fan_out=4,
    level1_capacity_bytes=4096,
    max_levels=5,
    l0_compaction_trigger=4,
)

_next_id = iter(range(1, 10_000))


def table_over(lo: int, hi: int, value_bytes: int = 10) -> SSTable:
    records = [
        put_record(str(i).zfill(6).encode(), b"v" * value_bytes, i)
        for i in range(lo, hi)
    ]
    return SSTable.from_records(next(_next_id), records, CONFIG)


@pytest.fixture
def version():
    return VersionSet(CONFIG)


class TestAddRemove:
    def test_add_to_level0_allows_overlap(self, version):
        version.add_file(0, table_over(0, 10))
        version.add_file(0, table_over(5, 15))
        assert version.num_files(0) == 2

    def test_sorted_level_rejects_overlap(self, version):
        version.add_file(1, table_over(0, 10))
        with pytest.raises(EngineError, match="overlaps"):
            version.add_file(1, table_over(5, 15))

    def test_sorted_level_keeps_key_order(self, version):
        version.add_file(1, table_over(20, 30))
        version.add_file(1, table_over(0, 10))
        version.add_file(1, table_over(40, 50))
        mins = [t.min_key for t in version.files(1)]
        assert mins == sorted(mins)

    def test_remove_file(self, version):
        table = table_over(0, 10)
        version.add_file(1, table)
        version.remove_file(1, table)
        assert version.num_files() == 0

    def test_remove_absent_raises(self, version):
        with pytest.raises(EngineError):
            version.remove_file(1, table_over(0, 5))

    def test_double_add_raises(self, version):
        table = table_over(0, 10)
        version.add_file(1, table)
        with pytest.raises(EngineError, match="already"):
            version.add_file(2, table)

    def test_frozen_file_rejected(self, version):
        table = table_over(0, 10)
        table.frozen = True
        with pytest.raises(EngineError, match="frozen"):
            version.add_file(1, table)

    def test_level_bounds_checked(self, version):
        with pytest.raises(EngineError):
            version.add_file(99, table_over(0, 5))

    def test_level_of(self, version):
        table = table_over(0, 10)
        version.add_file(2, table)
        assert version.level_of(table) == 2
        assert version.contains(table)
        version.remove_file(2, table)
        assert not version.contains(table)
        with pytest.raises(EngineError):
            version.level_of(table)


class TestSizesAndCounters:
    def test_level_data_size_tracks_adds_and_removes(self, version):
        a, b = table_over(0, 10), table_over(20, 30)
        version.add_file(1, a)
        version.add_file(1, b)
        assert version.level_data_size(1) == a.data_size + b.data_size
        version.remove_file(1, a)
        assert version.level_data_size(1) == b.data_size

    def test_total_data_size(self, version):
        a, b = table_over(0, 10), table_over(0, 10)
        version.add_file(0, a)
        version.add_file(2, b)
        assert version.total_data_size() == a.data_size + b.data_size

    def test_note_linked_bytes(self, version):
        table = table_over(0, 10)
        version.add_file(1, table)
        version.note_linked_bytes(1, 500)
        assert version.level_data_size(1) == table.data_size + 500
        version.note_linked_bytes(1, -500)
        assert version.level_data_size(1) == table.data_size

    def test_linked_bytes_underflow_raises(self, version):
        with pytest.raises(EngineError, match="underflow"):
            version.note_linked_bytes(1, -1)

    def test_deepest_nonempty_level(self, version):
        assert version.deepest_nonempty_level() == -1
        version.add_file(0, table_over(0, 5))
        version.add_file(3, table_over(10, 15))
        assert version.deepest_nonempty_level() == 3


class TestOverlapQueries:
    def test_overlapping_finds_intersections(self, version):
        a = table_over(0, 10)
        b = table_over(20, 30)
        version.add_file(1, a)
        version.add_file(1, b)
        lo = b"000005"
        hi = b"000025"
        assert version.overlapping(1, lo, hi) == [a, b]
        assert version.overlapping(1, b"000011", b"000019") == []

    def test_overlapping_unbounded(self, version):
        a = table_over(0, 10)
        version.add_file(1, a)
        assert version.overlapping(1, None, None) == [a]

    def test_level0_returned_in_age_order(self, version):
        a = table_over(0, 10)
        b = table_over(0, 10)
        version.add_file(0, b)
        version.add_file(0, a)
        result = version.overlapping(0, None, None)
        assert [t.file_id for t in result] == sorted(t.file_id for t in result)

    def test_find_file(self, version):
        a = table_over(0, 10)
        b = table_over(20, 30)
        version.add_file(1, a)
        version.add_file(1, b)
        assert version.find_file(1, b"000005") is a
        assert version.find_file(1, b"000025") is b
        assert version.find_file(1, b"000015") is None  # gap
        assert version.find_file(1, b"999999") is None

    def test_find_file_rejected_on_level0(self, version):
        with pytest.raises(EngineError):
            version.find_file(0, b"x")

    def test_find_responsible_file_tiles_key_space(self, version):
        """Every key has a responsible file: gaps belong to the right
        neighbour, keys past the end to the last file (Example 3.2)."""
        a = table_over(10, 20)
        b = table_over(30, 40)
        version.add_file(1, a)
        version.add_file(1, b)
        assert version.find_responsible_file(1, b"000000") is a  # below all
        assert version.find_responsible_file(1, b"000015") is a  # inside a
        assert version.find_responsible_file(1, b"000025") is b  # gap -> right
        assert version.find_responsible_file(1, b"000035") is b  # inside b
        assert version.find_responsible_file(1, b"999999") is b  # past end

    def test_find_responsible_file_empty_level(self, version):
        assert version.find_responsible_file(1, b"k") is None

    def test_find_responsible_file_rejected_on_level0(self, version):
        with pytest.raises(EngineError):
            version.find_responsible_file(0, b"x")


class TestScoring:
    def test_level0_scores_by_file_count(self, version):
        for _ in range(2):
            version.add_file(0, table_over(0, 5))
        assert version.level_score(0) == pytest.approx(2 / 4)

    def test_deeper_levels_score_by_bytes(self, version):
        table = table_over(0, 100, value_bytes=30)
        version.add_file(1, table)
        expected = table.data_size / CONFIG.level_capacity_bytes(1)
        assert version.level_score(1) == pytest.approx(expected)

    def test_pick_compaction_level_none_when_in_shape(self, version):
        version.add_file(0, table_over(0, 5))
        assert version.pick_compaction_level() is None

    def test_pick_compaction_level_prefers_worst(self, version):
        for _ in range(5):  # score 5/4 at L0
            version.add_file(0, table_over(0, 5))
        table = table_over(0, 400, value_bytes=50)  # way over L1 cap
        version.add_file(1, table)
        assert version.pick_compaction_level() == 1

    def test_bottom_level_never_picked(self, version):
        big = table_over(0, 500, value_bytes=100)
        version.add_file(CONFIG.max_levels - 1, big)
        assert version.pick_compaction_level() is None


class TestRoundRobin:
    def test_level0_picks_oldest(self, version):
        newer = table_over(0, 5)
        older = table_over(0, 5)
        # Force ids out of insertion order.
        version.add_file(0, newer)
        version.add_file(0, older)
        oldest = min((newer, older), key=lambda t: t.file_id)
        assert version.pick_file_round_robin(0) is oldest

    def test_round_robin_sweeps_key_space(self, version):
        a = table_over(0, 10)
        b = table_over(20, 30)
        c = table_over(40, 50)
        for table in (a, b, c):
            version.add_file(1, table)
        first = version.pick_file_round_robin(1)
        version.advance_compact_pointer(1, first)
        second = version.pick_file_round_robin(1)
        version.advance_compact_pointer(1, second)
        third = version.pick_file_round_robin(1)
        version.advance_compact_pointer(1, third)
        wrapped = version.pick_file_round_robin(1)
        assert [first, second, third] == [a, b, c]
        assert wrapped is a

    def test_empty_level_raises(self, version):
        with pytest.raises(EngineError):
            version.pick_file_round_robin(1)


class TestInvariants:
    def test_clean_version_passes(self, version):
        version.add_file(0, table_over(0, 10))
        version.add_file(1, table_over(0, 10))
        version.add_file(1, table_over(20, 30))
        version.check_invariants()

    def test_counter_drift_detected(self, version):
        version.add_file(1, table_over(0, 10))
        version._level_bytes[1] += 1
        with pytest.raises(EngineError, match="counter"):
            version.check_invariants()

    def test_unsorted_mode_allows_overlap(self):
        version = VersionSet(CONFIG, sorted_levels=False)
        version.add_file(1, table_over(0, 10))
        version.add_file(1, table_over(5, 15))
        version.check_invariants()
        assert version.num_files(1) == 2
        with pytest.raises(EngineError):
            version.find_file(1, b"000007")
