"""Unit tests for the flash layer (repro.ssd.flash): geometry, mapping,
streams, trim, GC victim selection and wear accounting."""

import pytest

from repro import DeviceConfig, FlashSpec, SimulatedSSD
from repro.errors import ConfigError, DeviceError
from repro.ssd.profile import ENTERPRISE_PCIE, SATA_SSD


def tiny_spec(**overrides):
    params = dict(
        page_bytes=256,
        pages_per_block=4,
        logical_bytes=8 * 1024,
        over_provisioning=0.25,
        gc_reserve_blocks=2,
    )
    params.update(overrides)
    return FlashSpec(**params)


def flash_device(**overrides):
    return SimulatedSSD(DeviceConfig(flash=tiny_spec(**overrides)))


class TestFlashSpec:
    def test_derived_geometry(self):
        spec = tiny_spec()
        assert spec.block_bytes == 1024
        assert spec.logical_pages == 32
        # ceil(32 * 1.25) = 40 pages -> 10 blocks, + 2 reserve.
        assert spec.total_blocks == 12
        assert spec.total_pages == 48
        assert spec.physical_bytes == 48 * 256

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"page_bytes": 0},
            {"pages_per_block": 0},
            {"logical_bytes": 0},
            {"over_provisioning": -0.1},
            {"gc_reserve_blocks": 0},
            {"erase_us": -1.0},
            {"gc_policy": "oracle"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            tiny_spec(**kwargs)

    def test_device_config_name_marks_flash(self):
        assert DeviceConfig().name == ENTERPRISE_PCIE.name
        assert (
            DeviceConfig(profile=SATA_SSD, flash=tiny_spec()).name
            == f"{SATA_SSD.name}+flash"
        )

    def test_device_config_profile_normalised(self):
        device = SimulatedSSD(DeviceConfig(profile=SATA_SSD))
        assert device.profile is SATA_SSD
        assert device.flash is None


class TestMapping:
    def test_write_rounds_up_to_pages(self):
        device = flash_device()
        device.write(1, "flush_write", owner="a")
        device.write(257, "flush_write", owner="b")
        assert len(device.flash.owner_pages["a"]) == 1
        assert len(device.flash.owner_pages["b"]) == 2
        assert device.flash.bytes_programmed == 3 * 256
        device.flash.check_invariants()

    def test_untagged_writes_pool_under_one_owner(self):
        device = flash_device()
        device.write(100, "flush_write")
        device.write(100, "flush_write")
        from repro.ssd.flash import UNTAGGED_OWNER

        assert len(device.flash.owner_pages[UNTAGGED_OWNER]) == 2

    def test_stream_programs_only_whole_pages(self):
        device = flash_device()
        device.write(100, "wal_write", owner="wal", stream=True)
        assert device.flash.stream_pending_bytes == 100
        assert device.flash.bytes_programmed == 0
        device.write(200, "wal_write", owner="wal", stream=True)
        # 300 bytes = 1 whole page + 44 pending.
        assert device.flash.bytes_programmed == 256
        assert device.flash.stream_pending_bytes == 44
        assert len(device.flash.owner_pages["wal"]) == 1

    def test_trim_invalidates_and_drops_stream_fill(self):
        device = flash_device()
        device.write(512, "flush_write", owner="a")
        device.write(100, "wal_write", owner="wal", stream=True)
        device.trim("a")
        device.trim("wal")
        assert "a" not in device.flash.owner_pages
        assert device.flash.stream_pending_bytes == 0
        assert device.flash.live_pages == 0
        device.flash.check_invariants()

    def test_trim_unknown_owner_is_noop(self):
        device = flash_device()
        device.trim("ghost")
        device.flash.check_invariants()

    def test_trim_without_flash_is_free(self):
        device = SimulatedSSD(ENTERPRISE_PCIE)
        before = device.clock.now()
        device.trim("anything")
        assert device.clock.now() == before


class TestGarbageCollection:
    def fill_and_churn(self, device, rounds=40):
        """Overwrite one hot owner until GC must fire."""
        for index in range(rounds):
            owner = f"gen-{index}"
            device.write(1024, "flush_write", owner=owner)
            if index >= 1:
                device.trim(f"gen-{index - 1}")
        return device

    def test_gc_reclaims_stale_blocks(self):
        device = self.fill_and_churn(flash_device())
        flash = device.flash
        assert flash.blocks_erased > 0
        assert device.registry.counter("flash.gc_collections") > 0
        flash.check_invariants()

    def mixed_churn(self, device, rounds=25):
        """Interleave surviving owners into every block so victims are
        part-live, part-stale — GC must relocate, not just erase.  Three
        pages per round deliberately misaligns rounds with the 4-page
        blocks, so no block ever becomes fully stale on its own."""
        for index in range(rounds):
            device.write(256, "flush_write", owner=f"keep-{index}")
            device.write(512, "flush_write", owner=f"gen-{index}")
            if index >= 1:
                device.trim(f"gen-{index - 1}")
        return device

    def test_gc_traffic_charged_to_clock_and_counters(self):
        device = self.mixed_churn(flash_device())
        relocated = device.registry.counter("flash.gc_pages_relocated")
        assert relocated > 0
        assert (
            device.registry.counter("device.write.gc_write.bytes")
            == relocated * 256
        )
        assert device.registry.counter("device.read.gc_read.bytes") > 0
        # Kept owners survived every relocation intact.
        assert len(device.flash.owner_pages["keep-24"]) == 1
        device.flash.check_invariants()

    def test_wear_accounting_monotone(self):
        device = self.fill_and_churn(flash_device())
        flash = device.flash
        assert sum(flash.erase_counts) == flash.blocks_erased
        assert flash.max_erase_count >= 1
        assert device.wear_bytes == flash.bytes_programmed
        assert (
            device.registry.gauge("flash.max_erase_count")
            == flash.max_erase_count
        )

    def test_erase_time_charged_when_configured(self):
        charged = flash_device(erase_us=50.0)
        free = flash_device(erase_us=0.0)
        for device in (charged, free):
            self.fill_and_churn(device)
        erases = charged.flash.blocks_erased
        assert erases > 0
        assert (
            charged.registry.counter("flash.erase_time_us")
            == pytest.approx(50.0 * erases)
        )
        assert free.registry.counter("flash.erase_time_us", 0) == 0
        assert charged.clock.now() > free.clock.now()

    def test_device_full_raises(self):
        device = flash_device()
        with pytest.raises(DeviceError):
            # Far more live data than physical capacity, never trimmed.
            for index in range(100):
                device.write(1024, "flush_write", owner=f"live-{index}")

    def test_cost_benefit_prefers_stale_over_recent(self):
        device = flash_device(gc_policy="cost_benefit")
        self.fill_and_churn(device)
        device.flash.check_invariants()
        assert device.flash.blocks_erased > 0

    @pytest.mark.parametrize("policy", ["greedy", "cost_benefit"])
    def test_gc_is_deterministic(self, policy):
        def run():
            device = flash_device(gc_policy=policy)
            self.mixed_churn(device)
            return (
                device.flash.bytes_programmed,
                device.flash.blocks_erased,
                list(device.flash.erase_counts),
                device.clock.now(),
            )

        assert run() == run()
