"""Tests for the state sampler."""

import random

import pytest

from repro import DB, LDCPolicy, LeveledCompaction
from repro.harness.timeseries import StateSampler

from tests.conftest import key_of


def drive(db, sampler, count, key_space, seed=1):
    rng = random.Random(seed)
    for index in range(count):
        db.put(key_of(rng.randrange(key_space)), b"v" * 40)
        sampler.tick()


class TestStateSampler:
    def test_sampling_period(self, udc_db):
        sampler = StateSampler(udc_db, every_ops=100)
        drive(udc_db, sampler, 1000, 300)
        assert len(sampler.samples) == 10
        assert [s.op_index for s in sampler.samples] == list(range(100, 1001, 100))

    def test_bad_period(self, udc_db):
        with pytest.raises(ValueError):
            StateSampler(udc_db, every_ops=0)

    def test_virtual_time_monotone(self, udc_db):
        sampler = StateSampler(udc_db, every_ops=50)
        drive(udc_db, sampler, 500, 200)
        times = sampler.series("virtual_time_us")
        assert times == sorted(times)

    def test_frozen_fields_zero_for_udc(self, udc_db):
        sampler = StateSampler(udc_db, every_ops=100)
        drive(udc_db, sampler, 800, 250)
        assert sampler.peak("frozen_bytes") == 0
        assert sampler.peak("linked_tables") == 0

    def test_frozen_fields_populated_for_ldc(self, ldc_db):
        sampler = StateSampler(ldc_db, every_ops=100)
        drive(ldc_db, sampler, 3000, 800)
        assert sampler.peak("frozen_bytes") > 0
        assert sampler.peak("linked_tables") > 0

    def test_frozen_region_is_bounded(self, ldc_db):
        """The safety valve visible in the timeseries, not just at the end."""
        sampler = StateSampler(ldc_db, every_ops=50)
        drive(ldc_db, sampler, 4000, 1000)
        for sample in sampler.samples:
            live = sum(sample.level_bytes)
            cap = ldc_db.config.frozen_space_limit_ratio
            slack = 6 * ldc_db.config.sstable_target_bytes
            assert sample.frozen_bytes <= cap * max(live, 1) + slack

    def test_level_structure_recorded(self, udc_db):
        sampler = StateSampler(udc_db, every_ops=200)
        drive(udc_db, sampler, 2000, 600)
        last = sampler.samples[-1]
        assert sum(last.level_files) == udc_db.version.num_files()

    def test_is_bounded_helper(self, udc_db):
        sampler = StateSampler(udc_db, every_ops=100)
        drive(udc_db, sampler, 500, 200)
        assert sampler.is_bounded("frozen_bytes", 0)
        assert not sampler.is_bounded("virtual_time_us", -1.0)
