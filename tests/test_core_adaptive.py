"""Unit tests for the self-adaptive SliceLink threshold (§III-B.4)."""

import pytest

from repro.core.adaptive import AdaptiveThreshold
from repro.errors import ConfigError


class TestConstruction:
    def test_initial_threshold_from_ratio(self):
        controller = AdaptiveThreshold(fan_out=10, initial_write_ratio=0.5)
        assert controller.threshold == 10  # 2 * 10 * 0.5

    def test_write_only_maps_to_double_fanout(self):
        controller = AdaptiveThreshold(fan_out=10, initial_write_ratio=1.0)
        assert controller.threshold == 20

    def test_read_only_maps_to_minimum(self):
        controller = AdaptiveThreshold(fan_out=10, initial_write_ratio=0.0)
        assert controller.threshold == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(fan_out=1),
            dict(fan_out=10, initial_write_ratio=1.5),
            dict(fan_out=10, smoothing=0.0),
            dict(fan_out=10, smoothing=1.5),
            dict(fan_out=10, update_every=0),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AdaptiveThreshold(**kwargs)


class TestAdaptation:
    def test_converges_up_under_writes(self):
        controller = AdaptiveThreshold(
            fan_out=10, initial_write_ratio=0.5, smoothing=0.3, update_every=10
        )
        for _ in range(2000):
            controller.observe(True)
        assert controller.write_ratio > 0.95
        assert controller.threshold >= 19

    def test_converges_down_under_reads(self):
        controller = AdaptiveThreshold(
            fan_out=10, initial_write_ratio=0.5, smoothing=0.3, update_every=10
        )
        for _ in range(2000):
            controller.observe(False)
        assert controller.write_ratio < 0.05
        assert controller.threshold <= 2

    def test_tracks_balanced_mix(self):
        controller = AdaptiveThreshold(
            fan_out=10, initial_write_ratio=0.9, smoothing=0.2, update_every=16
        )
        for index in range(4000):
            controller.observe(index % 2 == 0)
        assert controller.write_ratio == pytest.approx(0.5, abs=0.1)
        assert 8 <= controller.threshold <= 12

    def test_updates_happen_in_batches(self):
        controller = AdaptiveThreshold(fan_out=10, update_every=100)
        before = controller.threshold
        for _ in range(99):
            controller.observe(True)
        assert controller.threshold == before  # not yet updated
        controller.observe(True)
        assert controller.write_ratio > 0.5  # batch applied

    def test_threshold_never_below_one(self):
        controller = AdaptiveThreshold(
            fan_out=2, initial_write_ratio=0.0, smoothing=1.0, update_every=1
        )
        for _ in range(50):
            controller.observe(False)
        assert controller.threshold >= 1

    def test_smoothing_limits_swing(self):
        """A short burst must not slam the threshold to the extreme."""
        controller = AdaptiveThreshold(
            fan_out=10, initial_write_ratio=0.5, smoothing=0.02, update_every=10
        )
        for _ in range(20):
            controller.observe(True)
        assert controller.write_ratio < 0.6
